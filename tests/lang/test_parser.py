"""Tests for the MiniC parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse
from repro.lang.types import Type


def parse_expr(text):
    """Parse an expression via a wrapper function body."""
    unit = parse("int main() { return %s; }" % text)
    stmt = unit.function("main").body.statements[0]
    assert isinstance(stmt, ast.Return)
    return stmt.value


class TestTopLevel:
    def test_globals_and_functions_separated(self):
        unit = parse("int g; float arr[4]; int main() { return 0; }")
        assert [g.name for g in unit.globals] == ["g", "arr"]
        assert [f.name for f in unit.functions] == ["main"]

    def test_global_array_initializer(self):
        unit = parse("int t[3] = {1, 2, 3}; int main() { return 0; }")
        assert len(unit.globals[0].initializers) == 3

    def test_too_many_initializers_rejected(self):
        with pytest.raises(ParseError):
            parse("int t[2] = {1, 2, 3}; int main() { return 0; }")

    def test_scalar_brace_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse("int x = {1}; int main() { return 0; }")

    def test_pointer_types(self):
        unit = parse("int** p; int main() { return 0; }")
        assert unit.globals[0].var_type == Type("int", 2)

    def test_function_params(self):
        unit = parse("int f(int a, float* b) { return a; } "
                     "int main() { return 0; }")
        params = unit.function("f").params
        assert params[0].param_type == Type("int")
        assert params[1].param_type == Type("float", 1)

    def test_missing_main_is_parseable(self):
        # main-presence is a semantic check (codegen), not a parse error.
        unit = parse("int f() { return 1; }")
        with pytest.raises(KeyError):
            unit.function("main")

    def test_stray_token_rejected(self):
        with pytest.raises(ParseError):
            parse("42;")


class TestStatements:
    def test_if_else_association(self):
        unit = parse("""
            int main() {
              if (1) if (2) return 1; else return 2;
              return 0;
            }
        """)
        outer = unit.function("main").body.statements[0]
        assert isinstance(outer, ast.If)
        assert outer.else_branch is None          # else binds to inner if
        assert isinstance(outer.then_branch, ast.If)
        assert outer.then_branch.else_branch is not None

    def test_for_with_declaration(self):
        unit = parse("int main() { for (int i = 0; i < 9; i += 1) {} "
                     "return 0; }")
        loop = unit.function("main").body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)

    def test_for_with_empty_clauses(self):
        unit = parse("int main() { for (;;) break; return 0; }")
        loop = unit.function("main").body.statements[0]
        assert loop.init is None
        assert loop.condition is None
        assert loop.step is None

    def test_while_and_break_continue(self):
        unit = parse("int main() { while (1) { break; continue; } "
                     "return 0; }")
        loop = unit.function("main").body.statements[0]
        body = loop.body.statements
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0;")

    def test_local_array_declaration(self):
        unit = parse("int main() { float buf[16]; return 0; }")
        decl = unit.function("main").body.statements[0]
        assert decl.array_size == 16


class TestExpressions:
    def test_precedence_mul_over_add(self):
        # Variables keep the tree unfolded (literals constant-fold).
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_literal_expressions_fold(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.IntLiteral)
        assert expr.value == 7

    def test_comparison_below_logical(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_assignment_is_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += 2")
        assert isinstance(expr, ast.Assign)
        assert expr.op == "+="

    def test_unary_operators(self):
        expr = parse_expr("-*p")
        assert isinstance(expr, ast.Unary) and expr.op == "-"
        assert isinstance(expr.operand, ast.Unary)
        assert expr.operand.op == "*"

    def test_address_of(self):
        expr = parse_expr("&x")
        assert isinstance(expr, ast.Unary) and expr.op == "&"

    def test_bitwise_and_vs_address_of(self):
        expr = parse_expr("a & b")
        assert isinstance(expr, ast.Binary) and expr.op == "&"

    def test_cast_expression(self):
        expr = parse_expr("(float) 3")
        assert isinstance(expr, ast.Cast)
        assert expr.to_type == Type("float")

    def test_cast_vs_parenthesised_expr(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, ast.Binary)

    def test_indexing_chains(self):
        expr = parse_expr("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], ast.Call)

    def test_shift_operators(self):
        expr = parse_expr("a << 2 >> 1")
        assert expr.op == ">>"
        assert expr.left.op == "<<"

    def test_modulo(self):
        expr = parse_expr("a % 7")
        assert expr.op == "%"

    def test_missing_expression_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { return +; }")
