"""Tests for the MiniC lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.lexer import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop eof


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_integer_literals(self):
        assert texts("0 42 123456") == ["0", "42", "123456"]
        assert kinds("7")[:-1] == ["int"]

    def test_hex_literals(self):
        tokens = tokenize("0x1F 0xdead")
        assert tokens[0].kind == "int"
        assert int(tokens[0].text, 0) == 31

    def test_float_literals(self):
        tokens = tokenize("1.5 0.25 2e3 1.5e-2")
        assert all(t.kind == "float" for t in tokens[:-1])

    def test_malformed_exponent_raises(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int intx for fortune while")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "ident", "keyword"]

    def test_identifiers_with_underscores(self):
        assert texts("_foo bar_baz x1") == ["_foo", "bar_baz", "x1"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestOperators:
    def test_multichar_operators_win(self):
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a << 2") == ["a", "<<", "2"]
        assert texts("x += 1") == ["x", "+=", "1"]
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_equality_vs_assignment(self):
        assert texts("a == b = c") == ["a", "==", "b", "=", "c"]

    def test_punctuation(self):
        assert texts("f(a, b);") == ["f", "(", "a", ",", "b", ")", ";"]


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].col == 3

    def test_block_comment_advances_lines(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**40))
    def test_integer_roundtrip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind == "int"
        assert int(tokens[0].text) == value

    @given(st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,12}", fullmatch=True))
    def test_identifier_roundtrip(self, name):
        tokens = tokenize(name)
        assert tokens[0].text == name
        assert tokens[0].kind in ("ident", "keyword")

    @given(st.lists(st.sampled_from(["x", "42", "+", "(", ")", "<=", "1.5"]),
                    max_size=20))
    def test_whitespace_insensitivity(self, parts):
        compact = " ".join(parts)
        spread = "  \n ".join(parts)
        compact_tokens = [(t.kind, t.text) for t in tokenize(compact)]
        spread_tokens = [(t.kind, t.text) for t in tokenize(spread)]
        assert compact_tokens == spread_tokens
