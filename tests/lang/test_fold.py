"""Tests for parse-time constant folding."""

from hypothesis import given, strategies as st

from repro.lang import ast
from repro.lang.fold import fold_int_binary
from repro.lang.parser import parse
from tests.conftest import run_minic

_i64 = st.integers(min_value=-2**63, max_value=2**63 - 1)


def parsed_return(text):
    unit = parse(f"int main() {{ return {text}; }}")
    return unit.function("main").body.statements[0].value


class TestFoldingInParser:
    def test_literal_arithmetic_folds(self):
        expr = parsed_return("2 + 3 * 4")
        assert isinstance(expr, ast.IntLiteral)
        assert expr.value == 14

    def test_negative_literals_fold(self):
        expr = parsed_return("-3 * -4")
        assert isinstance(expr, ast.IntLiteral)
        assert expr.value == 12

    def test_division_by_zero_not_folded(self):
        expr = parsed_return("1 / 0")
        assert isinstance(expr, ast.Binary)

    def test_variables_block_folding(self):
        unit = parse("int main() { int x = 1; return x + 2; }")
        expr = unit.function("main").body.statements[1].value
        assert isinstance(expr, ast.Binary)

    def test_partial_folding_in_chain(self):
        # x + (2 * 3): the literal product folds, the variable add
        # does not.
        unit = parse("int main() { int x = 1; return x + 2 * 3; }")
        expr = unit.function("main").body.statements[1].value
        assert isinstance(expr, ast.Binary)
        assert isinstance(expr.right, ast.IntLiteral)
        assert expr.right.value == 6

    def test_comparison_folds_to_flag(self):
        expr = parsed_return("3 < 4")
        assert isinstance(expr, ast.IntLiteral)
        assert expr.value == 1

    def test_folded_result_matches_execution(self):
        # Folding must be semantics-preserving end to end.
        trace = run_minic("""
            int main() {
              print_int(7 / 2 * 2 + 7 % 2);
              print_int(-7 / 2);
              print_int(1 << 10 >> 3);
              return 0;
            }
        """)
        assert trace.output == [7, -3, 128]


class TestFoldSemantics:
    @given(_i64, _i64)
    def test_add_matches_wrap(self, a, b):
        folded = fold_int_binary("+", a, b)
        assert -2**63 <= folded < 2**63
        assert (folded - (a + b)) % 2**64 == 0

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_division_identity_moderate(self, a, b):
        q = fold_int_binary("/", a, b)
        r = fold_int_binary("%", a, b)
        assert q * b + r == a
        assert abs(r) < b

    def test_oversized_shift_not_folded(self):
        assert fold_int_binary("<<", 1, 64) is None
        assert fold_int_binary(">>", 1, -1) is None

    def test_unknown_op(self):
        assert fold_int_binary("&&", 1, 1) is None
