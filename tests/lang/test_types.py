"""Tests for the MiniC type system."""

import pytest

from repro.lang.types import (FLOAT, INT, INT_PTR, VOID, Type, assignable,
                              common_arithmetic_type)


class TestTypeBasics:
    def test_interned_constants(self):
        assert INT == Type("int")
        assert FLOAT == Type("float")
        assert INT_PTR == Type("int", 1)

    def test_pointer_roundtrip(self):
        assert INT.pointer_to().pointee() == INT
        assert Type("float", 2).pointee() == Type("float", 1)

    def test_dereference_of_non_pointer_raises(self):
        with pytest.raises(ValueError):
            INT.pointee()

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError):
            Type("double")

    def test_predicates(self):
        assert INT.is_int and INT.is_arithmetic
        assert FLOAT.is_float and FLOAT.is_arithmetic
        assert VOID.is_void and not VOID.is_arithmetic
        assert INT_PTR.is_pointer and not INT_PTR.is_arithmetic

    def test_str_forms(self):
        assert str(Type("int", 2)) == "int**"
        assert str(FLOAT) == "float"


class TestConversions:
    def test_common_type_float_wins(self):
        assert common_arithmetic_type(INT, FLOAT) == FLOAT
        assert common_arithmetic_type(FLOAT, INT) == FLOAT
        assert common_arithmetic_type(INT, INT) == INT

    def test_common_type_rejects_pointers(self):
        assert common_arithmetic_type(INT_PTR, INT) is None

    def test_assignable_arithmetic(self):
        assert assignable(INT, FLOAT)
        assert assignable(FLOAT, INT)

    def test_assignable_pointer_exact(self):
        assert assignable(INT_PTR, INT_PTR)

    def test_assignable_int_to_pointer(self):
        # Early-C permissiveness: malloc results / address arithmetic.
        assert assignable(INT_PTR, INT)
        assert assignable(INT, INT_PTR)

    def test_not_assignable_void(self):
        assert not assignable(VOID, INT)
