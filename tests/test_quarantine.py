"""Garbage collection of quarantined files (:mod:`repro.quarantine`).

Covers the collector directly (age bound, newest-N retention, env
knobs, degenerate inputs) and its integration points: opening a trace
cache or checkpoint journal collects expired quarantined entries and
counts them in the store's stats, which the engine surfaces as
resilience metrics.
"""

import os
import time

import pytest

from repro import quarantine
from repro.eval.checkpoint import CellJournal
from repro.trace.cache import TraceCache

DAY = 86400.0


def _quarantined(directory, name, age_days, now):
    """Create one quarantined file with an mtime ``age_days`` old."""
    path = directory / f"{name}{quarantine.SUFFIX}"
    path.write_bytes(b"corrupt")
    stamp = now - age_days * DAY
    os.utime(path, (stamp, stamp))
    return path


class TestCollect:
    def test_age_bound(self, tmp_path):
        now = time.time()
        old = _quarantined(tmp_path, "old", 10, now)
        fresh = _quarantined(tmp_path, "fresh", 1, now)
        removed = quarantine.collect(tmp_path, max_age_days=7,
                                     max_files=100, now=now)
        assert removed == 1
        assert not old.exists() and fresh.exists()

    def test_count_bound_keeps_newest(self, tmp_path):
        now = time.time()
        paths = [_quarantined(tmp_path, f"q{i}", i, now)
                 for i in range(6)]           # q0 newest ... q5 oldest
        removed = quarantine.collect(tmp_path, max_age_days=100,
                                     max_files=2, now=now)
        assert removed == 4
        survivors = sorted(p.name for p in
                           tmp_path.glob(f"*{quarantine.SUFFIX}"))
        assert survivors == [paths[0].name, paths[1].name]

    def test_age_zero_clears_everything(self, tmp_path):
        now = time.time()
        for i in range(3):
            _quarantined(tmp_path, f"q{i}", i, now)
        assert quarantine.collect(tmp_path, max_age_days=0,
                                  max_files=100, now=now + 1) == 3
        assert not list(tmp_path.glob(f"*{quarantine.SUFFIX}"))

    def test_ignores_other_files(self, tmp_path):
        now = time.time()
        keep = tmp_path / "trace.npz"
        keep.write_bytes(b"data")
        os.utime(keep, (now - 30 * DAY, now - 30 * DAY))
        _quarantined(tmp_path, "old", 30, now)
        assert quarantine.collect(tmp_path, max_age_days=7,
                                  max_files=0, now=now) == 1
        assert keep.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert quarantine.collect(tmp_path / "absent") == 0

    def test_env_knobs(self, tmp_path, monkeypatch):
        now = time.time()
        _quarantined(tmp_path, "old", 5, now)
        _quarantined(tmp_path, "fresh", 1, now)
        monkeypatch.setenv(quarantine.ENV_MAX_AGE, "3")
        assert quarantine.collect(tmp_path, now=now) == 1
        monkeypatch.setenv(quarantine.ENV_MAX_FILES, "0")
        assert quarantine.collect(tmp_path, now=now) == 1
        assert not list(tmp_path.glob(f"*{quarantine.SUFFIX}"))

    @pytest.mark.parametrize("value", ("not-a-number", "-2", ""))
    def test_invalid_env_values_fall_back(self, tmp_path, monkeypatch,
                                          value):
        now = time.time()
        _quarantined(tmp_path, "recent", 1, now)
        monkeypatch.setenv(quarantine.ENV_MAX_AGE, value)
        monkeypatch.setenv(quarantine.ENV_MAX_FILES, value)
        # Defaults (7 days / 16 files) keep a 1-day-old file.
        assert quarantine.collect(tmp_path, now=now) == 0


class TestStoreIntegration:
    def test_trace_cache_open_collects_and_counts(self, tmp_path):
        now = time.time()
        _quarantined(tmp_path, "bad.npz", 30, now)
        _quarantined(tmp_path, "recent.npz", 1, now)
        cache = TraceCache(tmp_path)
        assert cache.stats.quarantine_gc == 1
        assert list(tmp_path.glob(f"*{quarantine.SUFFIX}")) \
            == [tmp_path / f"recent.npz{quarantine.SUFFIX}"]

    def test_journal_open_collects_and_counts(self, tmp_path):
        now = time.time()
        _quarantined(tmp_path, "bad.cell", 30, now)
        journal = CellJournal(tmp_path)
        assert journal.stats.quarantine_gc == 1

    def test_snapshot_carries_the_counter(self, tmp_path):
        _quarantined(tmp_path, "bad.npz", 30, time.time())
        cache = TraceCache(tmp_path)
        assert cache.stats.snapshot().quarantine_gc == 1

    def test_resilience_metrics_surface_collections(self, tmp_path):
        from repro.eval import engine
        from repro.trace import cache as trace_cache
        now = time.time()
        cache_dir = tmp_path / "cache"
        journal_dir = tmp_path / "journal"
        cache_dir.mkdir(), journal_dir.mkdir()
        _quarantined(cache_dir, "bad.npz", 30, now)
        _quarantined(journal_dir, "bad.cell", 30, now)
        try:
            trace_cache.configure(cache_dir)
            engine.set_checkpoint(journal_dir)
            snap = engine.resilience_snapshot()
            assert snap["trace.cache.quarantine_gc"] == 1
            assert snap["checkpoint.quarantine_gc"] == 1
        finally:
            engine.set_checkpoint(None)
            trace_cache.reset()
