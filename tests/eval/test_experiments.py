"""Tests for the experiment drivers (small scale, workload subset)."""

import pytest

from repro.eval import (ablation_lvc_size, ablation_two_bit, figure2,
                        figure4, figure5, figure8, reporting, section33,
                        table1, table2, table3)
from repro.timing.config import conventional_config, decoupled_config
from repro.workloads import suite

SCALE = 0.2
NAMES = ("db_vortex", "go_ai")


@pytest.fixture(scope="module", autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()


class TestReporting:
    def test_format_table_alignment(self):
        text = reporting.format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) <= len(lines[0]) + 2 for line in lines)

    def test_percent(self):
        assert reporting.percent(0.9987) == "99.87%"

    def test_title_included(self):
        text = reporting.format_table(["h"], [["v"]], title="My Table")
        assert text.startswith("My Table")


class TestProfilingExperiments:
    def test_table1_rows(self):
        result = table1(SCALE, NAMES)
        assert [r.name for r in result.data.rows] == list(NAMES)
        assert "Inst. count" in result.render()

    def test_figure2_fractions(self):
        result = figure2(SCALE, NAMES)
        for breakdown in result.data.breakdowns:
            assert 0.0 <= breakdown.multi_region_static_fraction <= 1.0
        assert "Figure 2" in result.render()

    def test_table2_window_pairs(self):
        result = table2(SCALE, NAMES)
        for w32, w64 in result.data.stats:
            assert w32.window == 32
            assert w64.window == 64
            # Doubling the window roughly doubles the mean counts.
            if w32.data.mean > 0.5:
                ratio = w64.data.mean / w32.data.mean
                assert 1.5 < ratio < 2.5
        assert "Table 2" in result.render()

    def test_figure4_schemes_present(self):
        result = figure4(SCALE, NAMES)
        for name in NAMES:
            assert set(result.data.results[name]) == {
                "static", "1bit", "1bit-gbh", "1bit-cid", "1bit-hybrid"}
        assert 0.9 < result.data.average_accuracy("1bit") <= 1.0

    def test_table3_contexts_present(self):
        result = table3(SCALE, NAMES)
        for name in NAMES:
            assert set(result.data.occupancy[name]) == {"none", "gbh", "cid",
                                                   "hybrid"}
        assert "Table 3" in result.render()

    def test_figure5_sizes_and_hints(self):
        result = figure5(SCALE, NAMES, sizes=(None, 8 * 1024))
        for name in NAMES:
            raw, hinted = result.data.results[name]["unlimited"]
            assert hinted >= raw - 1e-9
        assert "Figure 5" in result.render()

    def test_section33(self):
        result = section33(SCALE, NAMES)
        assert 0.0 < result.data.average_hit_rate <= 1.0
        assert "99.5%" in result.render()


class TestAblations:
    def test_two_bit_ablation(self):
        result = ablation_two_bit(SCALE, NAMES)
        for one, two in result.data.accuracies.values():
            assert 0.9 < one <= 1.0
            assert 0.9 < two <= 1.0

    def test_lvc_ablation_monotone(self):
        result = ablation_lvc_size(SCALE, NAMES, sizes=(1024, 8192))
        for by_size in result.data.hit_rates.values():
            assert by_size[8192] >= by_size[1024] - 0.01


class TestTimingExperiment:
    def test_figure8_small(self):
        configs = [conventional_config(2), decoupled_config(2, 2)]
        result = figure8(SCALE, ("db_vortex",), configs)
        assert result.data.speedup("db_vortex", "(2+0)") == 1.0
        speedup = result.data.speedup("db_vortex", "(2+2)")
        assert 0.8 < speedup < 2.0
        assert "(2+2)" in result.render()

    @pytest.mark.slow
    def test_average_speedup_geomean(self):
        configs = [conventional_config(2), conventional_config(16)]
        result = figure8(SCALE, NAMES, configs)
        geomean = result.data.average_speedup("(16+0)")
        individual = [result.data.speedup(n, "(16+0)") for n in NAMES]
        assert min(individual) <= geomean <= max(individual)
