"""Checkpoint/resume tests: interrupted sweeps re-run only missing cells."""

import pickle

import pytest

from repro import metrics
from repro.eval import checkpoint, engine, faults
from repro.eval.checkpoint import CellJournal, cell_key
from repro.eval.faults import CellFailure, RetryPolicy
from repro.testing import faults as fi

NAMES = ("alpha", "beta", "gamma")


def _cell(name, scale):
    return f"{name}@{scale}"


def _other_cell(name, scale):
    return name


def _metric_cell(name, scale):
    metrics.active().scoped("test").counter("runs").inc(1)
    return name


#: Execution log for _logging_cell (meaningful in serial mode only,
#: where cells run in this process).
_EXECUTIONS = []


def _logging_cell(name, scale):
    _EXECUTIONS.append(name)
    return _cell(name, scale)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    engine.set_jobs(None)
    engine.set_checkpoint(None)
    engine.reset_stage_times()
    engine.reset_fault_stats()
    engine.take_metrics()
    fi.install(None)
    faults.set_policy(None)
    yield
    metrics.disable()
    engine.set_checkpoint(None)
    engine.take_metrics()
    fi.install(None)
    faults.set_policy(None)


class TestCellKey:
    def test_stable(self):
        assert cell_key(_cell, "w", 0.5, ()) == \
            cell_key(_cell, "w", 0.5, ())

    def test_distinguishes_every_identity_component(self):
        base = cell_key(_cell, "w", 0.5, ())
        assert cell_key(_other_cell, "w", 0.5, ()) != base
        assert cell_key(_cell, "x", 0.5, ()) != base
        assert cell_key(_cell, "w", 0.25, ()) != base
        assert cell_key(_cell, "w", 0.5, (4,)) != base


class TestJournal:
    def test_roundtrip(self, tmp_path):
        journal = CellJournal(tmp_path)
        times = engine.StageTimes(replay=1.5, cells=1)
        journal.record(_cell, "w", 0.5, (), "result", times, {"a": 1})
        loaded = journal.load(_cell, "w", 0.5, ())
        assert loaded is not None
        result, loaded_times, snapshot = loaded
        assert result == "result"
        assert loaded_times.replay == 1.5
        assert snapshot == {"a": 1}
        assert journal.stats.hits == 1
        assert len(journal) == 1

    def test_miss_counted(self, tmp_path):
        journal = CellJournal(tmp_path)
        assert journal.load(_cell, "w", 0.5, ()) is None
        assert journal.stats.misses == 1

    def test_file_as_directory_rejected(self, tmp_path):
        path = tmp_path / "notadir"
        path.touch()
        with pytest.raises(ValueError):
            CellJournal(path)

    def test_corrupt_entry_quarantined(self, tmp_path):
        journal = CellJournal(tmp_path)
        path = journal.record(_cell, "w", 0.5, (), "r",
                              engine.StageTimes(), None)
        path.write_bytes(b"\x80garbage, not a pickle")
        assert journal.load(_cell, "w", 0.5, ()) is None
        assert journal.stats.corrupt == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

    def test_key_mismatch_quarantined(self, tmp_path):
        # A valid pickle recorded under the wrong filename must not be
        # served: the embedded key is checked against the requested one.
        journal = CellJournal(tmp_path)
        recorded = journal.record(_cell, "w", 0.5, (), "r",
                                  engine.StageTimes(), None)
        alias = journal.path_for(cell_key(_cell, "other", 0.5, ()))
        alias.write_bytes(recorded.read_bytes())
        assert journal.load(_cell, "other", 0.5, ()) is None
        assert journal.stats.corrupt == 1

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        journal = CellJournal(tmp_path)
        path = journal.record(_cell, "w", 0.5, (), "r",
                              engine.StageTimes(), None)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = checkpoint.FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert journal.load(_cell, "w", 0.5, ()) is None
        assert journal.stats.corrupt == 1


class TestResume:
    def test_interrupted_sweep_resumes_missing_cells_only(self, tmp_path,
                                                          monkeypatch):
        """The acceptance scenario: a sweep dies mid-run, the re-run
        replays journalled cells and executes only the missing ones."""
        monkeypatch.setattr(faults, "_sleep", lambda _s: None)
        engine.set_checkpoint(tmp_path)
        faults.set_policy(RetryPolicy(max_retries=0))
        fi.install("fail:name=gamma,times=99")     # "power cut" at cell 3
        with pytest.raises(CellFailure):
            engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        assert len(engine.active_journal()) == 2   # alpha, beta landed

        fi.install(None)
        journal = engine.set_checkpoint(tmp_path)  # fresh stats
        results = engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert journal.stats.hits == 2
        assert journal.stats.misses == 1
        snap = engine.resilience_snapshot()
        assert snap["checkpoint.hits"] == 2
        assert snap["checkpoint.misses"] == 1

    def test_full_replay_executes_nothing(self, tmp_path):
        del _EXECUTIONS[:]
        engine.set_checkpoint(tmp_path)
        engine.run_cells(_logging_cell, NAMES, 1.0, jobs=1)
        assert _EXECUTIONS == list(NAMES)
        journal = engine.set_checkpoint(tmp_path)
        results = engine.run_cells(_logging_cell, NAMES, 1.0, jobs=1)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert journal.stats.hits == 3
        assert _EXECUTIONS == list(NAMES)   # no cell ran again

    def test_replay_restores_metrics_and_stage_times(self, tmp_path):
        engine.set_checkpoint(tmp_path)
        metrics.enable()
        engine.run_cells(_metric_cell, NAMES, 1.0, jobs=1)
        first = engine.take_metrics()
        first_cells = engine.stage_times().cells

        engine.reset_stage_times()
        engine.set_checkpoint(tmp_path)
        engine.run_cells(_metric_cell, NAMES, 1.0, jobs=1)
        replayed = engine.take_metrics()
        assert replayed == first
        assert engine.stage_times().cells == first_cells

    def test_different_args_never_match(self, tmp_path):
        engine.set_checkpoint(tmp_path)
        engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        journal = engine.set_checkpoint(tmp_path)
        engine.run_cells(_cell, NAMES, 2.0, jobs=1)   # different scale
        assert journal.stats.hits == 0
        assert journal.stats.misses == 3

    def test_corrupt_journal_entry_reruns_cell(self, tmp_path):
        engine.set_checkpoint(tmp_path)
        engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        entry = engine.active_journal().path_for(
            cell_key(_cell, "beta", 1.0, ()))
        entry.write_bytes(b"scrambled")
        journal = engine.set_checkpoint(tmp_path)
        results = engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert journal.stats.hits == 2
        assert journal.stats.corrupt == 1
        assert engine.resilience_snapshot()["checkpoint.corrupt"] == 1
        # The re-run re-journalled the cell, so a third run fully hits.
        journal = engine.set_checkpoint(tmp_path)
        engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        assert journal.stats.hits == 3


class TestDiskQuota:
    """``REPRO_CHECKPOINT_MAX_BYTES`` bounds journal growth by
    rotating the oldest entries into quarantine."""

    def test_unbounded_by_default(self, tmp_path):
        journal = CellJournal(tmp_path)
        assert journal.max_bytes == 0
        for index in range(5):
            journal.record(_cell, f"w{index}", 1.0, (), "r", {}, None)
        assert len(journal) == 5
        assert journal.stats.quota_evictions == 0

    def test_env_var_sets_quota(self, tmp_path, monkeypatch):
        monkeypatch.setenv(checkpoint.ENV_MAX_BYTES, "4096")
        assert CellJournal(tmp_path).max_bytes == 4096
        monkeypatch.setenv(checkpoint.ENV_MAX_BYTES, "not-a-number")
        assert CellJournal(tmp_path).max_bytes == 0
        monkeypatch.setenv(checkpoint.ENV_MAX_BYTES, "-1")
        assert CellJournal(tmp_path).max_bytes == 0

    def test_quota_rotates_oldest_keeps_newest(self, tmp_path):
        # A quota smaller than one record: every new record rotates
        # everything older, but never itself.
        journal = CellJournal(tmp_path, max_bytes=1)
        for index in range(3):
            journal.record(_cell, f"w{index}", 1.0, (),
                           f"r{index}", {}, None)
        assert len(journal) == 1
        assert journal.stats.quota_evictions == 2
        quarantined = list(tmp_path.glob("*.quarantined"))
        assert len(quarantined) == 2
        # The survivor is the newest record, still replayable.
        assert journal.load(_cell, "w2", 1.0, ()) == ("r2", {}, None)
        # Rotated cells read as plain misses (they re-run on resume).
        assert journal.load(_cell, "w0", 1.0, ()) is None

    def test_quota_large_enough_keeps_everything(self, tmp_path):
        journal = CellJournal(tmp_path, max_bytes=1 << 20)
        for index in range(4):
            journal.record(_cell, f"w{index}", 1.0, (), "r", {}, None)
        assert len(journal) == 4
        assert journal.stats.quota_evictions == 0

    def test_quota_evictions_in_resilience_snapshot(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(checkpoint.ENV_MAX_BYTES, "1")
        engine.set_checkpoint(tmp_path)
        engine.run_cells(_cell, NAMES, 1.0, jobs=1)
        snap = engine.resilience_snapshot()
        assert snap["checkpoint.quota_evictions"] == 2

    def test_rotated_entries_are_quarantine_collectable(self, tmp_path,
                                                        monkeypatch):
        from repro import quarantine
        journal = CellJournal(tmp_path, max_bytes=1)
        for index in range(3):
            journal.record(_cell, f"w{index}", 1.0, (), "r", {}, None)
        # Age bound 0 clears every quarantined file on the next open.
        monkeypatch.setenv(quarantine.ENV_MAX_AGE, "0")
        reopened = CellJournal(tmp_path)
        assert reopened.stats.quarantine_gc == 2
        assert list(tmp_path.glob("*.quarantined")) == []
