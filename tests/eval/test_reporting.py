"""Tests for the text-table renderer."""

from hypothesis import given, strategies as st

from repro.eval.reporting import format_table, mean_and_std, percent
from repro.trace.windows import WindowStats


class TestFormatTable:
    def test_columns_align(self):
        text = format_table(["name", "value"],
                            [["short", 1], ["a-much-longer-name", 22]])
        lines = text.splitlines()
        # All data lines have the same width as the header line.
        header_width = len(lines[0])
        assert len(lines[1]) == header_width          # separator
        for line in lines[2:]:
            assert len(line) <= header_width

    def test_numeric_cells_right_aligned(self):
        text = format_table(["n"], [["5"], ["55555"]])
        lines = text.splitlines()
        assert lines[-2].endswith("    5")
        assert lines[-1].endswith("55555")

    def test_floats_formatted(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_title_prepended(self):
        text = format_table(["h"], [["v"]], title="The Title")
        assert text.splitlines()[0] == "The Title"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    @given(st.lists(st.lists(st.one_of(st.integers(), st.text(
        alphabet="abcdef ", max_size=10)), min_size=2, max_size=2),
        max_size=8))
    def test_never_crashes_on_mixed_cells(self, rows):
        text = format_table(["col1", "col2"], rows)
        assert "col1" in text


class TestHelpers:
    def test_percent_digits(self):
        assert percent(0.5) == "50.00%"
        assert percent(0.99987, 3) == "99.987%"

    def test_mean_and_std_matches_paper_format(self):
        stats = WindowStats(mean=6.11, std=2.71, samples=100)
        assert mean_and_std(stats) == "6.11 (2.71)"
