"""Engine fault-tolerance tests: retries, timeouts, rebuilds, fallback.

Workers live at module level so they survive the pickle round-trip into
pool workers.  All injected faults are deterministic (attempt-keyed),
and backoff sleeps are observed through the injectable
``faults._sleep`` so no test waits out a real delay.
"""

import time

import pytest

from repro.eval import engine, faults
from repro.eval.faults import CellFailure, CellTimeout, RetryPolicy
from repro.testing import faults as fi

NAMES = ("alpha", "beta", "gamma")


def _ok_cell(name, scale):
    return f"{name}@{scale}"


def _instant() -> RetryPolicy:
    """A policy with no real waiting, for pool tests."""
    return RetryPolicy(max_retries=2, backoff_base=0.0,
                       max_pool_rebuilds=2)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    for var in (faults.RETRIES_ENV_VAR, faults.BACKOFF_ENV_VAR,
                faults.TIMEOUT_ENV_VAR, faults.REBUILDS_ENV_VAR,
                fi.ENV_VAR, engine.JOBS_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    engine.set_jobs(None)
    engine.set_checkpoint(None)
    engine.reset_stage_times()
    engine.reset_fault_stats()
    engine.take_metrics()
    fi.install(None)
    faults.set_policy(None)
    yield
    engine.set_checkpoint(None)
    engine.reset_fault_stats()
    fi.install(None)
    faults.set_policy(None)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        assert [policy.backoff(a) for a in (1, 2, 3, 4, 5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV_VAR, "5")
        monkeypatch.setenv(faults.BACKOFF_ENV_VAR, "0.5")
        monkeypatch.setenv(faults.TIMEOUT_ENV_VAR, "30")
        monkeypatch.setenv(faults.REBUILDS_ENV_VAR, "1")
        policy = faults.from_env()
        assert policy.max_retries == 5
        assert policy.backoff_base == 0.5
        assert policy.cell_timeout == 30.0
        assert policy.max_pool_rebuilds == 1

    def test_from_env_defaults_and_garbage(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV_VAR, "nope")
        monkeypatch.setenv(faults.TIMEOUT_ENV_VAR, "-3")
        policy = faults.from_env()
        assert policy.max_retries == 2
        assert policy.cell_timeout is None

    def test_set_policy_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV_VAR, "9")
        faults.set_policy(RetryPolicy(max_retries=0))
        assert faults.active_policy().max_retries == 0
        faults.set_policy(None)
        assert faults.active_policy().max_retries == 9


class TestSerialRetry:
    def test_transient_failure_is_retried(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults, "_sleep", naps.append)
        fi.install("fail:index=1")
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert engine.fault_stats().retries == 1
        assert naps == [faults.active_policy().backoff(1)]

    def test_backoff_sequence(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults, "_sleep", naps.append)
        faults.set_policy(RetryPolicy(max_retries=3, backoff_base=0.1,
                                      backoff_max=10.0))
        fi.install("fail:index=0,times=3")
        engine.run_cells(_ok_cell, NAMES[:1], 1.0, jobs=1)
        assert naps == [0.1, 0.2, 0.4]

    def test_budget_exhaustion_raises_cell_failure(self, monkeypatch):
        monkeypatch.setattr(faults, "_sleep", lambda _s: None)
        faults.set_policy(RetryPolicy(max_retries=1, backoff_base=0.0))
        fi.install("fail:index=0,times=10")
        with pytest.raises(CellFailure, match="alpha.*2 attempts") \
                as exc_info:
            engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
        assert isinstance(exc_info.value.__cause__, fi.InjectedFault)

    def test_fault_free_run_reports_zero_recoveries(self):
        engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
        snap = engine.resilience_snapshot()
        assert all(value == 0 for value in snap.values())
        assert "resilience" not in engine.render_stage_report()


class TestPoolRecovery:
    def test_worker_crash_rebuilds_pool(self):
        faults.set_policy(_instant())
        fi.install("crash:index=1")
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        snap = engine.resilience_snapshot()
        assert snap["engine.pool_rebuilds"] >= 1
        assert snap["engine.retries"] >= 1
        assert "resilience" in engine.render_stage_report()

    def test_persistent_crashes_degrade_to_serial(self):
        # Workers die on every attempt; the rebuild budget is zero, so
        # the engine must fall back to in-process execution (where the
        # crash directive is inert by design) and still finish.
        faults.set_policy(RetryPolicy(max_retries=99, backoff_base=0.0,
                                      max_pool_rebuilds=0))
        fi.install("crash:index=0,times=99")
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        snap = engine.resilience_snapshot()
        assert snap["engine.fallbacks.serial"] == 1
        assert snap["engine.pool_rebuilds"] == 1

    def test_transient_failure_retries_in_pool(self, monkeypatch):
        monkeypatch.setattr(faults, "_sleep", lambda _s: None)
        faults.set_policy(_instant())
        fi.install("fail:index=2")
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert engine.fault_stats().retries == 1
        assert engine.fault_stats().pool_rebuilds == 0

    def test_pool_budget_exhaustion_raises(self, monkeypatch):
        monkeypatch.setattr(faults, "_sleep", lambda _s: None)
        faults.set_policy(RetryPolicy(max_retries=1, backoff_base=0.0))
        fi.install("fail:index=0,times=10")
        with pytest.raises(CellFailure, match="alpha"):
            engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)

    def test_stalled_cell_times_out_and_recovers(self):
        faults.set_policy(RetryPolicy(max_retries=2, backoff_base=0.0,
                                      cell_timeout=1.0))
        fi.install("stall:index=1,seconds=60")
        started = time.monotonic()
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)
        elapsed = time.monotonic() - started
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert engine.fault_stats().timeouts == 1
        # The stalled worker was killed, not waited out.
        assert elapsed < 30

    def test_persistent_stall_raises_cell_timeout(self):
        faults.set_policy(RetryPolicy(max_retries=0, backoff_base=0.0,
                                      cell_timeout=0.5))
        fi.install("stall:index=0,times=5,seconds=60")
        started = time.monotonic()
        with pytest.raises(CellTimeout, match="alpha.*0.5s timeout"):
            engine.run_cells(_ok_cell, NAMES, 1.0, jobs=2)
        assert time.monotonic() - started < 30

    def test_recovered_run_results_match_undisturbed(self):
        baseline = engine.run_cells(_ok_cell, NAMES, 2.0, jobs=1)
        engine.reset_fault_stats()
        faults.set_policy(_instant())
        fi.install("crash:index=0;fail:index=2")
        recovered = engine.run_cells(_ok_cell, NAMES, 2.0, jobs=2)
        assert recovered == baseline
        assert engine.fault_stats().any


class TestSerialWatchdog:
    """``--jobs 1`` honours ``cell_timeout`` through a SIGALRM
    watchdog (POSIX main thread only), mirroring the pool path's
    timeout/retry semantics."""

    def test_watchdog_is_usable_here(self):
        # CI and dev boxes are POSIX and pytest runs in the main
        # thread; if this fails the rest of the class is vacuous.
        assert engine._serial_watchdog_usable()

    def test_stalled_cell_times_out_and_recovers(self):
        faults.set_policy(RetryPolicy(max_retries=2, backoff_base=0.0,
                                      cell_timeout=1.0))
        fi.install("stall:index=1,seconds=60")
        started = time.monotonic()
        results = engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
        assert results == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert engine.fault_stats().timeouts == 1
        assert engine.fault_stats().retries == 1
        # The wedged attempt was interrupted, not waited out.
        assert time.monotonic() - started < 30

    def test_persistent_stall_raises_cell_timeout(self):
        faults.set_policy(RetryPolicy(max_retries=1, backoff_base=0.0,
                                      cell_timeout=0.5))
        fi.install("stall:index=0,times=5,seconds=60")
        started = time.monotonic()
        with pytest.raises(CellTimeout, match="alpha.*0.5s timeout"):
            engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
        assert time.monotonic() - started < 30
        assert engine.fault_stats().timeouts == 2   # both attempts

    def test_prior_alarm_handler_restored(self):
        import signal
        sentinel = lambda signum, frame: None
        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            faults.set_policy(RetryPolicy(max_retries=0,
                                          cell_timeout=5.0))
            engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1)
            assert signal.getsignal(signal.SIGALRM) is sentinel
            assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_no_watchdog_without_timeout(self):
        faults.set_policy(RetryPolicy(max_retries=0))
        assert engine.run_cells(_ok_cell, NAMES, 1.0, jobs=1) \
            == ["alpha@1.0", "beta@1.0", "gamma@1.0"]
        assert engine.fault_stats().timeouts == 0
