"""Metrics collection through the experiment engine.

Covers the ISSUE-2 guarantees: per-cell metric exports are
byte-identical at every ``--jobs`` level, the disabled registry keeps
driver results metric-free at near-zero cost, and every driver returns
the uniform :class:`ExperimentResult`.
"""

import time
import warnings

import pytest

from repro import metrics
from repro.eval import ExperimentResult, engine
from repro.eval.experiments import figure4, table1, table2
from repro.metrics import export
from repro.workloads import suite

SCALE = 0.2
NAMES = ("db_vortex", "go_ai")


@pytest.fixture(autouse=True)
def _clean():
    engine.take_metrics()
    yield
    metrics.disable()
    engine.take_metrics()
    suite.clear_caches()
    engine.set_jobs(None)


def _figure4_export(jobs):
    metrics.enable()
    try:
        result = figure4(SCALE, NAMES, jobs=jobs)
    finally:
        metrics.disable()
    document = export.experiment_document("figure4", SCALE,
                                          result.metrics)
    return export.to_json(document)


class TestDeterminism:
    def test_jobs_1_and_2_byte_identical(self):
        assert _figure4_export(jobs=1) == _figure4_export(jobs=2)

    @pytest.mark.slow
    def test_jobs_4_byte_identical(self):
        assert _figure4_export(jobs=1) == _figure4_export(jobs=4)


class TestCollection:
    def test_cells_keyed_by_workload(self):
        metrics.enable()
        try:
            result = figure4(SCALE, NAMES, jobs=1)
        finally:
            metrics.disable()
        assert list(result.metrics) == list(NAMES)
        for snapshot in result.metrics.values():
            assert snapshot["cpu.instructions"]["value"] > 0
            assert "predictor.1bit-hybrid.references" in snapshot

    def test_table2_publishes_window_timeseries(self):
        metrics.enable()
        try:
            result = table2(SCALE, ("db_vortex",), jobs=1)
        finally:
            metrics.disable()
        snapshot = result.metrics["db_vortex"]
        entry = snapshot["trace.window32.stack"]
        assert entry["kind"] == "timeseries"
        assert entry["interval"] == 32
        assert entry["count"] > 0
        # The exact moments reproduce the rendered Table-2 mean.
        w32 = result.data.stats[0][0]
        assert entry["sum"] / entry["count"] \
            == pytest.approx(w32.stack.mean)

    def test_disabled_run_collects_nothing(self):
        assert not metrics.active().enabled
        result = figure4(SCALE, ("db_vortex",), jobs=1)
        assert result.metrics == {}
        assert engine.take_metrics() == {}

    def test_metric_totals_merges_cells(self):
        metrics.enable()
        try:
            result = table1(SCALE, NAMES, jobs=1)
        finally:
            metrics.disable()
        totals = result.metric_totals()
        per_cell = sum(s["cpu.instructions"]["value"]
                       for s in result.metrics.values())
        assert totals["cpu.instructions"]["value"] == per_cell


class TestExperimentResult:
    def test_all_drivers_return_experiment_result(self):
        result = table1(SCALE, ("db_vortex",), jobs=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "table1"
        assert result.headers[0] == "Benchmark"
        assert result.rows[0][0] == "db_vortex"
        assert result.stage_times is not None
        assert result.stage_times.cells >= 1

    def test_render_matches_payload_render(self):
        result = table1(SCALE, ("db_vortex",), jobs=1)
        assert result.render() == result.data.render()

    def test_payload_reached_only_through_data(self):
        """The PR 2 legacy-forwarding shim is retired: payload
        attributes are reached explicitly via ``.data``, and misses
        raise ``AttributeError`` without any deprecation detour."""
        result = table1(SCALE, ("db_vortex",), jobs=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert result.data.rows is result.data.rows
            with pytest.raises(AttributeError):
                result.table       # only .data.table() exists now
            with pytest.raises(AttributeError):
                result.no_such_attribute
        assert not caught

    def test_unknown_attribute_still_raises(self):
        result = table1(SCALE, ("db_vortex",), jobs=1)
        with pytest.raises(AttributeError):
            result.no_such_attribute


@pytest.mark.slow
class TestDisabledOverhead:
    def test_disabled_not_slower_than_enabled(self):
        """The null-registry fast path must cost (at most) noise.

        An enabled run does strictly more work than a disabled one, so
        a disabled run markedly slower than an enabled run would mean
        the fast path is broken.  Uses min-of-5 to damp scheduler
        noise (cells are short since the columnar backbone, so relative
        jitter is larger); the bound is deliberately loose - the
        structural guarantees live in tests/metrics/test_registry.py.
        """
        def timed(enabled):
            best = float("inf")
            for _ in range(5):
                suite.clear_caches()
                if enabled:
                    metrics.enable()
                started = time.perf_counter()
                figure4(0.1, ("db_vortex",), jobs=1)
                elapsed = time.perf_counter() - started
                metrics.disable()
                engine.take_metrics()
                best = min(best, elapsed)
            return best

        timed(enabled=False)           # warm code paths and imports
        enabled = timed(enabled=True)
        disabled = timed(enabled=False)
        assert disabled <= enabled * 1.25
