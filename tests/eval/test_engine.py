"""Tests for the experiment execution engine (fan-out + stage timing).

The load-bearing property is equivalence: every experiment table must be
byte-identical whether the trace cache is disabled, cold, or warm, and
at any ``--jobs`` level.
"""

import pytest

from repro.eval import engine, figure4
from repro.trace import cache as trace_cache
from repro.workloads import suite

SCALE = 0.2
NAMES = ("db_vortex", "go_ai")


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(trace_cache.ENV_VAR, raising=False)
    monkeypatch.delenv(engine.JOBS_ENV_VAR, raising=False)
    trace_cache.reset()
    engine.set_jobs(None)
    engine.reset_stage_times()
    yield
    trace_cache.reset()
    engine.set_jobs(None)
    engine.reset_stage_times()
    suite.clear_caches()


def _cell(name, scale):
    return f"{name}@{scale:g}"


def _flaky_order_cell(name, scale, delays):
    # Later-submitted cells finish first; results must still come back
    # in submission order.
    import time
    time.sleep(delays[name])
    return name


class TestRunCells:
    def test_serial_results_in_submission_order(self):
        results = engine.run_cells(_cell, ("b", "a", "c"), 0.5, jobs=1)
        assert results == ["b@0.5", "a@0.5", "c@0.5"]

    def test_parallel_results_in_submission_order(self):
        delays = {"b": 0.2, "a": 0.0, "c": 0.1}
        results = engine.run_cells(
            _flaky_order_cell, ("b", "a", "c"), 1.0, delays, jobs=3)
        assert results == ["b", "a", "c"]

    def test_cell_count_accumulates(self):
        engine.run_cells(_cell, ("x", "y"), 1.0, jobs=1)
        assert engine.stage_times().cells == 2


class TestJobs:
    def test_default_is_serial(self):
        assert engine.get_jobs() == 1

    def test_set_jobs(self):
        engine.set_jobs(4)
        assert engine.get_jobs() == 4

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "3")
        assert engine.get_jobs() == 3

    def test_bad_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "lots")
        assert engine.get_jobs() == 1

    def test_bad_env_var_warns_naming_value(self, monkeypatch):
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "lots")
        engine._warned_jobs.clear()
        with pytest.warns(RuntimeWarning, match="'lots'"):
            assert engine.get_jobs() == 1

    def test_nonpositive_env_var_warns(self, monkeypatch):
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "-2")
        engine._warned_jobs.clear()
        with pytest.warns(RuntimeWarning, match="'-2'"):
            assert engine.get_jobs() == 1

    def test_bad_env_var_warns_once_per_value(self, monkeypatch):
        import warnings as warnings_module
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "zero")
        engine._warned_jobs.clear()
        with pytest.warns(RuntimeWarning):
            engine.get_jobs()
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert engine.get_jobs() == 1   # already reported: silent


class TestStageTimes:
    def test_merge(self):
        a = engine.StageTimes(functional_sim=1.0, replay=2.0, cells=1)
        a.merge(engine.StageTimes(functional_sim=0.5, cache_io=0.25,
                                  cells=2, cache_hits=3))
        assert a.functional_sim == 1.5
        assert a.cache_io == 0.25
        assert a.cells == 3
        assert a.cache_hits == 3
        assert a.total == 1.5 + 0.25 + 2.0

    def test_render_mentions_cache_state(self, tmp_path):
        trace_cache.configure(tmp_path)
        text = engine.StageTimes(cells=2).render()
        assert str(tmp_path) in text
        trace_cache.configure(None)
        assert "off" in engine.StageTimes().render()


class TestTraceFor:
    def test_columnar_conversion_attributed_to_cache_io(self, monkeypatch):
        """Stage attribution: converting a records-backed trace to its
        columnar view inside ``trace_for`` is charged to the trace-cache
        I/O stage, not to functional simulation (or, later, replay)."""
        import time as time_module

        from repro.trace.columns import ColumnarTrace
        from repro.trace.records import OC_IALU, Trace, TraceRecord

        records = [TraceRecord(0x400000, OC_IALU, dst=3, value=1)] * 4

        def stub_run(name, scale):
            return Trace(name, list(records))
        stub_run.cache_clear = lambda: None  # clear_caches() compatibility
        monkeypatch.setattr(suite, "run", stub_run)
        original = ColumnarTrace.from_records.__func__
        delay = 0.05

        def slow_from_records(cls, recs):
            time_module.sleep(delay)
            return original(cls, recs)

        monkeypatch.setattr(ColumnarTrace, "from_records",
                            classmethod(slow_from_records))
        trace = engine.trace_for("stub", 1.0)
        times = engine.stage_times()
        assert trace.has_columns
        assert times.cache_io >= delay
        # The conversion must not inflate the simulation stage.
        assert times.functional_sim < delay

    def test_column_backed_trace_costs_no_cache_io(self, monkeypatch):
        from repro.trace.columns import ColumnarTrace
        from repro.trace.records import Trace

        def stub_run(name, scale):
            return Trace(name, columns=ColumnarTrace.empty())
        stub_run.cache_clear = lambda: None  # clear_caches() compatibility
        monkeypatch.setattr(suite, "run", stub_run)
        engine.trace_for("stub", 1.0)
        assert engine.stage_times().cache_io == 0.0

    def test_warm_cache_skips_functional_sim(self, tmp_path):
        trace_cache.configure(tmp_path)
        engine.trace_for(NAMES[0], SCALE)
        suite.evict(NAMES[0], SCALE)   # force the next call to disk
        engine.reset_stage_times()
        trace = engine.trace_for(NAMES[0], SCALE)
        times = engine.stage_times()
        assert times.functional_sim == 0.0
        assert times.cache_hits == 1
        assert times.cache_io > 0.0
        assert len(trace) > 0


@pytest.mark.slow
class TestEquivalence:
    def test_cache_cold_warm_disabled_identical(self, tmp_path):
        disabled = figure4(SCALE, NAMES).render()
        trace_cache.configure(tmp_path)
        cold = figure4(SCALE, NAMES).render()
        assert trace_cache.active_cache().stats.misses == len(NAMES)
        engine.reset_stage_times()
        warm = figure4(SCALE, NAMES).render()
        assert cold == disabled
        assert warm == disabled
        # The warm pass never ran the functional simulator.
        times = engine.stage_times()
        assert times.functional_sim == 0.0
        assert times.cache_hits == len(NAMES)

    def test_jobs_levels_identical(self, tmp_path):
        trace_cache.configure(tmp_path)
        serial = figure4(SCALE, NAMES, jobs=1).render()
        parallel = figure4(SCALE, NAMES, jobs=4).render()
        assert parallel == serial


class TestCellNotes:
    def test_verbose_report_aligns_per_cell_lines(self):
        engine._note_cell("db_vortex", hits=2, misses=1)
        engine._note_cell("go_ai", replays=1)
        engine._note_cell("db_vortex", replays=1)
        report = engine.render_stage_report()
        lines = [line for line in report.splitlines()
                 if "cache" in line and "replays" in line]
        # One aligned line per cell, in submission order, accumulating
        # across repeated notes for the same cell.
        assert lines == [
            "  db_vortex  cache 2 hit / 1 miss  replays 1",
            "  go_ai      cache 0 hit / 0 miss  replays 1",
        ]

    def test_reset_clears_cell_notes(self):
        engine._note_cell("db_vortex", hits=1)
        engine.reset_stage_times()
        assert "per-cell:" not in engine.render_stage_report()
