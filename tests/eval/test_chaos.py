"""Chaos suite: experiments survive injected faults with identical output.

The load-bearing guarantee - worker crashes, cell failures, stalled
cells, and corrupted cache entries may cost retries and rebuilds, but
they must never change a rendered table or an exported metric.  Every
drill compares a recovered run byte-for-byte against an undisturbed
fault-free serial run (the ``resilience`` export section, which by
design reports what *this* run survived, is excluded).
"""

import json

import pytest

from repro import metrics
from repro.cli import main
from repro.eval import engine, faults, figure4
from repro.eval.faults import RetryPolicy
from repro.metrics import export
from repro.testing import faults as fi
from repro.trace import cache as trace_cache
from repro.workloads import suite

SCALE = 0.2
NAMES = ("db_vortex", "go_ai")


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    monkeypatch.delenv(trace_cache.ENV_VAR, raising=False)
    trace_cache.reset()
    engine.set_jobs(None)
    engine.set_checkpoint(None)
    engine.reset_stage_times()
    engine.reset_fault_stats()
    engine.take_metrics()
    fi.install(None)
    faults.set_policy(None)
    yield
    metrics.disable()
    trace_cache.reset()
    engine.set_checkpoint(None)
    engine.reset_fault_stats()
    engine.take_metrics()
    fi.install(None)
    faults.set_policy(None)
    suite.clear_caches()


def _figure4_run(jobs, spec=None):
    """One metered figure4 run; returns (render, export-json, snap)."""
    suite.clear_caches()
    engine.reset_stage_times()
    engine.reset_fault_stats()
    fi.install(spec)
    metrics.enable()
    try:
        result = figure4(SCALE, NAMES, jobs=jobs)
    finally:
        metrics.disable()
        fi.install(None)
    document = export.experiment_document(
        "figure4", SCALE, result.metrics,
        resilience=engine.resilience_snapshot())
    snap = document.pop("resilience")
    return result.render(), export.to_json(document), snap


class TestCrashChaos:
    def test_crash_and_failure_recovery_byte_identical(self):
        baseline_render, baseline_json, baseline_snap = \
            _figure4_run(jobs=1)
        assert not any(baseline_snap.values())

        faults.set_policy(RetryPolicy(max_retries=2, backoff_base=0.0))
        render, doc, snap = _figure4_run(
            jobs=4, spec="crash:index=1;fail:index=0")
        assert render == baseline_render
        assert doc == baseline_json
        assert snap["engine.pool_rebuilds"] >= 1
        assert snap["engine.retries"] >= 1

    @pytest.mark.slow
    def test_timeout_recovery_byte_identical(self):
        baseline_render, baseline_json, _ = _figure4_run(jobs=1)

        faults.set_policy(RetryPolicy(max_retries=2, backoff_base=0.0,
                                      cell_timeout=30.0))
        render, doc, snap = _figure4_run(
            jobs=4, spec="stall:index=0,seconds=300")
        assert render == baseline_render
        assert doc == baseline_json
        assert snap["engine.timeouts"] == 1


class TestCacheChaos:
    def test_corrupt_cache_entry_regenerated_mid_run(self, tmp_path):
        """A bit-rotten archive is quarantined and re-simulated inside
        the run; tables match and the corruption is counted."""
        trace_cache.configure(tmp_path)
        baseline_render, _, _ = _figure4_run(jobs=1)   # warms the cache
        # Corrupt the entry of the cell that will also lose its worker:
        # the crash fires at cell start (before the fetch), so the
        # retry attempt is the one that detects and repairs the rot.
        (entry,) = tmp_path.glob("go_ai__*.npz")
        fi.corrupt_file(entry, "garbage", seed=5)

        faults.set_policy(RetryPolicy(max_retries=2, backoff_base=0.0))
        render, _, snap = _figure4_run(jobs=4, spec="crash:index=1")
        assert render == baseline_render
        assert snap["trace.cache.corrupt"] == 1
        assert snap["engine.pool_rebuilds"] >= 1
        quarantined = list(tmp_path.glob("go_ai__*.npz.quarantined"))
        assert len(quarantined) == 1
        # The regenerated archive is intact: a fresh run loads it warm.
        clean_render, _, clean_snap = _figure4_run(jobs=1)
        assert clean_render == baseline_render
        assert clean_snap["trace.cache.corrupt"] == 0


class TestCliChaos:
    def test_experiment_figure4_jobs4_drill(self, tmp_path, capsys):
        """The acceptance drill: ``repro experiment figure4 --jobs 4``
        under injected faults matches a fault-free serial run."""
        serial = tmp_path / "serial.json"
        chaos = tmp_path / "chaos.json"
        base = ["experiment", "figure4", "--scale", str(SCALE),
                "db_vortex", "go_ai", "--metrics-out"]
        assert main(base + [str(serial), "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        suite.clear_caches()
        assert main(base + [str(chaos), "--jobs", "4", "--inject-fault",
                            "crash:index=0;fail:index=1"]) == 0
        chaos_out = capsys.readouterr().out
        assert chaos_out == serial_out

        serial_doc = json.loads(serial.read_text())
        chaos_doc = json.loads(chaos.read_text())
        assert set(serial_doc.pop("resilience").values()) == {0}
        resilience = chaos_doc.pop("resilience")
        assert serial_doc == chaos_doc
        assert resilience["engine.pool_rebuilds"] >= 1
        assert resilience["engine.retries"] >= 1
