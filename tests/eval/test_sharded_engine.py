"""End-to-end (cell x shard) fan-out vs. monolithic experiment runs.

Runs real experiment drivers through the engine twice - sharding off,
and sharding on at awkward shard sizes / jobs levels - against
separate temp trace caches, and asserts the *user-visible contract*:
rendered tables, per-cell metric snapshots, and exported metric
documents are byte-identical.  Also covers the engine's sharded trace
handles (manifest-derived cpu.* metrics) and the streaming CLI cells.
"""

import pytest

from repro import metrics
from repro.api import session as api_session
from repro.eval import engine, experiments
from repro.metrics import export
from repro.trace import cache as trace_cache
from repro.trace import shards
from repro.workloads import suite

#: Two real workloads kept cheap (~33k instructions each at this scale).
NAMES = ("db_vortex", "ccomp")
SCALE = 0.02

DRIVERS = (experiments.table1, experiments.figure2,
           experiments.table2, experiments.figure4)


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    trace_cache.configure(None)
    shards.set_shard_rows(None)
    engine.take_metrics()
    metrics.disable()
    suite.clear_caches()


def _run_drivers(cache_dir, shard_rows, jobs):
    """Tables + collected per-cell metrics for every driver."""
    trace_cache.configure(cache_dir)
    shards.set_shard_rows(shard_rows)
    engine.reset_stage_times()
    out = {}
    metrics.enable()
    try:
        for driver in DRIVERS:
            result = driver(scale=SCALE, names=NAMES, jobs=jobs)
            out[driver.__name__] = (result.headers, result.rows,
                                    result.metrics)
    finally:
        metrics.disable()
        trace_cache.configure(None)
        shards.set_shard_rows(None)
        suite.clear_caches()
    return out


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    return _run_drivers(tmp_path_factory.mktemp("mono"), None, 1)


class TestShardedExperimentIdentity:
    @pytest.mark.parametrize("shard_rows,jobs",
                             ((1000, 1), (1000, 2), (7777, 2)))
    def test_tables_and_metrics_identical(self, baseline,
                                          tmp_path_factory,
                                          shard_rows, jobs):
        got = _run_drivers(tmp_path_factory.mktemp("shard"),
                           shard_rows, jobs)
        for driver in baseline:
            base_headers, base_rows, base_cells = baseline[driver]
            headers, rows, cells = got[driver]
            assert headers == base_headers, driver
            assert rows == base_rows, driver
            assert list(cells) == list(base_cells), driver
            for cell in base_cells:
                assert cells[cell] == base_cells[cell], \
                    f"{driver}/{cell}"

    def test_export_documents_identical(self, baseline,
                                        tmp_path_factory):
        got = _run_drivers(tmp_path_factory.mktemp("shardx"), 2048, 2)
        for driver in baseline:
            base_doc = export.experiment_document(
                driver, SCALE, baseline[driver][2])
            doc = export.experiment_document(
                driver, SCALE, got[driver][2])
            assert doc["cells"] == base_doc["cells"], driver
            assert doc["totals"] == base_doc["totals"], driver


class TestShardedTraceHandle:
    def test_handle_is_sharded_and_metrics_match_manifest(
            self, tmp_path):
        trace_cache.configure(tmp_path)
        shards.set_shard_rows(500)
        registry = metrics.enable()
        try:
            handle = engine.trace_handle(NAMES[0], SCALE)
            assert isinstance(handle, shards.ShardedTrace)
            assert handle.num_shards > 1
            snapshot = registry.snapshot()
        finally:
            metrics.disable()
        assert snapshot["cpu.instructions"]["value"] == len(handle)
        assert snapshot["cpu.loads"]["value"] == handle.load_count
        assert snapshot["cpu.region.stack"]["value"] \
            == handle.counts()["region_stack"]

    def test_handle_falls_back_to_trace_when_sharding_off(
            self, tmp_path):
        trace_cache.configure(tmp_path)
        shards.set_shard_rows(0)
        handle = engine.trace_handle(NAMES[0], SCALE)
        assert not isinstance(handle, shards.ShardedTrace)

    def test_trace_for_materializes_under_sharding(self, tmp_path):
        # Timing/LVC cells need real in-RAM traces even when sharding
        # is on; trace_for must transparently materialise.
        trace_cache.configure(tmp_path)
        shards.set_shard_rows(500)
        trace = engine.trace_for(NAMES[0], SCALE)
        assert not isinstance(trace, shards.ShardedTrace)
        assert trace.has_columns and len(trace) > 0


class TestStreamingCliCells:
    @pytest.mark.parametrize("shard_rows", (400, 5000))
    def test_regions_and_predict_lines_identical(self, tmp_path,
                                                 shard_rows):
        name = NAMES[0]
        trace_cache.configure(tmp_path)
        shards.set_shard_rows(0)
        plain_regions = api_session.regions_cell(name, SCALE)
        plain_predict = api_session.predict_cell(
            name, SCALE, api_session.DEFAULT_SCHEME)
        shards.set_shard_rows(shard_rows)
        assert api_session.regions_cell(name, SCALE) == plain_regions
        assert api_session.predict_cell(
            name, SCALE, api_session.DEFAULT_SCHEME) == plain_predict


class TestFanOutResilience:
    def test_run_cells_sharded_requires_fallback_without_sharding(
            self):
        shards.set_shard_rows(0)
        with pytest.raises(ValueError):
            engine.run_cells_sharded(lambda *a: None, lambda *a: None,
                                     NAMES, SCALE)

    def test_shard_counters_reported_in_resilience(self, tmp_path):
        trace_cache.configure(tmp_path)
        shards.set_shard_rows(1000)
        experiments.figure2(scale=SCALE, names=(NAMES[0],), jobs=1)
        snap = engine.resilience_snapshot()
        assert snap["trace.shards.produced"] > 0
        assert snap["trace.shards.loaded"] > 0
        assert snap["trace.shards.corrupt"] == 0
        assert "trace.cache.evictions" in snap
