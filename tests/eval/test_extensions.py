"""Tests for the extension experiments (A4 static hints, A5 banking)."""

import pytest

from repro.eval.experiments import (ablation_banked_cache,
                                    ablation_static_hints)
from repro.workloads import suite

SCALE = 0.2
NAMES = ("go_ai", "lisp")


@pytest.fixture(scope="module", autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()


class TestStaticHintsExperiment:
    def test_rows_and_ordering(self):
        result = ablation_static_hints(SCALE, NAMES)
        assert [row.name for row in result.data.rows] == list(NAMES)
        for row in result.data.rows:
            assert 0.0 < row.coverage <= 1.0
            # no hints <= Fig-6 hints <= ideal hints (within epsilon).
            assert row.accuracy_static >= row.accuracy_none - 1e-9
            assert row.accuracy_ideal >= row.accuracy_static - 1e-9

    def test_render(self):
        result = ablation_static_hints(SCALE, ("go_ai",))
        text = result.render()
        assert "Fig-6" in text
        assert "go_ai" in text


@pytest.mark.slow
class TestBankedExperiment:
    def test_speedups_structure(self):
        result = ablation_banked_cache(SCALE, NAMES)
        for name in NAMES:
            by_cfg = result.data.speedups[name]
            assert by_cfg["(2+0)"] == 1.0
            # Banked never beats ported at the same width (per program
            # small slack for simulation noise).
            assert by_cfg["(4b+0) banked"] <= by_cfg["(4+0) ported"] + 0.01

    def test_render_has_geomean(self):
        result = ablation_banked_cache(SCALE, ("go_ai",))
        assert "GEOMEAN" in result.render()
