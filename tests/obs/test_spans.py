"""Tests for the span tracer (nesting, disabled mode, worker merge)."""

import json
import os

import pytest

from repro import metrics
from repro.obs import spans


@pytest.fixture(autouse=True)
def _disabled_after():
    yield
    spans.disable()
    metrics.disable()


def _journal(directory):
    path = directory / spans.JOURNAL
    return [json.loads(line)
            for line in path.read_text().splitlines() if line.strip()]


class TestDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert spans.active() is None
        assert spans.span("a") is spans.span("b")
        assert spans.span("a") is spans.NULL_SPAN

    def test_null_span_is_inert(self, tmp_path):
        with spans.span("anything", workload="w") as sp:
            sp.set("key", "value")
        assert list(tmp_path.iterdir()) == []

    def test_traced_decorator_passthrough(self):
        @spans.traced("work")
        def add(a, b):
            "doc"
            return a + b

        assert add(2, 3) == 5
        assert add.__name__ == "add"
        assert add.__doc__ == "doc"


class TestNesting:
    def test_parent_child_ids_nest(self, tmp_path):
        spans.enable(tmp_path, run_id="r1")
        with spans.span("outer") as outer:
            with spans.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with spans.span("sibling") as sibling:
                pass
        spans.disable()

        entries = {e["name"]: e for e in _journal(tmp_path)}
        assert set(entries) == {"outer", "inner", "sibling"}
        assert entries["outer"]["parent"] is None
        assert entries["inner"]["parent"] == entries["outer"]["id"]
        assert entries["sibling"]["parent"] == entries["outer"]["id"]
        # Children close before the parent, so they journal first.
        names = [e["name"] for e in _journal(tmp_path)]
        assert names.index("inner") < names.index("outer")

    def test_ids_embed_pid_and_are_unique(self, tmp_path):
        tracer = spans.enable(tmp_path)
        first, second = tracer.next_id(), tracer.next_id()
        assert first != second
        assert first.startswith(f"{os.getpid():x}.")
        spans.disable()

    def test_attrs_and_error_recorded(self, tmp_path):
        spans.enable(tmp_path)
        with pytest.raises(ValueError):
            with spans.span("boom", workload="w") as sp:
                sp.set("attempt", 2)
                raise ValueError("no")
        spans.disable()
        (entry,) = _journal(tmp_path)
        assert entry["attrs"]["workload"] == "w"
        assert entry["attrs"]["attempt"] == 2
        assert entry["attrs"]["error"] == "ValueError"
        assert entry["dur"] >= 0.0

    def test_capture_metrics_records_counter_delta(self, tmp_path):
        metrics.enable()
        metrics.active().counter("cache.hits").inc(3)
        spans.enable(tmp_path)
        with spans.span("cell", capture_metrics=True):
            metrics.active().counter("cache.hits").inc(2)
            metrics.active().counter("cache.misses").inc(1)
        spans.disable()
        (entry,) = _journal(tmp_path)
        # Only what changed inside the span, as a delta.
        assert entry["attrs"]["metrics"] == {"cache.hits": 2,
                                             "cache.misses": 1}


class TestWorkerMerge:
    def test_worker_journal_merges_under_parent(self, tmp_path):
        tracer = spans.enable(tmp_path, run_id="run")
        with spans.span("engine:run_cells") as engine_span:
            state = spans.worker_state()
            assert state == (str(tmp_path), "run", engine_span.span_id,
                             None, None)
            # Simulate a pool worker: its own journal file, top-level
            # spans parented to the engine span that spawned it.
            worker = spans.SpanTracer(
                tmp_path, "run", journal_name=f"{spans.WORKER_PREFIX}"
                f"999.jsonl", default_parent=engine_span.span_id)
            cell = spans.Span(worker, "cell", {"workload": "w"})
            with cell:
                pass
            worker.close()
        assert (tmp_path / f"{spans.WORKER_PREFIX}999.jsonl").exists()
        spans.disable()          # parent merges worker journals

        assert not list(tmp_path.glob(spans.WORKER_PREFIX + "*.jsonl"))
        entries = {e["name"]: e for e in _journal(tmp_path)}
        assert entries["cell"]["parent"] \
            == entries["engine:run_cells"]["id"]
        assert tracer.pid == entries["engine:run_cells"]["pid"]

    def test_merge_drops_malformed_lines(self, tmp_path):
        spans.enable(tmp_path)
        broken = tmp_path / f"{spans.WORKER_PREFIX}7.jsonl"
        broken.write_text('{"name": "ok", "id": "7.1", "parent": null,'
                          ' "pid": 7, "tid": 1, "start": 1.0,'
                          ' "dur": 0.5, "attrs": {}}\n'
                          '{"truncated...\n')
        merged = spans.active().merge_worker_journals()
        spans.disable()
        assert merged == 1
        assert not broken.exists()

    def test_worker_state_none_when_disabled(self):
        assert spans.worker_state() is None


class TestRotation:
    def test_journal_rotates_at_size_bound(self, tmp_path, monkeypatch):
        monkeypatch.setenv(spans.MAX_BYTES_ENV_VAR, "2000")
        tracer = spans.enable(tmp_path)
        for index in range(60):
            with spans.span("work", index=index):
                pass
        spans.disable()
        main = tmp_path / spans.JOURNAL
        rotated = main.with_name(main.name + spans.ROTATED_SUFFIX)
        assert rotated.exists(), "overflow should rotate a segment aside"
        assert main.stat().st_size <= 2000 + 400   # one span of slack
        assert rotated.stat().st_size <= 2000 + 400
        # The newest spans survive in the live segment.
        newest = json.loads(main.read_text().splitlines()[-1])
        assert newest["attrs"]["index"] == 59
        assert tracer.max_bytes == 2000

    def test_unset_bound_never_rotates(self, tmp_path, monkeypatch):
        monkeypatch.delenv(spans.MAX_BYTES_ENV_VAR, raising=False)
        spans.enable(tmp_path)
        for _ in range(50):
            with spans.span("work"):
                pass
        spans.disable()
        main = tmp_path / spans.JOURNAL
        assert not main.with_name(main.name
                                  + spans.ROTATED_SUFFIX).exists()

    def test_invalid_bound_treated_as_unbounded(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(spans.MAX_BYTES_ENV_VAR, "not-a-number")
        tracer = spans.enable(tmp_path)
        spans.disable()
        assert tracer.max_bytes == 0


class TestShardSpanSampling:
    def test_sample_every_nth_shard_span(self, tmp_path, monkeypatch):
        from repro.trace import shards
        from repro.trace.records import OC_IALU, Trace, TraceRecord
        monkeypatch.setenv(shards.SPAN_SAMPLE_ENV_VAR, "4")
        trace = Trace("sampled", [TraceRecord(0x400000, OC_IALU)
                                  for _ in range(10)])
        writer_dir = tmp_path / "entry"
        writer = shards.ShardWriter(writer_dir, "sampled", 1)
        for chunk in shards.shard_trace(trace, 1).chunks():
            writer.append(chunk)
        writer.finish([], 0)
        spans.enable(tmp_path)
        list(shards.load_sharded(writer_dir).chunks())
        spans.disable()
        recorded = [entry for entry in _journal(tmp_path)
                    if entry["name"] == "trace:shard"]
        # Shards 0, 4, 8 of the 10 single-row shards are sampled.
        assert [entry["attrs"]["shard"] for entry in recorded] \
            == [0, 4, 8]

    def test_default_samples_every_shard(self, tmp_path, monkeypatch):
        from repro.trace import shards
        from repro.trace.records import OC_IALU, Trace, TraceRecord
        monkeypatch.delenv(shards.SPAN_SAMPLE_ENV_VAR, raising=False)
        trace = Trace("allspans", [TraceRecord(0x400000, OC_IALU)
                                   for _ in range(3)])
        writer_dir = tmp_path / "entry"
        writer = shards.ShardWriter(writer_dir, "allspans", 1)
        for chunk in shards.shard_trace(trace, 1).chunks():
            writer.append(chunk)
        writer.finish([], 0)
        spans.enable(tmp_path)
        list(shards.load_sharded(writer_dir).chunks())
        spans.disable()
        recorded = [entry for entry in _journal(tmp_path)
                    if entry["name"] == "trace:shard"]
        assert len(recorded) == 3
