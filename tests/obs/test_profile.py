"""Tests for span-journal aggregation and the ``repro profile`` CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import manifest as run_manifest
from repro.obs import profile, spans


def _span(name, span_id, parent, start, dur, pid=100, **attrs):
    return {"name": name, "id": span_id, "parent": parent, "pid": pid,
            "tid": 1, "start": start, "dur": dur, "attrs": attrs}


def _write_run(directory, spans_list, experiment="figure2", scale=1.0):
    lines = [json.dumps(entry) for entry in spans_list]
    (directory / spans.JOURNAL).write_text("\n".join(lines) + "\n")
    document = run_manifest.build_manifest(
        "test-run", command="experiment", experiment=experiment,
        scale=scale, jobs=2)
    run_manifest.write_manifest(directory, document)


def _three_span_run(directory, root_dur=5.0, **kwargs):
    _write_run(directory, [
        _span("cell", "100.3", "100.2", 1.1, 2.0, workload="db_vortex"),
        _span("engine:run_cells", "100.2", "100.1", 1.0, 4.0, cells=1),
        _span("cli:experiment", "100.1", None, 0.5, root_dur),
    ], **kwargs)


def _baseline(path, seconds, scale=1.0):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"scale": scale, "seconds": seconds}))
    return path


class TestLoadRun:
    def test_load_sorts_and_finds_roots(self, tmp_path):
        _three_span_run(tmp_path)
        run = profile.load_run(tmp_path)
        assert [s["name"] for s in run.spans] \
            == ["cli:experiment", "engine:run_cells", "cell"]
        assert [s["name"] for s in run.roots] == ["cli:experiment"]
        assert run.manifest["experiment"] == "figure2"
        assert run.origin == 0.5

    def test_load_skips_malformed_lines(self, tmp_path):
        (tmp_path / spans.JOURNAL).write_text(
            json.dumps(_span("ok", "1.1", None, 0.0, 1.0))
            + "\n{broken\n")
        run = profile.load_run(tmp_path)
        assert len(run.spans) == 1
        assert run.skipped == 1

    def test_load_folds_unmerged_worker_journals(self, tmp_path):
        _three_span_run(tmp_path)
        stray = tmp_path / f"{spans.WORKER_PREFIX}42.jsonl"
        stray.write_text(json.dumps(
            _span("cell", "2a.1", "100.2", 1.2, 1.5, pid=42)) + "\n")
        run = profile.load_run(tmp_path)
        assert len(run.spans) == 4
        assert {s["pid"] for s in run.spans} == {100, 42}

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            profile.load_run(tmp_path)


class TestRendering:
    def test_tree_nests_and_aggregates(self, tmp_path):
        _three_span_run(tmp_path)
        text = profile.render_tree(profile.load_run(tmp_path))
        assert "Span tree: figure2 @ scale 1" in text
        assert "cli:experiment" in text
        assert "    cell [workload=db_vortex]" in text
        assert "Aggregate by span name" in text

    def test_chrome_document_is_trace_event_json(self, tmp_path):
        _three_span_run(tmp_path)
        run = profile.load_run(tmp_path)
        document = profile.chrome_document(run)
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
        # Timestamps are rebased to the earliest span, in microseconds.
        assert min(e["ts"] for e in events) == 0.0
        assert document["otherData"]["experiment"] == "figure2"
        out = profile.write_chrome(run, tmp_path / "out" / "trace.json")
        json.loads(out.read_text())


class TestBaseline:
    def test_ok_within_threshold(self, tmp_path):
        _three_span_run(tmp_path, root_dur=5.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.5})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline, threshold=0.25)
        assert verdict.status == "ok"
        assert verdict.exit_code == 0

    def test_regression_beyond_threshold(self, tmp_path):
        _three_span_run(tmp_path, root_dur=8.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline, threshold=0.25)
        assert verdict.status == "regression"
        assert verdict.exit_code == 1
        assert any("REGRESSION" in m for m in verdict.messages)

    def test_skipped_when_no_baseline_file(self, tmp_path):
        _three_span_run(tmp_path)
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), tmp_path / "absent.json")
        assert verdict.status == "skipped"
        assert verdict.exit_code == 0

    def test_skipped_when_experiment_not_recorded(self, tmp_path):
        _three_span_run(tmp_path, experiment="figure8")
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline)
        assert verdict.status == "skipped"

    def test_skipped_on_scale_mismatch(self, tmp_path):
        _three_span_run(tmp_path, scale=0.2)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0},
                             scale=1.0)
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline)
        assert verdict.status == "skipped"
        assert verdict.exit_code == 0


class TestProfileCommand:
    def test_renders_tree_and_exits_zero(self, tmp_path, capsys):
        _three_span_run(tmp_path)
        assert main(["profile", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "engine:run_cells" in out

    def test_missing_run_exits_two(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nowhere")]) == 2
        assert "no span journal" in capsys.readouterr().err

    def test_chrome_export_flag(self, tmp_path, capsys):
        _three_span_run(tmp_path)
        trace = tmp_path / "perfetto.json"
        assert main(["profile", str(tmp_path),
                     "--chrome", str(trace)]) == 0
        document = json.loads(trace.read_text())
        assert {e["name"] for e in document["traceEvents"]} \
            == {"cli:experiment", "engine:run_cells", "cell"}

    def test_check_gate_exit_codes(self, tmp_path, capsys):
        _three_span_run(tmp_path, root_dur=8.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(baseline),
                     "--threshold", "2.0"]) == 0
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(tmp_path / "absent.json")]) == 0
