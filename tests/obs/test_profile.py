"""Tests for span-journal aggregation and the ``repro profile`` CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import manifest as run_manifest
from repro.obs import profile, spans


def _span(name, span_id, parent, start, dur, pid=100, **attrs):
    return {"name": name, "id": span_id, "parent": parent, "pid": pid,
            "tid": 1, "start": start, "dur": dur, "attrs": attrs}


def _write_run(directory, spans_list, experiment="figure2", scale=1.0):
    lines = [json.dumps(entry) for entry in spans_list]
    (directory / spans.JOURNAL).write_text("\n".join(lines) + "\n")
    document = run_manifest.build_manifest(
        "test-run", command="experiment", experiment=experiment,
        scale=scale, jobs=2)
    run_manifest.write_manifest(directory, document)


def _three_span_run(directory, root_dur=5.0, **kwargs):
    _write_run(directory, [
        _span("cell", "100.3", "100.2", 1.1, 2.0, workload="db_vortex"),
        _span("engine:run_cells", "100.2", "100.1", 1.0, 4.0, cells=1),
        _span("cli:experiment", "100.1", None, 0.5, root_dur),
    ], **kwargs)


def _baseline(path, seconds, scale=1.0):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"scale": scale, "seconds": seconds}))
    return path


class TestLoadRun:
    def test_load_sorts_and_finds_roots(self, tmp_path):
        _three_span_run(tmp_path)
        run = profile.load_run(tmp_path)
        assert [s["name"] for s in run.spans] \
            == ["cli:experiment", "engine:run_cells", "cell"]
        assert [s["name"] for s in run.roots] == ["cli:experiment"]
        assert run.manifest["experiment"] == "figure2"
        assert run.origin == 0.5

    def test_load_skips_malformed_lines(self, tmp_path):
        (tmp_path / spans.JOURNAL).write_text(
            json.dumps(_span("ok", "1.1", None, 0.0, 1.0))
            + "\n{broken\n")
        run = profile.load_run(tmp_path)
        assert len(run.spans) == 1
        assert run.skipped == 1

    def test_load_folds_unmerged_worker_journals(self, tmp_path):
        _three_span_run(tmp_path)
        stray = tmp_path / f"{spans.WORKER_PREFIX}42.jsonl"
        stray.write_text(json.dumps(
            _span("cell", "2a.1", "100.2", 1.2, 1.5, pid=42)) + "\n")
        run = profile.load_run(tmp_path)
        assert len(run.spans) == 4
        assert {s["pid"] for s in run.spans} == {100, 42}

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            profile.load_run(tmp_path)


class TestRendering:
    def test_tree_nests_and_aggregates(self, tmp_path):
        _three_span_run(tmp_path)
        text = profile.render_tree(profile.load_run(tmp_path))
        assert "Span tree: figure2 @ scale 1" in text
        assert "cli:experiment" in text
        assert "    cell [workload=db_vortex]" in text
        assert "Aggregate by span name" in text

    def test_chrome_document_is_trace_event_json(self, tmp_path):
        _three_span_run(tmp_path)
        run = profile.load_run(tmp_path)
        document = profile.chrome_document(run)
        events = document["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
        # Timestamps are rebased to the earliest span, in microseconds.
        assert min(e["ts"] for e in events) == 0.0
        assert document["otherData"]["experiment"] == "figure2"
        out = profile.write_chrome(run, tmp_path / "out" / "trace.json")
        json.loads(out.read_text())


class TestBaseline:
    def test_ok_within_threshold(self, tmp_path):
        _three_span_run(tmp_path, root_dur=5.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.5})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline, threshold=0.25)
        assert verdict.status == "ok"
        assert verdict.exit_code == 0

    def test_regression_beyond_threshold(self, tmp_path):
        _three_span_run(tmp_path, root_dur=8.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline, threshold=0.25)
        assert verdict.status == "regression"
        assert verdict.exit_code == 1
        assert any("REGRESSION" in m for m in verdict.messages)

    def test_skipped_when_no_baseline_file(self, tmp_path):
        _three_span_run(tmp_path)
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), tmp_path / "absent.json")
        assert verdict.status == "skipped"
        assert verdict.exit_code == 0

    def test_skipped_when_experiment_not_recorded(self, tmp_path):
        _three_span_run(tmp_path, experiment="figure8")
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline)
        assert verdict.status == "skipped"

    def test_skipped_on_scale_mismatch(self, tmp_path):
        _three_span_run(tmp_path, scale=0.2)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0},
                             scale=1.0)
        verdict = profile.compare_baseline(
            profile.load_run(tmp_path), baseline)
        assert verdict.status == "skipped"
        assert verdict.exit_code == 0


class TestProfileCommand:
    def test_renders_tree_and_exits_zero(self, tmp_path, capsys):
        _three_span_run(tmp_path)
        assert main(["profile", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "engine:run_cells" in out

    def test_missing_run_exits_two(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nowhere")]) == 2
        assert "no span journal" in capsys.readouterr().err

    def test_chrome_export_flag(self, tmp_path, capsys):
        _three_span_run(tmp_path)
        trace = tmp_path / "perfetto.json"
        assert main(["profile", str(tmp_path),
                     "--chrome", str(trace)]) == 0
        document = json.loads(trace.read_text())
        assert {e["name"] for e in document["traceEvents"]} \
            == {"cli:experiment", "engine:run_cells", "cell"}

    def test_check_gate_exit_codes(self, tmp_path, capsys):
        _three_span_run(tmp_path, root_dur=8.0)
        baseline = _baseline(tmp_path / "base.json", {"figure2": 4.0})
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(baseline),
                     "--threshold", "2.0"]) == 0
        assert main(["profile", str(tmp_path), "--check",
                     "--baseline", str(tmp_path / "absent.json")]) == 0


class TestRotatedSegments:
    def test_load_folds_rotated_main_and_worker_segments(self,
                                                         tmp_path):
        _three_span_run(tmp_path)
        (tmp_path / (spans.JOURNAL + spans.ROTATED_SUFFIX)).write_text(
            json.dumps(_span("old:root", "90.1", None, 0.1, 0.2))
            + "\n")
        (tmp_path / f"{spans.WORKER_PREFIX}7.jsonl"
         f"{spans.ROTATED_SUFFIX}").write_text(
            json.dumps(_span("old:cell", "7.1", "100.2", 1.05, 0.1,
                             pid=7)) + "\n")
        run = profile.load_run(tmp_path)
        names = [s["name"] for s in run.spans]
        assert "old:root" in names
        assert "old:cell" in names
        assert len(run.spans) == 5

    def test_bare_journal_file_folds_its_rotated_sibling(self,
                                                         tmp_path):
        journal = tmp_path / spans.JOURNAL
        journal.write_text(
            json.dumps(_span("new", "1.2", None, 2.0, 1.0)) + "\n")
        journal.with_name(journal.name + spans.ROTATED_SUFFIX)\
            .write_text(
                json.dumps(_span("old", "1.1", None, 1.0, 1.0)) + "\n")
        run = profile.load_run(journal)
        assert [s["name"] for s in run.spans] == ["old", "new"]


def _request_run(directory, incarnation, request_id, attempt,
                 completed, start=1.0, started_unix=1000.0):
    """A daemon-style run directory: one request's spans."""
    entries = [
        _span("serve:request:start", f"{attempt}00.1", None, start,
              0.0, op="regions", incarnation=incarnation,
              request=request_id, request_attempt=attempt),
    ]
    if completed:
        entries += [
            _span("serve:request", f"{attempt}00.2", None, start, 0.5,
                  op="regions", status=200, incarnation=incarnation,
                  request=request_id, request_attempt=attempt),
            # Inherits its incarnation down the parent chain.
            _span("api:trace", f"{attempt}00.3", f"{attempt}00.2",
                  start + 0.1, 0.3, request=request_id,
                  request_attempt=attempt),
        ]
    directory.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(entry) for entry in entries]
    (directory / spans.JOURNAL).write_text("\n".join(lines) + "\n")
    document = run_manifest.build_manifest("req-run", command="serve")
    document["started_unix"] = started_unix
    document["started_monotonic"] = 0.0
    document["incarnation_id"] = incarnation
    run_manifest.write_manifest(directory, document)


class TestRequestTimeline:
    def test_merges_two_incarnations_on_the_wall_clock(self, tmp_path):
        # Incarnation A started attempt 0 and died; B completed
        # attempt 1 from a *different* run directory with a different
        # clock anchor.
        _request_run(tmp_path / "a", "s1-1.0", "req-9", 0,
                     completed=False, start=5.0, started_unix=1000.0)
        _request_run(tmp_path / "b", "s1-1.1", "req-9", 1,
                     completed=True, start=2.0, started_unix=1010.0)
        runs = profile.load_runs([tmp_path / "a", tmp_path / "b"])
        timeline = profile.request_timeline(runs, "req-9")
        assert timeline.incarnations == ["s1-1.0", "s1-1.1"]
        # Wall-clock order: A's event at 1005, B's spans at 1012+.
        assert [e["t"] for e in timeline.entries] \
            == sorted(e["t"] for e in timeline.entries)
        attempts = timeline.attempts
        assert attempts[0]["outcome"] == "started, never completed"
        assert attempts[1]["outcome"] == "completed status 200"
        # The unstamped-by-attr child resolved via its parent chain.
        child = next(e for e in timeline.entries
                     if e["name"] == "api:trace")
        assert child["incarnation"] == "s1-1.1"
        text = profile.render_request_timeline(timeline)
        assert "2 attempt(s) across 2 incarnation(s)" in text
        assert "s1-1.0" in text and "s1-1.1" in text

    def test_other_requests_are_excluded(self, tmp_path):
        _request_run(tmp_path / "a", "i-1", "req-1", 0, completed=True)
        _request_run(tmp_path / "b", "i-1", "req-2", 0, completed=True)
        runs = profile.load_runs([tmp_path / "a", tmp_path / "b"])
        timeline = profile.request_timeline(runs, "req-1")
        assert timeline.entries
        assert all(e["attrs"]["request"] == "req-1"
                   for e in timeline.entries)
        assert timeline.sources == [(tmp_path / "a")]

    def test_profile_request_flag_renders_timeline(self, tmp_path,
                                                   capsys):
        _request_run(tmp_path / "a", "i-1", "req-1", 0, completed=True)
        code = main(["profile", str(tmp_path / "a"),
                     "--request", "req-1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Request req-1" in out
        assert "completed status 200" in out

    def test_profile_request_flag_exits_one_when_absent(self, tmp_path,
                                                        capsys):
        _request_run(tmp_path / "a", "i-1", "req-1", 0, completed=True)
        code = main(["profile", str(tmp_path / "a"),
                     "--request", "missing"])
        assert code == 1
        assert "no spans found" in capsys.readouterr().out

    def test_profile_renders_multiple_runs(self, tmp_path, capsys):
        for name in ("a", "b"):
            (tmp_path / name).mkdir()
            _three_span_run(tmp_path / name)
        code = main(["profile", str(tmp_path / "a"),
                     str(tmp_path / "b")])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("Span tree") == 2
