"""Tests for the address-space layout and region classification."""

import pytest

from repro.runtime import layout
from repro.runtime.layout import Region, classify_address, is_stack_address


class TestSegmentOrdering:
    def test_segments_do_not_overlap(self):
        assert layout.TEXT_BASE < layout.DATA_BASE
        assert layout.DATA_LIMIT <= layout.HEAP_BASE
        assert layout.HEAP_LIMIT <= layout.STACK_LIMIT
        assert layout.STACK_LIMIT < layout.STACK_BASE

    def test_gp_points_into_data_segment(self):
        assert layout.DATA_BASE <= layout.GP_VALUE < layout.DATA_LIMIT

    def test_word_size(self):
        assert layout.WORD_SIZE == 8


class TestClassifyAddress:
    def test_data_addresses(self):
        assert classify_address(layout.DATA_BASE) is Region.DATA
        assert classify_address(layout.DATA_LIMIT - 8) is Region.DATA

    def test_heap_addresses(self):
        assert classify_address(layout.HEAP_BASE) is Region.HEAP
        assert classify_address(layout.HEAP_LIMIT - 8) is Region.HEAP

    def test_stack_addresses(self):
        assert classify_address(layout.STACK_BASE) is Region.STACK
        assert classify_address(layout.STACK_LIMIT) is Region.STACK
        assert classify_address(layout.STACK_BASE - 4096) is Region.STACK

    def test_text_addresses(self):
        assert classify_address(layout.TEXT_BASE) is Region.TEXT

    def test_unmapped_address_raises(self):
        with pytest.raises(ValueError):
            classify_address(0)

    def test_region_boundaries_are_exclusive(self):
        # One word below the heap base is still data.
        assert classify_address(layout.HEAP_BASE - 8) is Region.DATA
        # One word below the stack limit is still heap.
        assert classify_address(layout.STACK_LIMIT - 8) is Region.HEAP


class TestIsStackAddress:
    def test_matches_classify(self):
        for addr in (layout.DATA_BASE, layout.HEAP_BASE,
                     layout.STACK_LIMIT, layout.STACK_BASE):
            expected = classify_address(addr) is Region.STACK
            assert is_stack_address(addr) == expected

    def test_region_is_stack_property(self):
        assert Region.STACK.is_stack
        assert not Region.DATA.is_stack
        assert not Region.HEAP.is_stack
