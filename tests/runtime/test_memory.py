"""Tests for the word-addressed memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime import layout
from repro.runtime.memory import Memory, MemoryError_

_DATA_WORDS = st.integers(min_value=0, max_value=4095)


def _data_addr(word_index: int) -> int:
    return layout.DATA_BASE + word_index * layout.WORD_SIZE


class TestBasicAccess:
    def test_uninitialised_reads_zero(self):
        memory = Memory()
        assert memory.load(_data_addr(0)) == 0

    def test_store_then_load(self):
        memory = Memory()
        memory.store(_data_addr(1), 42)
        assert memory.load(_data_addr(1)) == 42

    def test_overwrite(self):
        memory = Memory()
        addr = _data_addr(2)
        memory.store(addr, 1)
        memory.store(addr, 2)
        assert memory.load(addr) == 2

    def test_float_values(self):
        memory = Memory()
        memory.store(_data_addr(3), 3.25)
        assert memory.load(_data_addr(3)) == 3.25

    def test_misaligned_access_raises(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.load(layout.DATA_BASE + 3)
        with pytest.raises(MemoryError_):
            memory.store(layout.DATA_BASE + 1, 0)

    def test_unmapped_address_raises(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.load(8)

    def test_footprint(self):
        memory = Memory()
        memory.store(_data_addr(0), 1)
        memory.store(_data_addr(1), 2)
        memory.store(_data_addr(0), 3)  # overwrite: no growth
        assert len(memory) == 2
        assert memory.footprint_bytes() == 16


class TestBlockAccess:
    def test_block_roundtrip(self):
        memory = Memory()
        values = [10, 20, 30, 40]
        memory.store_block(_data_addr(8), values)
        assert memory.load_block(_data_addr(8), 4) == values

    def test_block_partial_default(self):
        memory = Memory()
        memory.store(_data_addr(0), 7)
        assert memory.load_block(_data_addr(0), 3) == [7, 0, 0]


class TestMemoryProperties:
    @given(st.dictionaries(_DATA_WORDS,
                           st.integers(min_value=-2**63, max_value=2**63 - 1),
                           max_size=64))
    def test_store_load_agree_for_arbitrary_patterns(self, mapping):
        memory = Memory()
        for word, value in mapping.items():
            memory.store(_data_addr(word), value)
        for word, value in mapping.items():
            assert memory.load(_data_addr(word)) == value

    @given(st.lists(st.tuples(_DATA_WORDS, st.integers()), max_size=50))
    def test_last_write_wins(self, writes):
        memory = Memory()
        expected = {}
        for word, value in writes:
            memory.store(_data_addr(word), value)
            expected[word] = value
        for word, value in expected.items():
            assert memory.load(_data_addr(word)) == value
