"""Tests for the first-fit heap allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.allocator import AllocationError, HeapAllocator
from repro.runtime.layout import HEAP_BASE, WORD_SIZE


class TestBasicAllocation:
    def test_first_allocation_at_heap_base(self):
        allocator = HeapAllocator()
        assert allocator.allocate(4) == HEAP_BASE

    def test_sequential_allocations_do_not_overlap(self):
        allocator = HeapAllocator()
        a = allocator.allocate(4)
        b = allocator.allocate(8)
        assert b >= a + 4 * WORD_SIZE

    def test_zero_or_negative_size_rejected(self):
        allocator = HeapAllocator()
        with pytest.raises(AllocationError):
            allocator.allocate(0)
        with pytest.raises(AllocationError):
            allocator.allocate(-3)

    def test_word_alignment(self):
        allocator = HeapAllocator()
        for size in (1, 3, 7, 2):
            assert allocator.allocate(size) % WORD_SIZE == 0

    def test_heap_exhaustion(self):
        allocator = HeapAllocator(base=HEAP_BASE,
                                  limit=HEAP_BASE + 8 * WORD_SIZE)
        allocator.allocate(8)
        with pytest.raises(AllocationError):
            allocator.allocate(1)


class TestFreeAndReuse:
    def test_free_unknown_address_raises(self):
        allocator = HeapAllocator()
        with pytest.raises(AllocationError):
            allocator.free(HEAP_BASE)

    def test_double_free_raises(self):
        allocator = HeapAllocator()
        addr = allocator.allocate(2)
        allocator.free(addr)
        with pytest.raises(AllocationError):
            allocator.free(addr)

    def test_freed_block_is_reused(self):
        allocator = HeapAllocator()
        a = allocator.allocate(4)
        allocator.allocate(4)  # prevent trivial bump reuse
        allocator.free(a)
        again = allocator.allocate(4)
        assert again == a

    def test_first_fit_splits_blocks(self):
        allocator = HeapAllocator()
        a = allocator.allocate(8)
        allocator.allocate(1)
        allocator.free(a)
        small = allocator.allocate(3)
        assert small == a            # reuses the front of the hole
        rest = allocator.allocate(5)
        assert rest == a + 3 * WORD_SIZE

    def test_coalescing_of_adjacent_blocks(self):
        allocator = HeapAllocator()
        a = allocator.allocate(4)
        b = allocator.allocate(4)
        allocator.allocate(1)        # guard against brk merge
        allocator.free(a)
        allocator.free(b)
        merged = allocator.allocate(8)
        assert merged == a

    def test_coalescing_in_reverse_order(self):
        allocator = HeapAllocator()
        a = allocator.allocate(4)
        b = allocator.allocate(4)
        allocator.allocate(1)
        allocator.free(b)
        allocator.free(a)
        merged = allocator.allocate(8)
        assert merged == a

    def test_counters(self):
        allocator = HeapAllocator()
        addr = allocator.allocate(4)
        allocator.free(addr)
        assert allocator.total_allocations == 1
        assert allocator.total_frees == 1
        assert allocator.live_blocks == 0

    def test_block_size_query(self):
        allocator = HeapAllocator()
        addr = allocator.allocate(6)
        assert allocator.block_size(addr) == 6
        allocator.free(addr)
        with pytest.raises(AllocationError):
            allocator.block_size(addr)


class TestAllocatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=64),
                    min_size=1, max_size=60))
    def test_live_blocks_never_overlap(self, sizes):
        allocator = HeapAllocator()
        blocks = [(allocator.allocate(s), s) for s in sizes]
        spans = sorted((addr, addr + s * WORD_SIZE) for addr, s in blocks)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=32)),
                    min_size=1, max_size=80))
    def test_alloc_free_interleaving_preserves_invariants(self, actions):
        allocator = HeapAllocator()
        live = []
        for do_free, size in actions:
            if do_free and live:
                allocator.free(live.pop(0))
            else:
                live.append(allocator.allocate(size))
        assert allocator.live_blocks == len(live)
        # Full cleanup returns the allocator to a coalescible state.
        for addr in live:
            allocator.free(addr)
        assert allocator.live_blocks == 0
        # After freeing everything, one big block must be allocatable from
        # the base again (all holes coalesced).
        total_words = (allocator.high_water_mark - HEAP_BASE) // WORD_SIZE
        if total_words:
            assert allocator.allocate(total_words) == HEAP_BASE
