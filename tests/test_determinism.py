"""Whole-pipeline determinism: identical inputs give identical results.

Reproducibility is the point of this repository; these tests pin it at
three levels - compilation, tracing, and experiment results.
"""

import pytest

from repro.compiler import compile_source
from repro.cpu import run_program
from repro.eval import figure4
from repro.timing import conventional_config, simulate
from repro.workloads import suite

SOURCE = """
int g[32];
int seed = 11;
int lcg() { seed = (seed * 1103515245 + 12345) & 2147483647;
            return seed; }
int main() {
  int* h = (int*) malloc(16);
  int t = 0;
  for (int i = 0; i < 200; i += 1) {
    g[i & 31] = lcg() & 255;
    h[i & 15] = g[i & 31] * 2;
    t = (t + h[i & 15]) & 65535;
  }
  print_int(t);
  free(h);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def _clear():
    yield
    suite.clear_caches()


class TestDeterminism:
    def test_compilation_is_deterministic(self):
        first = compile_source(SOURCE, "d")
        second = compile_source(SOURCE, "d")
        assert len(first.program) == len(second.program)
        for a, b in zip(first.program.instructions,
                        second.program.instructions):
            assert (a.op, a.rd, a.rs, a.rt, a.imm, a.target,
                    a.region_tag) \
                == (b.op, b.rd, b.rs, b.rt, b.imm, b.target, b.region_tag)

    def test_traces_are_bitwise_identical(self):
        first = run_program(compile_source(SOURCE, "d"))
        second = run_program(compile_source(SOURCE, "d"))
        assert first.output == second.output
        assert len(first) == len(second)
        for a, b in zip(first.records, second.records):
            assert (a.pc, a.op_class, a.addr, a.region, a.taken,
                    a.value) == (b.pc, b.op_class, b.addr, b.region,
                                 b.taken, b.value)

    def test_timing_is_deterministic(self):
        trace = run_program(compile_source(SOURCE, "d"))
        first = simulate(trace, conventional_config(2))
        second = simulate(trace, conventional_config(2))
        assert first.cycles == second.cycles
        assert first.l1_hit_rate == second.l1_hit_rate

    def test_experiment_results_reproduce(self):
        names = ("db_vortex",)
        first = figure4(0.1, names)
        suite.clear_caches()
        second = figure4(0.1, names)
        for scheme in ("static", "1bit", "1bit-hybrid"):
            assert first.data.results["db_vortex"][scheme].accuracy \
                == second.data.results["db_vortex"][scheme].accuracy
