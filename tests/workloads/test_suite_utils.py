"""Tests for suite utilities: run_all, cache management, metadata."""

import pytest

from repro.workloads import suite


@pytest.fixture(autouse=True)
def _clear():
    yield
    suite.clear_caches()


class TestRunAll:
    def test_yields_requested_names_in_order(self):
        names = ("db_vortex", "go_ai")
        seen = []
        for name, trace in suite.run_all(0.1, names):
            seen.append(name)
            assert len(trace) > 0
            suite.run.cache_clear()
        assert seen == list(names)

    def test_defaults_to_full_suite(self):
        generator = suite.run_all(0.05)
        first_name, _ = next(generator)
        assert first_name == suite.ALL_WORKLOADS[0]
        generator.close()


class TestCacheManagement:
    def test_clear_caches_drops_compilations(self):
        suite.compile_workload("db_vortex", 0.1)
        assert suite.compile_workload.cache_info().currsize >= 1
        suite.clear_caches()
        assert suite.compile_workload.cache_info().currsize == 0

    def test_compilation_cached_across_runs(self):
        first = suite.compile_workload("db_vortex", 0.1)
        second = suite.compile_workload("db_vortex", 0.1)
        assert first is second


class TestMetadata:
    def test_kind_partition(self):
        assert set(suite.ALL_WORKLOADS) \
            == set(suite.INTEGER_WORKLOADS) | set(suite.FP_WORKLOADS)
        for name in suite.INTEGER_WORKLOADS:
            assert suite.spec(name).kind == "int"
        for name in suite.FP_WORKLOADS:
            assert suite.spec(name).kind == "fp"

    def test_mirrors_cover_the_paper_suite(self):
        mirrors = {suite.spec(n).mirrors for n in suite.ALL_WORKLOADS}
        expected = {"099.go", "124.m88ksim", "126.gcc", "129.compress",
                    "130.li", "132.ijpeg", "134.perl", "147.vortex",
                    "101.tomcatv", "102.swim", "103.su2cor", "107.mgrid"}
        assert mirrors == expected

    def test_scaled_params_exist(self):
        for name in suite.ALL_WORKLOADS:
            spec = suite.spec(name)
            param_names = {p for p, _ in spec.params}
            for scaled in spec.scaled:
                assert scaled in param_names, name

    def test_timing_scale_reasonable(self):
        assert 0.0 < suite.TIMING_SCALE <= 1.0
