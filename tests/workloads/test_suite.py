"""Tests for the workload suite: compilation, determinism, and the
region signatures each program is designed to exhibit."""

import pytest

from repro.trace.regions import region_breakdown
from repro.workloads import suite

#: A cheap scale for suite-wide checks.
SCALE = 0.25


@pytest.fixture(scope="module", autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()


class TestSuiteStructure:
    def test_twelve_workloads(self):
        assert len(suite.ALL_WORKLOADS) == 12
        assert len(suite.INTEGER_WORKLOADS) == 8
        assert len(suite.FP_WORKLOADS) == 4

    def test_every_spec_has_a_source_file(self):
        for name in suite.ALL_WORKLOADS:
            assert suite.spec(name).filename.exists(), name

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            suite.spec("083.nonesuch")

    def test_source_substitutes_all_parameters(self):
        for name in suite.ALL_WORKLOADS:
            text = suite.source(name, scale=SCALE)
            assert "@" not in text, name

    def test_scale_changes_iteration_parameters(self):
        small = suite.source("compress", scale=0.5)
        large = suite.source("compress", scale=2.0)
        assert small != large

    def test_all_workloads_compile(self):
        for name in suite.ALL_WORKLOADS:
            compiled = suite.compile_workload(name, SCALE)
            assert compiled.text_size > 100, name


class TestExecutionDeterminism:
    def test_traces_are_deterministic(self):
        first = suite.run("db_vortex", SCALE)
        suite.run.cache_clear()
        second = suite.run("db_vortex", SCALE)
        assert first.output == second.output
        assert len(first) == len(second)

    def test_run_caching(self):
        a = suite.run("db_vortex", SCALE)
        b = suite.run("db_vortex", SCALE)
        assert a is b

    def test_evict_is_scoped_to_one_entry(self):
        """Regression: experiment drivers used to ``cache_clear()`` the
        whole memo after every workload, discarding entries other
        callers still wanted."""
        kept = suite.run("db_vortex", SCALE)
        evicted = suite.run("go_ai", SCALE)
        assert suite.evict("go_ai", SCALE)
        # The untouched entry survives...
        assert suite.run("db_vortex", SCALE) is kept
        # ...and the evicted one is re-simulated.
        assert suite.run("go_ai", SCALE) is not evicted
        # Evicting an absent entry reports False.
        assert not suite.evict("go_ai", 0.987)


@pytest.mark.slow
class TestRegionSignatures:
    """Each program must exhibit the region profile of the SPEC95
    program it mirrors (DESIGN.md section 6)."""

    def _breakdown(self, name):
        trace = suite.run(name, SCALE)
        breakdown = region_breakdown(trace)
        suite.run.cache_clear()
        return breakdown

    def test_go_ai_has_no_heap(self):
        breakdown = self._breakdown("go_ai")
        assert breakdown.static_fraction("H") == 0.0

    def test_compress_is_data_heavy_without_heap(self):
        breakdown = self._breakdown("compress")
        assert breakdown.static_fraction("H") == 0.0
        assert breakdown.static_fraction("D") > 0.10

    def test_lisp_touches_heap(self):
        breakdown = self._breakdown("lisp")
        heap_classes = (breakdown.static_fraction("H")
                        + breakdown.static_fraction("D/H")
                        + breakdown.static_fraction("D/H/S"))
        assert heap_classes > 0.02

    def test_fp_programs_mostly_heap_free(self):
        for name in ("tomcatv", "swim_fp", "mgrid_fp"):
            breakdown = self._breakdown(name)
            assert breakdown.static_fraction("H") < 0.08, name

    def test_multi_region_instructions_exist_somewhere(self):
        total = 0.0
        for name in ("go_ai", "lisp", "sim_cpu"):
            total += self._breakdown(name).multi_region_static_fraction
        assert total > 0.0

    def test_checksums_stable(self):
        """Golden outputs: catches any compiler/runtime regression that
        silently changes program semantics."""
        expected_lengths = {}
        for name in ("go_ai", "compress", "db_vortex"):
            trace = suite.run(name, SCALE)
            assert trace.exit_code == 0, name
            assert len(trace.output) >= 1, name
            expected_lengths[name] = len(trace)
            suite.run.cache_clear()
        # Re-running yields identical instruction counts.
        for name, length in expected_lengths.items():
            trace = suite.run(name, SCALE)
            assert len(trace) == length
            suite.run.cache_clear()
