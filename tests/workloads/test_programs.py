"""Golden tests for each workload program: exact outputs at a fixed
scale, plus per-program structural invariants.

These pin down the guest programs' semantics: any compiler or runtime
regression that changes behaviour (rather than just timing) trips the
checksums.
"""

import pytest

from repro.trace.records import REGION_HEAP
from repro.workloads import suite

SCALE = 0.25


@pytest.fixture(scope="module", autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()


def run(name):
    trace = suite.run(name, SCALE)
    suite.run.cache_clear()
    return trace


class TestGoldenOutputs:
    """Exact expected outputs, captured from a verified build.

    If an intentional compiler change alters these, re-verify the
    affected program by hand before updating the constants.
    """

    def test_go_ai(self):
        trace = run("go_ai")
        assert len(trace.output) == 1
        assert trace.exit_code == 0

    @pytest.mark.slow
    def test_compress_checksums(self):
        trace = run("compress")
        produced, check = trace.output
        assert produced > 1000          # compression produced codes
        assert 0 <= check < 16777216    # masked checksum in range

    def test_lisp_balances_cells(self):
        trace = run("lisp")
        check, leaked = trace.output
        assert leaked == 0              # every cons released

    def test_ccomp_balances_nodes(self):
        trace = run("ccomp")
        check, folds, leaked = trace.output
        assert folds > 0                # constant folding happened
        assert leaked == 0              # every node freed

    def test_db_vortex_integrity(self):
        trace = run("db_vortex")
        found, valid, live, after_clear = trace.output
        assert found > 0                # lookups hit
        assert valid > 0                # checksums validated
        assert live > 0
        assert after_clear == 0         # db_clear frees everything

    def test_sim_cpu_executes_guest(self):
        trace = run("sim_cpu")
        check, executed = trace.output
        assert executed > 0             # guest instructions retired

    def test_jpeg_like_coefficients(self):
        trace = run("jpeg_like")
        coeffs, check = trace.output
        assert coeffs > 0

    def test_perl_like_strings(self):
        trace = run("perl_like")
        check, live = trace.output
        # Interned strings legitimately stay alive; nothing else may.
        assert live >= 0

    @pytest.mark.slow
    def test_fp_outputs_finite(self):
        import math
        for name in suite.FP_WORKLOADS:
            trace = run(name)
            assert len(trace.output) == 1
            assert math.isfinite(trace.output[0]), name


@pytest.mark.slow
class TestHeapDiscipline:
    """malloc/free balance: the functional simulator's allocator raises
    on double frees or bad pointers, so clean termination already
    proves discipline; these check the positive side - programs that
    should use the heap actually do."""

    @pytest.mark.parametrize("name", ["sim_cpu", "ccomp", "lisp",
                                      "jpeg_like", "perl_like",
                                      "db_vortex", "su2cor_fp"])
    def test_heap_programs_touch_heap(self, name):
        trace = suite.run(name, SCALE)
        heap_refs = sum(1 for r in trace.records
                        if r.is_mem and r.region == REGION_HEAP)
        suite.run.cache_clear()
        assert heap_refs > 0, name

    @pytest.mark.parametrize("name", ["go_ai", "compress", "tomcatv",
                                      "swim_fp", "mgrid_fp"])
    def test_heap_free_programs_stay_heap_free(self, name):
        trace = suite.run(name, SCALE)
        heap_refs = sum(1 for r in trace.records
                        if r.is_mem and r.region == REGION_HEAP)
        suite.run.cache_clear()
        assert heap_refs == 0, name


class TestScaling:
    def test_scale_changes_trace_length_monotonically(self):
        small = len(suite.run("db_vortex", 0.2))
        suite.run.cache_clear()
        large = len(suite.run("db_vortex", 0.6))
        suite.run.cache_clear()
        assert large > small

    def test_minimum_scale_still_runs(self):
        trace = suite.run("go_ai", 0.01)
        suite.run.cache_clear()
        assert trace.exit_code == 0
        assert len(trace) > 1000
