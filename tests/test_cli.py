"""Tests for the command-line interface."""

import json

import pytest

from repro import metrics
from repro.cli import main
from repro.eval import engine
from repro.testing import faults as fault_injection
from repro.trace import cache as trace_cache
from repro.workloads import suite


@pytest.fixture(autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()
    trace_cache.reset()
    engine.set_jobs(None)
    engine.set_checkpoint(None)
    engine.reset_fault_stats()
    fault_injection.install(None)
    metrics.disable()
    engine.take_metrics()


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        int main() {
          print_int(6 * 7);
          return 0;
        }
    """)
    return path


class TestCli:
    def test_run_command(self, minic_file, capsys):
        code = main(["run", str(minic_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "42" in out

    def test_run_propagates_exit_code(self, tmp_path, capsys):
        path = tmp_path / "exit3.mc"
        path.write_text("int main() { return 3; }")
        assert main(["run", str(path)]) == 3

    def test_disasm_command(self, minic_file, capsys):
        assert main(["disasm", str(minic_file)]) == 0
        out = capsys.readouterr().out
        assert "__start:" in out
        assert "main:" in out
        assert "syscall" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in suite.ALL_WORKLOADS:
            assert name in out

    def test_regions_command(self, capsys):
        assert main(["regions", "--scale", "0.2", "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "db_vortex" in out
        assert "multi:" in out

    def test_predict_command(self, capsys):
        assert main(["predict", "--scale", "0.2", "--scheme", "1bit",
                     "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    @pytest.mark.slow
    def test_experiment_command(self, capsys):
        assert main(["experiment", "section33", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_regions_trace_cache_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "traces"
        args = ["regions", "--scale", "0.2", "--trace-cache",
                str(cache_dir), "db_vortex"]
        assert main(args) == 0
        archived = list(cache_dir.glob("db_vortex__s0.2__v*.npz"))
        assert len(archived) == 1
        # Second invocation replays the archive (and still renders).
        suite.clear_caches()
        assert main(args) == 0
        assert "db_vortex" in capsys.readouterr().out

    @pytest.mark.slow
    def test_experiment_jobs_and_verbose(self, tmp_path, capsys):
        assert main(["experiment", "figure2", "--scale", "0.1",
                     "--jobs", "2", "--verbose", "--trace-cache",
                     str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        # The stage report goes to stderr so stdout stays
        # byte-identical across --jobs levels.
        assert "Stage timing" in captured.err
        assert "functional simulation" in captured.err
        # One aligned per-cell line: cache hits/misses + replays.
        assert "per-cell:" in captured.err
        assert any("cache" in line and "replays" in line
                   for line in captured.err.splitlines())

    def test_unknown_workload_rejected(self, capsys):
        # Validation errors are reported, not raised: exit code 2.
        assert main(["regions", "176.gcc"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "unknown workload" in err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])


class TestExitCodes:
    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() \
            == f"repro {repro.__version__}"

    def test_missing_source_file_is_validation_error(self, tmp_path,
                                                     capsys):
        assert main(["run", str(tmp_path / "nope.mc")]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unknown_scheme_is_validation_error(self, capsys):
        assert main(["predict", "--scale", "0.2", "--scheme",
                     "telepathy", "db_vortex"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_runtime_failure_exits_one(self, monkeypatch, capsys):
        # Exhausting the retry budget is a runtime failure (a
        # well-formed request that could not be served): exit code 1.
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert main(["regions", "--scale", "0.2", "--inject-fault",
                     "fail:index=0", "db_vortex"]) == 1
        err = capsys.readouterr().err
        assert "repro: runtime failure:" in err
        assert "failed after" in err

    def test_bench_load_without_daemon_is_runtime_failure(self, capsys):
        # Connection refused is a runtime failure, not bad input.
        assert main(["bench", "load", "--clients", "1", "--count", "1",
                     "--port", "1"]) == 1
        assert "repro: runtime failure:" in capsys.readouterr().err


class TestUnifiedFlags:
    def test_regions_accepts_jobs(self, capsys):
        assert main(["regions", "--scale", "0.2", "--jobs", "2",
                     "db_vortex", "go_ai"]) == 0
        out = capsys.readouterr().out
        assert "db_vortex" in out and "go_ai" in out

    def test_regions_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "profile_metrics.json"
        assert main(["regions", "--scale", "0.2", "--metrics-out",
                     str(out_file), "db_vortex"]) == 0
        document = json.loads(out_file.read_text())
        assert document["experiment"] == "regions"
        cell = document["cells"]["db_vortex"]
        assert cell["cpu.instructions"]["value"] > 0
        assert "trace.window32.stack" in cell

    def test_experiment_id_as_top_level_alias(self, capsys):
        assert main(["table1", "--scale", "0.2", "db_vortex"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_accepts_workload_names(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.2",
                     "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "db_vortex" in out
        assert "go_ai" not in out

    @pytest.mark.slow
    def test_experiment_metrics_out_jobs_byte_identical(self, tmp_path,
                                                        capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = ["figure4", "--scale", "0.2", "db_vortex", "go_ai",
                "--metrics-out"]
        assert main(base + [str(serial), "--jobs", "1"]) == 0
        suite.clear_caches()
        assert main(base + [str(parallel), "--jobs", "4"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestResilienceFlags:
    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["regions", "--jobs", "0", "db_vortex"])
        assert exc_info.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_noninteger_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["regions", "--jobs", "many", "db_vortex"])
        assert exc_info.value.code == 2
        assert "expected an integer >= 1" in capsys.readouterr().err

    def test_bad_inject_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["regions", "--inject-fault", "explode:index=0",
                  "db_vortex"])
        assert exc_info.value.code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_injected_failure_is_retried_and_reported(self, tmp_path,
                                                      capsys):
        out_file = tmp_path / "metrics.json"
        assert main(["regions", "--scale", "0.2", "--inject-fault",
                     "fail:index=0", "--metrics-out", str(out_file),
                     "db_vortex"]) == 0
        assert "db_vortex" in capsys.readouterr().out
        document = json.loads(out_file.read_text())
        assert document["resilience"]["engine.retries"] == 1
        assert document["cells"]["db_vortex"]["cpu.instructions"][
            "value"] > 0

    def test_fault_free_run_reports_zero_resilience(self, tmp_path):
        out_file = tmp_path / "metrics.json"
        assert main(["regions", "--scale", "0.2", "--metrics-out",
                     str(out_file), "db_vortex"]) == 0
        document = json.loads(out_file.read_text())
        assert set(document["resilience"].values()) == {0}

    def test_checkpoint_flag_resumes(self, tmp_path):
        journal_dir = tmp_path / "journal"
        base = ["regions", "--scale", "0.2", "--checkpoint",
                str(journal_dir), "db_vortex"]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(base + ["--metrics-out", str(first)]) == 0
        suite.clear_caches()
        assert main(base + ["--metrics-out", str(second)]) == 0
        resumed = json.loads(second.read_text())
        assert resumed["resilience"]["checkpoint.hits"] == 1
        assert json.loads(first.read_text())[
            "resilience"]["checkpoint.misses"] == 1
        # Replayed cells restore their metrics byte-for-byte.
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["cells"] == b["cells"]


class TestStatsCommand:
    def test_stats_table_output(self, capsys):
        assert main(["stats", "table1", "--scale", "0.2",
                     "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "Metrics: table1" in out
        assert "cpu.instructions" in out

    def test_stats_json_output_validates(self, capsys):
        assert main(["stats", "table1", "--scale", "0.2", "db_vortex",
                     "--format", "json", "--check"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["experiment"] == "table1"
        assert document["cells"]["db_vortex"]["cpu.loads"]["value"] > 0

    def test_stats_csv_output(self, capsys):
        assert main(["stats", "table1", "--scale", "0.2", "db_vortex",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("cell,metric,kind,field,value")

    def test_stats_metrics_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "stats.json"
        assert main(["stats", "table1", "--scale", "0.2", "db_vortex",
                     "--metrics-out", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["experiment"] == "table1"


class TestObservability:
    def test_untraced_run_writes_no_journal(self, tmp_path, capsys):
        assert main(["table1", "--scale", "0.2", "db_vortex"]) == 0
        assert not list(tmp_path.rglob("spans.jsonl"))

    @pytest.mark.slow
    def test_trace_spans_journal_survives_pool_merge(self, tmp_path,
                                                     capsys):
        obs = tmp_path / "obs"
        assert main(["table1", "--scale", "0.2", "--jobs", "2",
                     "db_vortex", "go_ai",
                     "--trace-spans", str(obs)]) == 0
        entries = [json.loads(line) for line
                   in (obs / "spans.jsonl").read_text().splitlines()]
        ids = {e["id"] for e in entries}
        # Parent/child closure: every parent id resolves, even for
        # spans journaled by pool workers and merged afterwards.
        assert all(e["parent"] is None or e["parent"] in ids
                   for e in entries)
        names = {e["name"] for e in entries}
        assert "engine:run_cells" in names
        assert any(name.startswith("cli:") for name in names)
        run_span = next(e for e in entries
                        if e["name"] == "engine:run_cells")
        cells = [e for e in entries if e["name"] == "cell"]
        assert {c["attrs"]["workload"] for c in cells} \
            == {"db_vortex", "go_ai"}
        assert all(c["parent"] == run_span["id"] for c in cells)
        # Worker journals were folded in and removed.
        assert not list(obs.glob("spans-*.jsonl"))
        manifest_doc = json.loads((obs / "manifest.json").read_text())
        assert manifest_doc["jobs"] == 2
        assert manifest_doc["run_id"]

    @pytest.mark.slow
    def test_trace_spans_keeps_metrics_byte_identical(self, tmp_path,
                                                      capsys):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        base = ["table1", "--scale", "0.2", "db_vortex", "go_ai",
                "--jobs", "4", "--metrics-out"]
        assert main(base + [str(plain)]) == 0
        first_out = capsys.readouterr().out
        suite.clear_caches()
        assert main(base + [str(traced), "--trace-spans",
                            str(tmp_path / "obs")]) == 0
        second_out = capsys.readouterr().out
        assert plain.read_bytes() == traced.read_bytes()
        assert first_out == second_out

    def test_profile_of_traced_run(self, tmp_path, capsys):
        obs = tmp_path / "obs"
        assert main(["table1", "--scale", "0.2", "db_vortex",
                     "--trace-spans", str(obs)]) == 0
        capsys.readouterr()
        assert main(["profile", str(obs)]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "cell [workload=db_vortex" in out
