"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.eval import engine
from repro.trace import cache as trace_cache
from repro.workloads import suite


@pytest.fixture(autouse=True)
def _clear_caches():
    yield
    suite.clear_caches()
    trace_cache.reset()
    engine.set_jobs(None)


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        int main() {
          print_int(6 * 7);
          return 0;
        }
    """)
    return path


class TestCli:
    def test_run_command(self, minic_file, capsys):
        code = main(["run", str(minic_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "42" in out

    def test_run_propagates_exit_code(self, tmp_path, capsys):
        path = tmp_path / "exit3.mc"
        path.write_text("int main() { return 3; }")
        assert main(["run", str(path)]) == 3

    def test_disasm_command(self, minic_file, capsys):
        assert main(["disasm", str(minic_file)]) == 0
        out = capsys.readouterr().out
        assert "__start:" in out
        assert "main:" in out
        assert "syscall" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in suite.ALL_WORKLOADS:
            assert name in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--scale", "0.2", "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "db_vortex" in out
        assert "multi:" in out

    def test_predict_command(self, capsys):
        assert main(["predict", "--scale", "0.2", "--scheme", "1bit",
                     "db_vortex"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    @pytest.mark.slow
    def test_experiment_command(self, capsys):
        assert main(["experiment", "section33", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_profile_trace_cache_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "traces"
        args = ["profile", "--scale", "0.2", "--trace-cache",
                str(cache_dir), "db_vortex"]
        assert main(args) == 0
        archived = list(cache_dir.glob("db_vortex__s0.2__v*.npz"))
        assert len(archived) == 1
        # Second invocation replays the archive (and still renders).
        suite.clear_caches()
        assert main(args) == 0
        assert "db_vortex" in capsys.readouterr().out

    @pytest.mark.slow
    def test_experiment_jobs_and_verbose(self, tmp_path, capsys):
        assert main(["experiment", "figure2", "--scale", "0.1",
                     "--jobs", "2", "--verbose", "--trace-cache",
                     str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Figure 2" in captured.out
        # The stage report goes to stderr so stdout stays
        # byte-identical across --jobs levels.
        assert "Stage timing" in captured.err
        assert "functional simulation" in captured.err

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            main(["profile", "176.gcc"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])
