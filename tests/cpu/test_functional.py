"""Tests for the functional simulator's architectural semantics."""

import pytest

from repro.cpu.functional import (SimulationError, _idiv, _irem, _wrap,
                                  run_source)
from repro.runtime.layout import STACK_BASE
from repro.trace.records import (MODE_GLOBAL, MODE_OTHER, MODE_STACK,
                                 OC_BRANCH, OC_CALL, OC_LOAD, OC_RET,
                                 OC_STORE, REGION_DATA, REGION_HEAP,
                                 REGION_STACK)
from hypothesis import given, strategies as st

_i64 = st.integers(min_value=-2**63, max_value=2**63 - 1)


class TestArithmeticHelpers:
    @given(_i64, _i64)
    def test_wrap_of_sum_matches_two_complement(self, a, b):
        wrapped = _wrap(a + b)
        assert -2**63 <= wrapped < 2**63
        assert (wrapped - (a + b)) % 2**64 == 0

    @given(_i64, _i64.filter(lambda x: x != 0))
    def test_idiv_irem_identity(self, a, b):
        assert _idiv(a, b) * b + _irem(a, b) == a

    @given(_i64, _i64.filter(lambda x: x != 0))
    def test_idiv_truncates_toward_zero(self, a, b):
        q = _idiv(a, b)
        assert abs(q) == abs(a) // abs(b)

    def test_irem_sign_follows_dividend(self):
        assert _irem(-7, 3) == -1
        assert _irem(7, -3) == 1


class TestExecutionFaults:
    def test_division_by_zero(self):
        with pytest.raises(SimulationError):
            run_source("int main() { int z = 0; return 1 / z; }")

    def test_step_limit(self):
        with pytest.raises(SimulationError):
            run_source("int main() { while (1) {} return 0; }",
                       max_steps=10_000)

    def test_wild_pointer_fault(self):
        with pytest.raises(Exception):
            run_source("int main() { int* p = (int*) 8; return *p; }")


class TestTraceContents:
    def _trace(self):
        return run_source("""
            int g;
            int bump(int* p) { *p += 1; return *p; }
            int main() {
              int local = 3;
              g = 5;
              int* h = (int*) malloc(2);
              h[0] = 7;
              int total = 0;
              for (int i = 0; i < 3; i += 1) total += bump(&local);
              total += bump(h);
              print_int(total + g);
              return 0;
            }
        """, "trace-contents")

    def test_output_correct(self):
        trace = self._trace()
        assert trace.output == [4 + 5 + 6 + 8 + 5]

    def test_regions_cover_all_three(self):
        trace = self._trace()
        regions = {r.region for r in trace.records if r.is_mem}
        assert {REGION_DATA, REGION_HEAP, REGION_STACK} <= regions

    def test_bump_instruction_is_multi_region(self):
        trace = self._trace()
        by_pc = {}
        for r in trace.records:
            if r.is_mem and r.mode == MODE_OTHER:
                by_pc.setdefault(r.pc, set()).add(r.region)
        assert any(regions == {REGION_STACK, REGION_HEAP}
                   for regions in by_pc.values())

    def test_addressing_modes_recorded(self):
        trace = self._trace()
        modes = {r.mode for r in trace.records if r.is_mem}
        assert {MODE_STACK, MODE_GLOBAL, MODE_OTHER} <= modes

    def test_branches_record_taken_bit(self):
        trace = self._trace()
        branches = [r for r in trace.records if r.op_class == OC_BRANCH]
        assert branches
        assert any(r.taken for r in branches)
        assert any(not r.taken for r in branches)

    def test_calls_and_returns_present(self):
        trace = self._trace()
        calls = sum(1 for r in trace.records if r.op_class == OC_CALL)
        rets = sum(1 for r in trace.records if r.op_class == OC_RET)
        assert calls >= 4          # three bump(&local) + bump(h)
        assert rets >= 4

    def test_memory_records_carry_link_register(self):
        trace = self._trace()
        ras = {r.ra for r in trace.records
               if r.is_mem and r.mode == MODE_OTHER}
        # bump() is called from two different sites -> (at least) two
        # distinct link-register values observed at its *p accesses.
        assert len(ras) >= 2

    def test_stack_addresses_below_stack_base(self):
        trace = self._trace()
        for r in trace.records:
            if r.is_mem and r.region == REGION_STACK:
                assert r.addr <= STACK_BASE

    def test_loads_record_values(self):
        trace = self._trace()
        int_loads = [r for r in trace.records
                     if r.op_class == OC_LOAD and r.value is not None]
        assert int_loads

    def test_collect_trace_false_returns_empty(self):
        trace = run_source("int main() { print_int(7); return 0; }",
                           collect_trace=False)
        assert len(trace.records) == 0
        assert trace.output == [7]
