"""Functional-simulator tests on hand-assembled programs.

The MiniC compiler never emits some legal instructions (JALR, NOP,
logical-shift-right by register, writes to $zero, JR through a non-$ra
register); these tests build raw Programs to pin their semantics down.
"""

import pytest

from repro.compiler.linker import CompiledProgram
from repro.compiler.symbols import GlobalTable
from repro.cpu.functional import FunctionalSimulator, SimulationError
from repro.isa import registers as R
from repro.isa.instructions import Instruction, Op, Program
from repro.runtime.layout import GP_VALUE, STACK_BASE
from repro.runtime.syscalls import SYS_EXIT, SYS_PRINT_INT
from repro.trace.records import OC_CALL, OC_JUMP, OC_RET


def assemble(body, labels=None):
    """Wrap a raw instruction list in a runnable program image."""
    instructions = [
        Instruction(Op.LI, rd=R.GP, imm=GP_VALUE),
        Instruction(Op.LI, rd=R.SP, imm=STACK_BASE),
    ]
    prologue = len(instructions)
    instructions += body
    instructions += [
        Instruction(Op.LI, rd=R.V0, imm=SYS_EXIT),
        Instruction(Op.SYSCALL),
    ]
    all_labels = {"__start": 0}
    for name, index in (labels or {}).items():
        all_labels[name] = index + prologue
    program = Program(instructions=instructions, labels=all_labels,
                      text_base=0x400000)
    for instr in instructions:
        if instr.target is not None:
            instr.resolved_target = program.pc_of_index(
                all_labels[instr.target])
    return CompiledProgram(name="raw", program=program,
                           globals=GlobalTable())


def run(body, labels=None):
    sim = FunctionalSimulator(assemble(body, labels), max_steps=10_000)
    return sim, sim.run()


class TestRawSemantics:
    def test_nop_does_nothing(self):
        sim, trace = run([
            Instruction(Op.LI, rd=R.T0, imm=7),
            Instruction(Op.NOP),
            Instruction(Op.MOV, rd=R.A0, rs=R.T0),
            Instruction(Op.LI, rd=R.V0, imm=SYS_PRINT_INT),
            Instruction(Op.SYSCALL),
        ])
        assert trace.output == [7]

    def test_writes_to_zero_register_discarded(self):
        sim, trace = run([
            Instruction(Op.LI, rd=R.T0, imm=5),
            Instruction(Op.ADD, rd=R.ZERO, rs=R.T0, rt=R.T0),
            Instruction(Op.MOV, rd=R.A0, rs=R.ZERO),
            Instruction(Op.LI, rd=R.V0, imm=SYS_PRINT_INT),
            Instruction(Op.SYSCALL),
        ])
        assert trace.output == [0]

    def test_srl_is_logical(self):
        sim, trace = run([
            Instruction(Op.LI, rd=R.T0, imm=-1),
            Instruction(Op.LI, rd=R.T1, imm=60),
            Instruction(Op.SRL, rd=R.A0, rs=R.T0, rt=R.T1),
            Instruction(Op.LI, rd=R.V0, imm=SYS_PRINT_INT),
            Instruction(Op.SYSCALL),
        ])
        assert trace.output == [15]   # zero-filled from the top

    def test_jalr_indirect_call(self):
        # Call a "function" whose address was computed into a register.
        body = [
            Instruction(Op.LI, rd=R.T0, imm=0),      # patched below
            Instruction(Op.JALR, rs=R.T0),
            Instruction(Op.LI, rd=R.V0, imm=SYS_PRINT_INT),
            Instruction(Op.SYSCALL),
            Instruction(Op.J, target="__done"),
            # callee: at body index 5
            Instruction(Op.LI, rd=R.A0, imm=99),
            Instruction(Op.JR, rs=R.RA),
        ]
        labels = {"__done": len(body)}   # the exit stub after the body
        compiled = assemble(body, labels)
        callee_pc = compiled.program.pc_of_index(2 + 5)
        compiled.program.instructions[2].imm = callee_pc
        trace = FunctionalSimulator(compiled, max_steps=1000).run()
        assert trace.output == [99]
        classes = [r.op_class for r in trace.records]
        assert OC_CALL in classes
        assert OC_RET in classes

    def test_jr_through_non_ra_register_is_a_jump(self):
        body = [
            Instruction(Op.LI, rd=R.T5, imm=0),       # patched
            Instruction(Op.JR, rs=R.T5),
            Instruction(Op.LI, rd=R.A0, imm=1),       # skipped
            # landing pad: body index 3
            Instruction(Op.LI, rd=R.A0, imm=2),
            Instruction(Op.LI, rd=R.V0, imm=SYS_PRINT_INT),
            Instruction(Op.SYSCALL),
        ]
        compiled = assemble(body)
        compiled.program.instructions[2].imm = \
            compiled.program.pc_of_index(2 + 3)
        trace = FunctionalSimulator(compiled, max_steps=1000).run()
        assert trace.output == [2]
        jump_records = [r for r in trace.records
                        if r.op_class == OC_JUMP]
        assert jump_records   # JR via $t5 classifies as jump, not ret

    def test_misaligned_jump_faults(self):
        body = [
            Instruction(Op.LI, rd=R.T0, imm=0x400003),
            Instruction(Op.JR, rs=R.T0),
        ]
        with pytest.raises(SimulationError):
            run(body)

    def test_unknown_syscall_faults(self):
        body = [
            Instruction(Op.LI, rd=R.V0, imm=999),
            Instruction(Op.SYSCALL),
        ]
        with pytest.raises(SimulationError):
            run(body)

    def test_pc_falls_off_text_segment(self):
        # A program whose last instruction is not an exit runs off the
        # end of the text segment and faults.
        program = Program(
            instructions=[Instruction(Op.NOP)],
            labels={"__start": 0}, text_base=0x400000)
        compiled = CompiledProgram(name="bad", program=program,
                                   globals=GlobalTable())
        with pytest.raises(SimulationError):
            FunctionalSimulator(compiled, max_steps=100).run()
