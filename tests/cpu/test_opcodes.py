"""Per-opcode semantics of the functional simulator.

Each test compiles a tiny MiniC program whose generated code is known
to exercise the opcode(s) in question and checks the architectural
result.  Together with the differential tests these pin down the
interpreter's ALU semantics opcode by opcode.
"""

import pytest

from tests.conftest import run_minic


def out(source):
    return run_minic(source).output


class TestIntegerOps:
    def test_add_sub_wrap_at_64_bits(self):
        big = 2**62
        assert out(f"""
            int main() {{
              int a = {big};
              print_int(a + a + a + a);    // wraps to 0
              print_int(a + a);            // wraps negative
              return 0;
            }}
        """) == [0, -(2**63)]

    def test_mul_wraps(self):
        assert out("""
            int main() {
              int a = 4294967296;   // 2^32
              print_int(a * a);     // 2^64 -> 0
              return 0;
            }
        """) == [0]

    def test_shift_amounts_masked(self):
        # Guest shift amounts are taken mod 64, like MIPS/x86 hardware.
        assert out("""
            int main() {
              int a = 1;
              int s = 65;
              print_int(a << s);
              return 0;
            }
        """) == [2]

    def test_logical_vs_arithmetic_right_shift(self):
        assert out("""
            int main() {
              int a = -8;
              print_int(a >> 1);    // arithmetic: -4
              return 0;
            }
        """) == [-4]

    def test_set_compare_family(self):
        assert out("""
            int main() {
              int a = 3; int b = 5;
              print_int((a < b) + (a <= b) * 10 + (a == b) * 100
                        + (a != b) * 1000 + (a > b) * 10000
                        + (a >= b) * 100000);
              return 0;
            }
        """) == [1 + 10 + 0 + 1000 + 0 + 0]


class TestFloatOps:
    def test_fp_special_values_avoided_by_guards(self):
        assert out("""
            int main() {
              float a = 1.0;
              float b = 3.0;
              print_float(a / b * b);
              return 0;
            }
        """) == [1.0]

    def test_fneg_fabs_via_source_patterns(self):
        assert out("""
            int main() {
              float x = -2.5;
              print_float(-x);
              float y = x;
              if (y < 0.0) y = 0.0 - y;
              print_float(y);
              return 0;
            }
        """) == [2.5, 2.5]

    def test_cvt_round_toward_zero(self):
        assert out("""
            int main() {
              print_int((int) 2.9);
              print_int((int) -2.9);
              return 0;
            }
        """) == [2, -2]

    def test_fp_compare_feeds_integer_branch(self):
        assert out("""
            int main() {
              float a = 1.5;
              if (a > 1.0 && a < 2.0) print_int(1);
              else print_int(0);
              return 0;
            }
        """) == [1]


class TestControlOps:
    def test_jal_jr_roundtrip_depth(self):
        assert out("""
            int id3(int n) { return n; }
            int id2(int n) { return id3(n); }
            int id1(int n) { return id2(n); }
            int main() { print_int(id1(77)); return 0; }
        """) == [77]

    def test_branch_both_directions(self):
        assert out("""
            int main() {
              int taken = 0;
              int nottaken = 0;
              for (int i = 0; i < 10; i += 1) {
                if (i % 2 == 0) taken += 1;
                else nottaken += 1;
              }
              print_int(taken * 10 + nottaken);
              return 0;
            }
        """) == [55]


class TestSyscalls:
    def test_print_order_preserved(self):
        assert out("""
            int main() {
              print_int(1);
              print_float(2.5);
              print_int(3);
              return 0;
            }
        """) == [1, 2.5, 3]

    def test_malloc_zero_rejected(self):
        from repro.runtime.allocator import AllocationError
        with pytest.raises(AllocationError):
            run_minic("int main() { malloc(0); return 0; }",
                      name="malloc-zero")

    def test_guest_double_free_detected(self):
        from repro.runtime.allocator import AllocationError
        with pytest.raises(AllocationError):
            run_minic("""
                int main() {
                  int* p = (int*) malloc(2);
                  free(p);
                  free(p);
                  return 0;
                }
            """, name="double-free")
