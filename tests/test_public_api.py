"""Public-API hygiene: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.isa",
    "repro.lang",
    "repro.compiler",
    "repro.runtime",
    "repro.cpu",
    "repro.trace",
    "repro.predictor",
    "repro.cache",
    "repro.timing",
    "repro.workloads",
    "repro.eval",
    "repro.metrics",
    "repro.api",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} needs a docstring"
    exports = getattr(package, "__all__", None)
    assert exports, f"{package_name} should declare __all__"
    for name in exports:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, \
        f"{package_name}: undocumented public items {undocumented}"


def test_no_export_name_collisions_across_packages():
    """Distinct concepts keep distinct names in the flat namespace
    (aside from deliberate re-exports of the same object)."""
    owners = {}
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if name in owners and owners[name][1] is not obj:
                # Same name exported from two packages for different
                # objects: only allowed for module-level namespaces.
                assert inspect.ismodule(obj), \
                    f"{name} exported by both {owners[name][0]} and " \
                    f"{package_name} with different meanings"
            owners[name] = (package_name, obj)


def test_version_string():
    import repro
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3


def test_api_surface_is_pinned():
    """``repro.api`` is the stable embedding surface: additions are
    deliberate (update this list alongside the docs), removals are
    breaking changes."""
    from repro import api
    assert sorted(api.__all__) == sorted([
        "Session",
        "DeadlineExceeded", "deadline_scope", "check_deadline",
        "current_deadline",
        "RegionsRequest", "RegionsResponse",
        "PredictRequest", "PredictResponse",
        "TimingRequest", "TimingResponse",
        "ExperimentRequest", "ExperimentResponse",
        "EXPERIMENTS", "EXPERIMENT_IDS",
        "DEFAULT_REGIONS_SCALE", "DEFAULT_PREDICT_SCALE",
        "DEFAULT_TIMING_SCALE", "DEFAULT_EXPERIMENT_SCALE",
        "DEFAULT_SCHEME",
        "resolve_names",
        "regions_line", "predict_line", "timing_block",
        "regions_cell", "predict_cell", "timing_cell",
    ])


def test_request_dataclasses_are_frozen_and_hashable():
    """Requests key memoisation tables in resident sessions, so they
    must stay frozen (hence hashable) dataclasses."""
    from repro import api
    request = api.PredictRequest(names=("db_vortex",), scale=0.2)
    assert hash(request) == hash(
        api.PredictRequest(names=("db_vortex",), scale=0.2))
    with pytest.raises(Exception):
        request.scale = 0.3
