"""Tests for the metrics registry and its instruments."""

import pytest

from repro import metrics
from repro.metrics import (MAX_TIMESERIES_POINTS, MetricsRegistry,
                           NULL_REGISTRY, merge_snapshots)


@pytest.fixture(autouse=True)
def _restore_active():
    yield
    metrics.disable()


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("cpu.loads")
        counter.inc()
        counter.inc(41)
        assert counter.snapshot() == {"kind": "counter", "value": 42}

    def test_gauge_none_until_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("lsq.occupancy_peak")
        assert gauge.snapshot()["value"] is None
        gauge.set(17)
        assert gauge.snapshot() == {"kind": "gauge", "value": 17.0,
                                    "updates": 1}

    def test_histogram_buckets_and_extremes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(10, 100))
        for value in (1, 5, 50, 500):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == [2, 1, 1]
        assert snap["min"] == 1 and snap["max"] == 500
        assert hist.mean == pytest.approx(556 / 4)

    def test_histogram_quantile_estimation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(10, 100, 1000))
        assert hist.quantile(0.5) is None       # no observations yet
        for value in range(1, 101):             # uniform 1..100
            hist.observe(value)
        # Exact within a bucket under the uniform assumption; always
        # clamped to the observed envelope.
        assert hist.quantile(0.0) == 1
        assert hist.quantile(1.0) == 100
        assert hist.quantile(0.05) == pytest.approx(5.5, abs=1.0)
        assert 10 <= hist.quantile(0.5) <= 100
        assert hist.quantile(0.99) <= 100       # clamped to max
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_from_snapshot_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(10, 100))
        for value in (1, 5, 50, 500):
            hist.observe(value)
        from repro.metrics.registry import Histogram
        rebuilt = Histogram.from_snapshot("lat", hist.snapshot())
        assert rebuilt.snapshot() == hist.snapshot()
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert rebuilt.quantile(q) == hist.quantile(q)
        with pytest.raises(ValueError):
            Histogram.from_snapshot("x", {"kind": "counter", "value": 1})

    def test_timeseries_moments_and_point_cap(self):
        registry = MetricsRegistry()
        series = registry.timeseries("window", interval=32)
        for value in range(100):
            series.observe(value)
        assert len(series.points) == MAX_TIMESERIES_POINTS
        assert series.count == 100
        assert series.mean == pytest.approx(49.5)
        assert series.std == pytest.approx(28.866, abs=1e-3)

    def test_timeseries_observe_moments(self):
        registry = MetricsRegistry()
        series = registry.timeseries("w", interval=8)
        series.observe_moments(10, 50.0, 300.0)
        snap = series.snapshot()
        assert snap["count"] == 10
        assert snap["sum"] == 50.0
        assert snap["sumsq"] == 300.0
        assert snap["points"] == []


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_namespace_prefixes(self):
        registry = MetricsRegistry()
        ns = registry.scoped("timing").scoped("lsq")
        ns.counter("stall_cycles").inc(3)
        assert registry.snapshot()["timing.lsq.stall_cycles"]["value"] == 3

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert list(registry.snapshot()) == ["alpha", "zeta"]


class TestDisabledFastPath:
    def test_default_active_is_null(self):
        assert metrics.active() is NULL_REGISTRY
        assert not metrics.active().enabled

    def test_null_instruments_are_one_shared_object(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.scoped("deep").scoped("er") is NULL_REGISTRY

    def test_null_registry_accepts_all_operations(self):
        ns = NULL_REGISTRY.scoped("x")
        ns.counter("c").inc(5)
        ns.gauge("g").set(1.0)
        ns.histogram("h").observe(2)
        ns.timeseries("t", interval=4).observe_moments(1, 2.0, 4.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0

    def test_collecting_scopes_activation(self):
        with metrics.collecting() as registry:
            assert metrics.active() is registry
            registry.counter("inner").inc()
        assert metrics.active() is NULL_REGISTRY
        assert registry.snapshot()["inner"]["value"] == 1

    def test_enable_disable_roundtrip(self):
        registry = metrics.enable()
        assert metrics.active() is registry
        metrics.disable()
        assert metrics.active() is NULL_REGISTRY


class TestMergeSnapshots:
    def _snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots(self._snap(a=1, b=2), self._snap(a=10))
        assert merged["a"]["value"] == 11
        assert merged["b"]["value"] == 2

    def test_result_sorted(self):
        merged = merge_snapshots(self._snap(z=1), self._snap(a=1))
        assert list(merged) == ["a", "z"]

    def test_gauge_later_value_wins_only_if_updated(self):
        left = MetricsRegistry()
        left.gauge("g").set(5)
        right = MetricsRegistry()
        right.gauge("g")   # registered but never set
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["g"]["value"] == 5.0
        right.gauge("g").set(9)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["g"]["value"] == 9.0
        assert merged["g"]["updates"] == 2

    def test_histograms_require_matching_bounds(self):
        left = MetricsRegistry()
        left.histogram("h", bounds=(1, 2)).observe(1)
        right = MetricsRegistry()
        right.histogram("h", bounds=(5, 6)).observe(5)
        with pytest.raises(ValueError):
            merge_snapshots(left.snapshot(), right.snapshot())

    def test_histogram_merge_combines_moments(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.histogram("h", bounds=(10,)).observe(3)
        right.histogram("h", bounds=(10,)).observe(30)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["h"]["count"] == 2
        assert merged["h"]["min"] == 3 and merged["h"]["max"] == 30
        assert merged["h"]["buckets"] == [1, 1]

    def test_timeseries_merge_sums_moments(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.timeseries("t", interval=4).observe(2)
        right.timeseries("t", interval=4).observe(4)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["t"]["count"] == 2
        assert merged["t"]["sum"] == 6.0
        assert merged["t"]["points"] == [2.0, 4.0]

    def test_merge_is_associative_for_counters(self):
        a, b, c = (self._snap(x=i) for i in (1, 2, 3))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    def test_merge_does_not_mutate_inputs(self):
        base = self._snap(a=1)
        other = self._snap(a=2)
        merge_snapshots(base, other)
        assert base["a"]["value"] == 1
        assert other["a"]["value"] == 2
