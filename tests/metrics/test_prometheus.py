"""Prometheus text exposition of a registry snapshot."""

import math

from repro.metrics import prometheus


def _lines(text):
    return [line for line in text.splitlines() if line]


class TestNames:
    def test_dots_become_underscores_with_namespace(self):
        assert prometheus.metric_name("serve.requests") \
            == "repro_serve_requests"

    def test_leading_digit_is_guarded(self):
        name = prometheus.metric_name("2bit.accuracy")
        assert name == "repro_2bit_accuracy"   # namespace guards it

    def test_bare_leading_digit_without_namespace(self):
        assert prometheus.metric_name("2bit", namespace="") == "_2bit"


class TestRender:
    def test_counter_renders_with_total_suffix(self):
        text = prometheus.render(
            {"serve.requests": {"kind": "counter", "value": 7}})
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 7" in _lines(text)

    def test_gauge_renders_and_unset_gauge_is_skipped(self):
        text = prometheus.render({
            "serve.inflight": {"kind": "gauge", "value": 3,
                               "updates": 5},
            "serve.unset": {"kind": "gauge", "value": None,
                            "updates": 0},
        })
        assert "repro_serve_inflight 3" in _lines(text)
        assert "unset" not in text

    def test_histogram_buckets_are_cumulative(self):
        snapshot = {"serve.latency_ms": {
            "kind": "histogram", "count": 6, "sum": 30.0,
            "min": 1.0, "max": 20.0,
            "bounds": [5.0, 10.0], "buckets": [3, 2, 1]}}
        text = prometheus.render(snapshot)
        lines = _lines(text)
        assert 'repro_serve_latency_ms_bucket{le="5"} 3' in lines
        assert 'repro_serve_latency_ms_bucket{le="10"} 5' in lines
        assert 'repro_serve_latency_ms_bucket{le="+Inf"} 6' in lines
        assert "repro_serve_latency_ms_sum 30" in lines
        assert "repro_serve_latency_ms_count 6" in lines

    def test_info_labels_are_escaped(self):
        text = prometheus.render({}, info={"incarnation": 'a"b\\c'})
        assert 'incarnation="a\\"b\\\\c"' in text
        assert "repro_serve_info{" in text

    def test_timeseries_renders_count_and_sum(self):
        snapshot = {"engine.cells": {
            "kind": "timeseries", "interval": 1.0, "count": 4,
            "sum": 10.0, "sumsq": 30.0, "points": []}}
        text = prometheus.render(snapshot)
        lines = _lines(text)
        assert "repro_engine_cells_count 4" in lines
        assert "repro_engine_cells_sum 10" in lines

    def test_nan_and_infinities_use_prometheus_spelling(self):
        assert prometheus._num(math.nan) == "NaN"
        assert prometheus._num(math.inf) == "+Inf"
        assert prometheus._num(-math.inf) == "-Inf"
        assert prometheus._num(3.0) == "3"
        assert prometheus._num(2.5) == "2.5"

    def test_exposition_ends_with_newline_and_dedupes_collisions(self):
        text = prometheus.render({
            "a.b": {"kind": "counter", "value": 1},
            "a_b": {"kind": "counter", "value": 2},
        })
        assert text.endswith("\n")
        # Both names sanitise to repro_a_b_total; only one survives.
        assert text.count("# TYPE repro_a_b_total counter") == 1
