"""Tests for metric export documents (JSON/CSV) and validation."""

import json
import math

import pytest

from repro.metrics import MetricsRegistry, export


def _cells():
    left = MetricsRegistry()
    left.counter("cpu.loads").inc(10)
    left.gauge("lsq.peak").set(4)
    right = MetricsRegistry()
    right.counter("cpu.loads").inc(5)
    return {"db_vortex": left.snapshot(), "go_ai": right.snapshot()}


class TestDocument:
    def test_totals_merge_cells(self):
        document = export.experiment_document("figure4", 0.5, _cells())
        assert document["schema"] == export.SCHEMA_VERSION
        assert document["totals"]["cpu.loads"]["value"] == 15
        assert document["totals"]["lsq.peak"]["value"] == 4.0

    def test_json_roundtrip_and_stability(self):
        document = export.experiment_document("figure4", 0.5, _cells())
        text = export.to_json(document)
        assert text.endswith("\n")
        assert json.loads(text) == document
        assert export.to_json(json.loads(text)) == text

    def test_csv_has_total_section(self):
        document = export.experiment_document("figure4", 0.5, _cells())
        text = export.to_csv(document)
        lines = text.splitlines()
        assert lines[0] == "cell,metric,kind,field,value"
        assert any(line.startswith("TOTAL,cpu.loads,counter,value,15")
                   for line in lines)

    def test_write_document_picks_format_by_suffix(self, tmp_path):
        document = export.experiment_document("t", 1.0, _cells())
        json_path = export.write_document(document, tmp_path / "m.json")
        csv_path = export.write_document(document, tmp_path / "m.csv")
        assert json.loads(json_path.read_text())["experiment"] == "t"
        assert csv_path.read_text().startswith("cell,metric")

    def test_write_document_creates_parents(self, tmp_path):
        document = export.experiment_document("t", 1.0, {})
        path = export.write_document(document,
                                     tmp_path / "deep" / "m.json")
        assert path.exists()


class TestSummaries:
    def test_counter_thousands(self):
        assert export.summarize_entry(
            {"kind": "counter", "value": 1234567}) == "1,234,567"

    def test_unset_gauge_is_na(self):
        entry = {"kind": "gauge", "value": None, "updates": 0}
        assert export.summarize_entry(entry) == "n/a"

    def test_timeseries_mean_std(self):
        registry = MetricsRegistry()
        series = registry.timeseries("t", interval=2)
        series.observe(1)
        series.observe(3)
        summary = export.summarize_entry(series.snapshot())
        assert "mean=2.000" in summary


class TestValidate:
    def test_clean_document_passes(self):
        document = export.experiment_document("figure4", 0.5, _cells())
        assert export.validate(document) == []

    def test_nan_detected(self):
        registry = MetricsRegistry()
        registry.gauge("bad").set(math.nan)
        document = export.experiment_document(
            "x", 1.0, {"cell": registry.snapshot()})
        problems = export.validate(document)
        assert any("NaN" in p for p in problems)

    def test_negative_detected(self):
        registry = MetricsRegistry()
        registry.counter("bad").inc(-3)
        document = export.experiment_document(
            "x", 1.0, {"cell": registry.snapshot()})
        problems = export.validate(document)
        assert any("negative" in p for p in problems)
        # Both the cell and the merged totals are flagged.
        assert len(problems) == 2

    def test_none_and_strings_ignored(self):
        registry = MetricsRegistry()
        registry.gauge("unset")
        document = export.experiment_document(
            "x", 1.0, {"cell": registry.snapshot()})
        assert export.validate(document) == []
