"""End-to-end integration: the full pipeline on real workloads.

Each test exercises the complete stack - MiniC source -> compiler ->
functional simulation -> trace analysis -> predictor -> timing model -
on an actual suite workload at a small scale, asserting the qualitative
invariants the paper's methodology rests on.
"""

import pytest

from repro.cache.lvc import stack_cache_hit_rate
from repro.predictor import evaluate_scheme, hints_from_trace
from repro.timing import conventional_config, decoupled_config, simulate
from repro.trace.regions import region_breakdown
from repro.trace.windows import window_stats
from repro.workloads import suite

SCALE = 0.2


@pytest.fixture(scope="module")
def trace():
    result = suite.run("ccomp", SCALE)
    yield result
    suite.clear_caches()


class TestEndToEnd:
    def test_program_runs_to_completion(self, trace):
        assert trace.exit_code == 0
        assert len(trace.output) == 3
        assert trace.output[2] == 0      # node accounting balances

    def test_profile_predictor_consistency(self, trace):
        """The region classifier and the predictor must agree: if every
        instruction were single-region, a 1-bit ARPT's only errors are
        cold and conflict misses."""
        breakdown = region_breakdown(trace)
        result = evaluate_scheme(trace, "1bit")
        multi_dyn = breakdown.multi_region_dynamic_fraction
        assert result.accuracy >= 1.0 - multi_dyn - 0.01

    def test_hints_subsume_table_for_single_region_code(self, trace):
        hints = hints_from_trace(trace)
        hinted = evaluate_scheme(trace, "1bit-hybrid", hints=hints)
        raw = evaluate_scheme(trace, "1bit-hybrid")
        assert hinted.occupancy <= raw.occupancy
        assert hinted.accuracy >= raw.accuracy - 1e-9

    def test_window_counts_match_trace_totals(self, trace):
        """Mean window occupancy x trace length ~ total accesses (up to
        edge effects): ties Table 2 to Table 1."""
        w32 = window_stats(trace, 32)
        total_mem = trace.load_count + trace.store_count
        approx = (w32.data.mean + w32.heap.mean + w32.stack.mean) / 32
        actual = total_mem / len(trace)
        assert abs(approx - actual) < 0.02

    def test_stack_cache_matches_lvc_hit_rate_in_timing(self, trace):
        """The standalone LVC experiment and the timing simulator's LVC
        must see the same locality (oracle steering, same geometry)."""
        standalone = stack_cache_hit_rate(trace, 4 * 1024)
        timing = simulate(trace, decoupled_config(2, 2,
                                                  steering="oracle"))
        assert abs(standalone.hit_rate - timing.lvc_hit_rate) < 0.03

    @pytest.mark.slow
    def test_more_ports_never_slow_the_machine(self, trace):
        two = simulate(trace, conventional_config(2))
        four = simulate(trace, conventional_config(4, l1_latency=2))
        sixteen = simulate(trace, conventional_config(16))
        assert four.cycles <= two.cycles
        assert sixteen.cycles <= four.cycles

    def test_oracle_steering_bounds_arpt_steering(self, trace):
        """Oracle steering is the no-misprediction limit; the ARPT must
        land close to it (its accuracy is >99.9%)."""
        oracle = simulate(trace, decoupled_config(3, 3,
                                                  steering="oracle"))
        arpt = simulate(trace, decoupled_config(3, 3))
        assert arpt.cycles <= oracle.cycles * 1.05

    def test_all_memory_references_serviced(self, trace):
        result = simulate(trace, conventional_config(2))
        assert result.instructions == len(trace)
