"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.testing import faults as fi


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    fi.install(None)
    yield
    fi.install(None)


class TestParseSpec:
    def test_single_directive(self):
        (d,) = fi.parse_spec("fail:index=2,times=3")
        assert d.kind == "fail"
        assert d.index == 2
        assert d.times == 3
        assert d.name is None

    def test_multiple_directives(self):
        plan = fi.parse_spec(
            "crash:index=1;corrupt:name=db_vortex,mode=garbage,seed=7")
        assert [d.kind for d in plan] == ["crash", "corrupt"]
        assert plan[1].name == "db_vortex"
        assert plan[1].mode == "garbage"
        assert plan[1].seed == 7

    def test_stall_seconds(self):
        (d,) = fi.parse_spec("stall:seconds=0.25")
        assert d.seconds == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(fi.SpecError, match="unknown fault kind"):
            fi.parse_spec("explode:index=1")

    def test_unknown_param_rejected(self):
        with pytest.raises(fi.SpecError, match="unknown fault parameter"):
            fi.parse_spec("fail:when=later")

    def test_bad_value_rejected(self):
        with pytest.raises(fi.SpecError, match="bad value"):
            fi.parse_spec("fail:index=two")

    def test_bad_mode_rejected(self):
        with pytest.raises(fi.SpecError, match="unknown corrupt mode"):
            fi.parse_spec("corrupt:mode=shred")

    def test_empty_spec_rejected(self):
        with pytest.raises(fi.SpecError, match="empty"):
            fi.parse_spec(" ; ")

    def test_times_must_be_positive(self):
        with pytest.raises(fi.SpecError, match="times"):
            fi.parse_spec("fail:times=0")


class TestActivation:
    def test_inactive_by_default(self):
        assert fi.active_spec() is None
        fi.fire_cell("w", 0, 0)     # no plan: never raises

    def test_install_beats_env(self, monkeypatch):
        monkeypatch.setenv(fi.ENV_VAR, "fail:index=0")
        fi.install("fail:index=5")
        assert fi.active_spec() == "fail:index=5"
        fi.fire_cell("w", 0, 0)     # env directive must not apply

    def test_env_var_activates(self, monkeypatch):
        monkeypatch.setenv(fi.ENV_VAR, "fail:index=0")
        with pytest.raises(fi.InjectedFault):
            fi.fire_cell("w", 0, 0)

    def test_install_rejects_bad_spec_eagerly(self):
        with pytest.raises(fi.SpecError):
            fi.install("bogus")


class TestFireCell:
    def test_fail_matches_index(self):
        fi.install("fail:index=2")
        fi.fire_cell("w", 0, 0)
        fi.fire_cell("w", 1, 0)
        with pytest.raises(fi.InjectedFault):
            fi.fire_cell("w", 2, 0)

    def test_fail_matches_name(self):
        fi.install("fail:name=go_ai")
        fi.fire_cell("db_vortex", 0, 0)
        with pytest.raises(fi.InjectedFault):
            fi.fire_cell("go_ai", 1, 0)

    def test_attempt_gating_is_deterministic(self):
        """A directive fires on the first ``times`` attempts only, so a
        retried cell recovers without any shared mutable state."""
        fi.install("fail:index=0,times=2")
        for attempt in (0, 1):
            with pytest.raises(fi.InjectedFault):
                fi.fire_cell("w", 0, attempt)
        fi.fire_cell("w", 0, 2)     # third attempt succeeds

    def test_crash_is_noop_in_main_process(self):
        # A crash directive only ever kills pool workers; firing it
        # here (the main test process) must be survivable.
        fi.install("crash:index=0")
        fi.fire_cell("w", 0, 0)

    def test_stall_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr(fi.time, "sleep", naps.append)
        fi.install("stall:index=1,seconds=0.5")
        fi.fire_cell("w", 1, 0)
        assert naps == [0.5]


class TestCorruptFile:
    def _file(self, tmp_path, payload=b"x" * 100):
        path = tmp_path / "entry.npz"
        path.write_bytes(payload)
        return path

    def test_truncate_halves(self, tmp_path):
        path = self._file(tmp_path)
        fi.corrupt_file(path, "truncate")
        assert path.read_bytes() == b"x" * 50

    def test_zero_empties(self, tmp_path):
        path = self._file(tmp_path)
        fi.corrupt_file(path, "zero")
        assert path.read_bytes() == b""

    def test_garbage_is_seeded_and_deterministic(self, tmp_path):
        a = self._file(tmp_path, b"y" * 300)
        b = tmp_path / "other.npz"
        b.write_bytes(b"y" * 300)
        fi.corrupt_file(a, "garbage", seed=3)
        fi.corrupt_file(b, "garbage", seed=3)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != b"y" * 300
        assert a.read_bytes()[256:] == b"y" * 44   # tail untouched

    def test_fire_cache_store_counts_times(self, tmp_path):
        fi.install("corrupt:name=w,times=1")
        path = self._file(tmp_path)
        assert fi.fire_cache_store("w", path) is True
        path.write_bytes(b"x" * 100)               # "regenerated"
        assert fi.fire_cache_store("w", path) is False
        assert path.read_bytes() == b"x" * 100

    def test_fire_cache_store_ignores_other_names(self, tmp_path):
        fi.install("corrupt:name=w")
        path = self._file(tmp_path)
        assert fi.fire_cache_store("other", path) is False


class TestServeDirectives:
    def test_bare_token_names_the_mode(self):
        (d,) = fi.parse_spec("serve:drop")
        assert d.kind == "serve"
        assert d.mode == "drop"
        assert d.op is None

    def test_all_modes_parse(self):
        for mode in fi.SERVE_MODES:
            (d,) = fi.parse_spec(f"serve:{mode}")
            assert d.mode == mode

    def test_op_scoping_and_times(self):
        (d,) = fi.parse_spec("serve:stall,op=predict,times=2,seconds=0.1")
        assert d.mode == "stall"
        assert d.op == "predict"
        assert d.times == 2
        assert d.seconds == 0.1

    def test_unknown_serve_mode_rejected(self):
        with pytest.raises(fi.SpecError, match="unknown serve fault mode"):
            fi.parse_spec("serve:explode")

    def test_mode_param_form_accepted(self):
        (d,) = fi.parse_spec("serve:mode=oom-evict")
        assert d.mode == "oom-evict"

    def test_serve_directive_never_matches_cells(self):
        (d,) = fi.parse_spec("serve:drop")
        assert not d.matches_cell("db_vortex", 0, 0)
        assert not d.matches_store("db_vortex")

    def test_fire_serve_counts_per_process(self):
        fi.install("serve:drop,times=2")
        assert len(fi.fire_serve("predict")) == 1
        assert len(fi.fire_serve("predict")) == 1
        assert fi.fire_serve("predict") == []

    def test_fire_serve_op_scoped(self):
        fi.install("serve:drop,op=timing")
        assert fi.fire_serve("predict") == []
        assert len(fi.fire_serve("timing")) == 1

    def test_fire_serve_empty_without_plan(self):
        assert fi.fire_serve("predict") == []


class TestCorruptResponse:
    def test_deterministic_and_preserves_framing(self):
        payload = b'{"id": 1, "ok": true, "result": {}}\n'
        first = fi.corrupt_response(payload, seed=7)
        second = fi.corrupt_response(payload, seed=7)
        assert first == second
        assert first.endswith(b"\n")
        assert b"\n" not in first[:-1]
        assert first != payload

    def test_guaranteed_json_parse_failure(self):
        import json
        payload = b'{"id": 1, "ok": true}\n'
        mangled = fi.corrupt_response(payload, seed=0)
        with pytest.raises((ValueError, UnicodeDecodeError)):
            json.loads(mangled.decode("utf-8"))

    def test_different_seeds_differ(self):
        payload = b'{"id": 1, "ok": true, "result": {"x": 1}}\n'
        assert fi.corrupt_response(payload, seed=0) \
            != fi.corrupt_response(payload, seed=1)
