"""Shared test helpers: compile-and-run MiniC snippets, cached traces."""

from __future__ import annotations

import functools

import pytest

from repro.compiler import compile_source
from repro.cpu import run_program


@functools.lru_cache(maxsize=64)
def _cached_trace(source: str, name: str):
    return run_program(compile_source(source, name))


def run_minic(source: str, name: str = "test"):
    """Compile and execute MiniC source; returns the trace (cached)."""
    return _cached_trace(source, name)


@pytest.fixture
def minic():
    """Fixture handing tests the compile-and-run helper."""
    return run_minic
