"""Vectorised predictor replay vs. the scalar reference implementation.

``evaluate_scheme`` replays traces through NumPy array operations
(definitive-rule scoring, convolution-derived branch history, grouped
1-bit table replay); ``evaluate_scheme_scalar`` walks records through
the live ARPT/ContextTracker structures.  Every scheme, table size, and
hint configuration must produce identical PredictionResults on random
traces (hypothesis plus fixed seeds) and real compiled workloads.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import run_source
from repro.predictor.evaluate import (evaluate_scheme,
                                      evaluate_scheme_scalar,
                                      occupancy_by_context)
from repro.predictor.hints import hints_from_trace
from repro.predictor.schemes import ALL_SCHEMES, Scheme
from repro.trace.records import (OC_BRANCH, OC_IALU, OC_LOAD, OC_STORE,
                                 REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)

_REGIONS = (REGION_DATA, REGION_HEAP, REGION_STACK)
_SCHEME_NAMES = tuple(s.name for s in ALL_SCHEMES)


def _random_trace(seed: int, n: int = 400) -> Trace:
    """Branches, ALU ops, and memory references over small PC/RA pools
    so table aliasing, context separation, and multi-region PCs all
    occur."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        draw = rng.random()
        if draw < 0.2:
            records.append(TraceRecord(0x400800 + 8 * rng.randrange(4),
                                       OC_BRANCH,
                                       taken=rng.random() < 0.5))
        elif draw < 0.3:
            records.append(TraceRecord(0x400000, OC_IALU, dst=3,
                                       value=rng.randrange(100)))
        else:
            records.append(TraceRecord(
                0x400100 + 8 * rng.randrange(8),
                OC_LOAD if rng.random() < 0.7 else OC_STORE,
                addr=0x10000000 + 8 * rng.randrange(32),
                mode=rng.choice((0, 1, 2, 3, 3, 3)),
                region=rng.choice(_REGIONS),
                ra=0x400008 + 8 * rng.randrange(4)))
    return Trace(f"rand{seed}", records)


@pytest.fixture(scope="module")
def real_trace():
    return run_source("""
        int g[24];
        int sum(int* p, int n) {
          int t = 0;
          for (int i = 0; i < n; i += 1) t += p[i];
          return t;
        }
        int main() {
          int* h = (int*) malloc(24);
          int local[24];
          for (int i = 0; i < 24; i += 1) {
            g[i] = i; h[i] = 2 * i; local[i] = 3 * i;
          }
          print_int(sum(g, 24) + sum(h, 24) + sum(local, 24));
          free(h);
          return 0;
        }
    """, "eval-equiv-real")


def _assert_equivalent(trace, scheme, table_size=None, hints=None,
                       gbh_bits=8, cid_bits=24):
    fast = evaluate_scheme(trace, scheme, table_size=table_size,
                           hints=hints, gbh_bits=gbh_bits,
                           cid_bits=cid_bits)
    reference = evaluate_scheme_scalar(trace, scheme,
                                       table_size=table_size,
                                       hints=hints, gbh_bits=gbh_bits,
                                       cid_bits=cid_bits)
    assert fast == reference


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme", _SCHEME_NAMES)
    @pytest.mark.parametrize("seed", range(3))
    def test_unlimited_table(self, scheme, seed):
        _assert_equivalent(_random_trace(seed), scheme)

    @pytest.mark.parametrize("scheme", _SCHEME_NAMES)
    @pytest.mark.parametrize("table_size", (1, 16, 256))
    def test_limited_table(self, scheme, table_size):
        _assert_equivalent(_random_trace(7), scheme,
                           table_size=table_size)

    @pytest.mark.parametrize("scheme", ("static", "1bit", "1bit-hybrid",
                                        "2bit-hybrid"))
    def test_with_hints(self, scheme):
        trace = _random_trace(11)
        _assert_equivalent(trace, scheme,
                           hints=hints_from_trace(trace))
        _assert_equivalent(trace, scheme, table_size=16,
                           hints=hints_from_trace(trace))

    @pytest.mark.parametrize("gbh_bits,cid_bits",
                             ((0, 24), (8, 0), (4, 12), (0, 0)))
    def test_context_width_ablation(self, gbh_bits, cid_bits):
        trace = _random_trace(13)
        for scheme in ("1bit-gbh", "1bit-cid", "1bit-hybrid"):
            _assert_equivalent(trace, scheme, gbh_bits=gbh_bits,
                               cid_bits=cid_bits)

    @pytest.mark.parametrize("scheme", _SCHEME_NAMES)
    def test_real_trace(self, real_trace, scheme):
        _assert_equivalent(real_trace, scheme)
        _assert_equivalent(real_trace, scheme, table_size=64)
        _assert_equivalent(real_trace, scheme,
                           hints=hints_from_trace(real_trace))

    def test_empty_and_memoryless_traces(self):
        for trace in (Trace("empty"),
                      Trace("branches", [TraceRecord(0x400800, OC_BRANCH,
                                                     taken=True)])):
            for scheme in ("static", "1bit-hybrid"):
                _assert_equivalent(trace, scheme)

    @settings(max_examples=20, deadline=None)
    @given(choices=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.integers(min_value=0, max_value=3),
                  st.sampled_from(_REGIONS),
                  st.integers(min_value=0, max_value=2),
                  st.booleans()), max_size=80),
        scheme=st.sampled_from(("1bit", "1bit-gbh", "1bit-cid",
                                "1bit-hybrid", "2bit-hybrid")))
    def test_property_random_traces(self, choices, scheme):
        records = []
        for pc_slot, mode, region, ra_slot, is_branch in choices:
            if is_branch:
                records.append(TraceRecord(0x400800, OC_BRANCH,
                                           taken=mode % 2 == 0))
            else:
                records.append(TraceRecord(
                    0x400100 + 8 * pc_slot, OC_LOAD, addr=0x10000000,
                    mode=mode, region=region,
                    ra=0x400008 + 8 * ra_slot))
        _assert_equivalent(Trace("prop", records), scheme)
        _assert_equivalent(Trace("prop", records), scheme, table_size=4)


_TWO_BIT_SCHEMES = tuple(s.name for s in ALL_SCHEMES if s.bits == 2)


class TestTwoBitEquivalence:
    """The grouped freeze-scan 2-bit replay vs. live saturating
    counters: correct/total counts, occupancy, the works."""

    @pytest.mark.parametrize("scheme", _TWO_BIT_SCHEMES)
    @pytest.mark.parametrize("seed", (0, 1, 2, 19, 23))
    def test_fixed_seeds(self, scheme, seed):
        _assert_equivalent(_random_trace(seed, n=600), scheme)

    @pytest.mark.parametrize("scheme", _TWO_BIT_SCHEMES)
    @pytest.mark.parametrize("table_size", (1, 4, 64, 256))
    def test_limited_table(self, scheme, table_size):
        _assert_equivalent(_random_trace(17), scheme,
                           table_size=table_size)

    @pytest.mark.parametrize("scheme", _TWO_BIT_SCHEMES)
    def test_real_trace(self, real_trace, scheme):
        _assert_equivalent(real_trace, scheme)
        _assert_equivalent(real_trace, scheme, table_size=128)
        _assert_equivalent(real_trace, scheme,
                           hints=hints_from_trace(real_trace))

    def test_long_biased_runs_saturate(self):
        """Long same-direction runs pin counters at 0/3 - the freeze
        fast path - with direction flips at run boundaries."""
        records = []
        for block in range(8):
            stack = block % 2 == 0
            for _ in range(50):
                records.append(TraceRecord(
                    0x400100 + 8 * (block % 3), OC_LOAD,
                    addr=0x10000000, mode=3,
                    region=REGION_STACK if stack else REGION_HEAP,
                    ra=0x400008))
        trace = Trace("biased", records)
        for scheme in _TWO_BIT_SCHEMES:
            _assert_equivalent(trace, scheme)
            _assert_equivalent(trace, scheme, table_size=2)

    @settings(max_examples=25, deadline=None)
    @given(choices=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.integers(min_value=0, max_value=3),
                  st.sampled_from(_REGIONS),
                  st.integers(min_value=0, max_value=2),
                  st.booleans()), max_size=120),
        scheme=st.sampled_from(_TWO_BIT_SCHEMES))
    def test_property_random_traces(self, choices, scheme):
        records = []
        for pc_slot, mode, region, ra_slot, is_branch in choices:
            if is_branch:
                records.append(TraceRecord(0x400800, OC_BRANCH,
                                           taken=mode % 2 == 0))
            else:
                records.append(TraceRecord(
                    0x400100 + 8 * pc_slot, OC_LOAD, addr=0x10000000,
                    mode=mode, region=region,
                    ra=0x400008 + 8 * ra_slot))
        trace = Trace("prop2bit", records)
        _assert_equivalent(trace, scheme)
        _assert_equivalent(trace, scheme, table_size=8)


class TestTableSizeValidation:
    """Non-power-of-two sizes would silently alias under the index
    mask; both replay paths must reject them up front."""

    @pytest.mark.parametrize("table_size", (100, 3, 12, 0, -16))
    @pytest.mark.parametrize("scheme", ("1bit", "2bit-hybrid"))
    def test_rejects_invalid_sizes(self, scheme, table_size):
        trace = _random_trace(5, n=40)
        with pytest.raises(ValueError, match="power of two"):
            evaluate_scheme(trace, scheme, table_size=table_size)
        with pytest.raises(ValueError, match="power of two"):
            evaluate_scheme_scalar(trace, scheme,
                                   table_size=table_size)

    def test_accepts_powers_of_two_and_unlimited(self):
        trace = _random_trace(5, n=40)
        for table_size in (None, 1, 2, 64, 1024):
            evaluate_scheme(trace, "2bit", table_size=table_size)


class TestOccupancyByContext:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scalar_probes(self, seed):
        trace = _random_trace(seed)
        fast = occupancy_by_context(trace)
        for context, occupancy in fast.items():
            scheme = Scheme(f"probe-{context}", uses_table=True, bits=1,
                            context=context)
            reference = evaluate_scheme_scalar(trace, scheme)
            assert occupancy == reference.occupancy, context

    def test_real_trace(self, real_trace):
        fast = occupancy_by_context(real_trace)
        for context, occupancy in fast.items():
            scheme = Scheme(f"probe-{context}", uses_table=True, bits=1,
                            context=context)
            assert occupancy \
                == evaluate_scheme_scalar(real_trace, scheme).occupancy
