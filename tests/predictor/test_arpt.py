"""Tests for the Access Region Prediction Table."""

import pytest
from hypothesis import given, strategies as st

from repro.predictor.arpt import ARPT, PC_SHIFT


class TestConstruction:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ARPT(size=1000)
        ARPT(size=1024)   # fine

    def test_bits_must_be_one_or_two(self):
        with pytest.raises(ValueError):
            ARPT(bits=3)

    def test_storage_bits(self):
        assert ARPT(size=32 * 1024, bits=1).storage_bits == 32 * 1024
        assert ARPT(size=1024, bits=2).storage_bits == 2048
        assert ARPT(size=None).storage_bits is None


class TestIndexing:
    def test_pc_alignment_bits_dropped(self):
        table = ARPT(size=64)
        assert table.index(0x400000) == table.index(0x400000)
        # PCs 8 bytes apart hit adjacent entries.
        assert (table.index(0x400008) - table.index(0x400000)) % 64 == 1

    def test_context_xor(self):
        table = ARPT(size=64)
        assert table.index(0x400000, 5) == (0x400000 >> PC_SHIFT ^ 5) & 63

    def test_unlimited_index_not_masked(self):
        table = ARPT(size=None)
        big_pc = 0x7FFFFFF8
        assert table.index(big_pc) == big_pc >> PC_SHIFT


class TestOneBitBehavior:
    def test_cold_entry_predicts_non_stack(self):
        # Matches static heuristic #4: unknown -> non-stack.
        assert ARPT(size=64).predict(0x400000) is False

    def test_learns_last_region(self):
        table = ARPT(size=64)
        table.update(0x400000, 0, True)
        assert table.predict(0x400000) is True
        table.update(0x400000, 0, False)
        assert table.predict(0x400000) is False

    def test_aliasing_in_small_table(self):
        table = ARPT(size=2)
        table.update(0x400000, 0, True)
        # 0x400010 is 2 entries away -> same slot in a 2-entry table.
        assert table.predict(0x400010) is True

    def test_predict_and_update_scores_before_training(self):
        table = ARPT(size=64)
        assert table.predict_and_update(0x400000, 0, True) is False
        assert table.hits == 0
        assert table.predict_and_update(0x400000, 0, True) is True
        assert table.hits == 1
        assert table.accuracy == 0.5


class TestTwoBitBehavior:
    def test_hysteresis_requires_two_updates(self):
        table = ARPT(size=64, bits=2)
        table.update(0x400000, 0, True)
        assert table.predict(0x400000) is False   # counter = 1
        table.update(0x400000, 0, True)
        assert table.predict(0x400000) is True    # counter = 2

    def test_saturation(self):
        table = ARPT(size=64, bits=2)
        for _ in range(10):
            table.update(0x400000, 0, True)
        table.update(0x400000, 0, False)
        assert table.predict(0x400000) is True    # 3 -> 2, still stack

    def test_one_bit_flips_faster_than_two_bit(self):
        one = ARPT(size=64, bits=1)
        two = ARPT(size=64, bits=2)
        for table in (one, two):
            for _ in range(3):
                table.update(0x400000, 0, True)   # saturate at 3
            table.update(0x400000, 0, False)      # 3 -> 2: still stack
        assert one.predict(0x400000) is False     # 1-bit reacts at once
        assert two.predict(0x400000) is True      # hysteresis holds


class TestOccupancy:
    def test_counts_distinct_entries(self):
        table = ARPT(size=None)
        table.update(0x400000, 0, True)
        table.update(0x400008, 0, True)
        table.update(0x400000, 0, False)   # same entry
        assert table.occupancy == 2

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2**20).map(lambda x: x * 8),
        st.booleans()), max_size=100))
    def test_occupancy_bounded_by_updates(self, updates):
        table = ARPT(size=None)
        for pc, is_stack in updates:
            table.update(pc, 0, is_stack)
        assert table.occupancy <= len(updates)
        assert table.occupancy == len({pc >> 3 for pc, _ in updates})

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2**20).map(lambda x: x * 8),
        st.booleans()), max_size=200))
    def test_limited_table_occupancy_bounded_by_size(self, updates):
        table = ARPT(size=64)
        for pc, is_stack in updates:
            table.update(pc, 0, is_stack)
        assert table.occupancy <= 64


class TestAsPredictorProperty:
    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_one_bit_mispredicts_at_most_transitions_plus_one(self, seq):
        """A 1-bit entry mispredicts only on region *changes* (plus the
        cold start) - the formal core of why access-region locality
        makes 1-bit prediction so accurate."""
        table = ARPT(size=64)
        mispredictions = 0
        for actual in seq:
            if table.predict_and_update(0x400000, 0, actual) != actual:
                mispredictions += 1
        transitions = sum(1 for a, b in zip(seq, seq[1:]) if a != b)
        assert mispredictions <= transitions + 1
