"""Tests for GBH/CID context tracking."""

import pytest

from repro.predictor.contexts import ContextTracker, context_function
from repro.trace.records import OC_LOAD, TraceRecord


def mem_with_ra(ra):
    return TraceRecord(0x400000, OC_LOAD, addr=0x10000000, region=0, ra=ra)


class TestGlobalBranchHistory:
    def test_shifts_in_outcomes(self):
        tracker = ContextTracker(gbh_bits=4)
        for taken in (True, False, True, True):
            tracker.observe_branch(taken)
        assert tracker.gbh == 0b1011

    def test_history_bounded_by_width(self):
        tracker = ContextTracker(gbh_bits=4)
        for _ in range(100):
            tracker.observe_branch(True)
        assert tracker.gbh == 0b1111

    def test_zero_width_history_stays_zero(self):
        tracker = ContextTracker(gbh_bits=0)
        tracker.observe_branch(True)
        assert tracker.gbh == 0


class TestCallerId:
    def test_cid_drops_alignment_bits(self):
        tracker = ContextTracker(cid_bits=24)
        record = mem_with_ra(0x400010)
        assert tracker.cid_of(record) == 0x400010 >> 3

    def test_cid_masked_to_width(self):
        tracker = ContextTracker(cid_bits=4)
        record = mem_with_ra(0xFFFFF8)
        assert tracker.cid_of(record) == (0xFFFFF8 >> 3) & 0xF

    def test_distinct_call_sites_distinct_cids(self):
        tracker = ContextTracker()
        a = tracker.cid_of(mem_with_ra(0x400008))
        b = tracker.cid_of(mem_with_ra(0x400018))
        assert a != b


class TestHybridContext:
    def test_hybrid_concatenates_gbh_below_cid(self):
        tracker = ContextTracker(gbh_bits=8, cid_bits=24)
        for _ in range(3):
            tracker.observe_branch(True)
        record = mem_with_ra(0x400020)
        expected = 0b111 | ((0x400020 >> 3) & 0xFFFFFF) << 8
        assert tracker.hybrid_context(record) == expected

    def test_context_function_lookup(self):
        tracker = ContextTracker()
        record = mem_with_ra(0x400008)
        assert context_function(tracker, "none")(record) == 0
        assert context_function(tracker, "cid")(record) \
            == tracker.cid_of(record)
        with pytest.raises(ValueError):
            context_function(tracker, "nonsense")

    def test_negative_widths_rejected(self):
        with pytest.raises(ValueError):
            ContextTracker(gbh_bits=-1)
