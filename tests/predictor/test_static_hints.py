"""Tests for the real (Figure 6) compiler-hint analysis."""

from repro.compiler import compile_source
from repro.cpu import run_program
from repro.predictor.evaluate import evaluate_scheme
from repro.predictor.static_hints import static_hint_stats, static_hints
from repro.trace.records import REGION_STACK


def _tags_sound(compiled, trace):
    """Every emitted tag must agree with every dynamic access."""
    hints = static_hints(compiled)
    for record in trace.records:
        if not record.is_mem:
            continue
        tag = hints.lookup(record.pc)
        if tag is not None:
            assert tag == (record.region == REGION_STACK), \
                f"wrong tag at pc {record.pc:#x}"
    return hints


class TestProvenanceRules:
    def test_malloc_pointer_tagged_nonstack(self):
        compiled = compile_source("""
            int main() {
              int* p = (int*) malloc(4);
              p[0] = 1;
              int v = p[0];
              free(p);
              return v;
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        pointer_tags = [hints.lookup(r.pc) for r in trace.records
                        if r.is_mem and r.mode == 3]   # MODE_OTHER
        assert pointer_tags
        assert all(tag is False for tag in pointer_tags)

    def test_local_array_pointer_tagged_stack(self):
        compiled = compile_source("""
            int main() {
              int buf[4];
              int* p = buf;
              p[2] = 9;
              return p[2];
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        other = [hints.lookup(r.pc) for r in trace.records
                 if r.is_mem and r.mode == 3]
        assert other and all(tag is True for tag in other)

    def test_parameter_pointer_untagged(self):
        # Figure 6: is_function_param -> MT_UNKNOWN.
        compiled = compile_source("""
            int peek(int* p) { return p[0]; }
            int main() {
              int x = 3;
              return peek(&x);
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        stats = static_hint_stats(compiled)
        # peek's load must be unknown (it could be fed any region).
        untagged = [r for r in trace.records
                    if r.is_mem and r.mode == 3
                    and hints.lookup(r.pc) is None]
        assert untagged
        assert stats.tagged < stats.total_mem_instructions

    def test_heap_and_global_agree_on_nonstack(self):
        # Heap and data are both *non-stack*: reassigning p from malloc
        # to a global array keeps the verdict (and it stays correct).
        compiled = compile_source("""
            int g[4];
            int main() {
              int* p = (int*) malloc(4);
              p[0] = 1;
              int a = *p;
              free(p);
              p = g;
              int b = *p;
              return a + b;
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        derefs = [r for r in trace.records
                  if r.is_mem and r.mode == 3 and r.is_load]
        assert derefs
        assert all(hints.lookup(r.pc) is False for r in derefs)

    def test_conflicting_assignments_poison_the_symbol(self):
        # p points to a stack local, then to a global: stack vs
        # non-stack conflict -> the dereference cannot be tagged
        # (Figure 6's flag-conflict path).
        compiled = compile_source("""
            int g[4];
            int main() {
              int buf[4];
              buf[0] = 5;
              g[0] = 7;
              int* p = buf;
              int a = *p;
              p = g;
              int b = *p;
              return a + b;
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        # The *p loads flow through the poisoned symbol: untagged.
        derefs = [r for r in trace.records
                  if r.is_mem and r.mode == 3 and r.is_load]
        assert any(hints.lookup(r.pc) is None for r in derefs)

    def test_pointer_walk_keeps_provenance(self):
        # p = p + 1 self-updates must not poison the verdict - this is
        # what tags strength-reduced FP loops.
        compiled = compile_source("""
            int g[16];
            int main() {
              int* p = g;
              int total = 0;
              for (int i = 0; i < 16; i += 1) {
                total += p[0];
                p = p + 1;
              }
              return total;
            }
        """)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        walks = [r for r in trace.records
                 if r.is_mem and r.mode == 3 and r.is_load]
        assert walks
        assert all(hints.lookup(r.pc) is False for r in walks)

    def test_definitive_modes_tagged_by_linker(self):
        compiled = compile_source("""
            int g;
            int helper() { return g; }
            int main() { int x = helper(); return x + g; }
        """)
        stats = static_hint_stats(compiled)
        # $gp and $sp/$fp accesses are all tagged by rules 1-3.
        assert stats.coverage == 1.0


class TestHintsImproveConstrainedTables:
    def test_hints_never_hurt_accuracy(self):
        source = """
            int g[32];
            int sum(int* p, int n) {
              int s = 0;
              for (int i = 0; i < n; i += 1) s += p[i];
              return s;
            }
            int main() {
              int local[8];
              for (int i = 0; i < 32; i += 1) g[i] = i;
              for (int i = 0; i < 8; i += 1) local[i] = i;
              int t = 0;
              for (int round = 0; round < 20; round += 1) {
                t += sum(g, 32) + sum(local, 8);
              }
              print_int(t);
              return 0;
            }
        """
        compiled = compile_source(source)
        trace = run_program(compiled)
        hints = _tags_sound(compiled, trace)
        plain = evaluate_scheme(trace, "1bit", table_size=64)
        hinted = evaluate_scheme(trace, "1bit", table_size=64,
                                 hints=hints)
        assert hinted.accuracy >= plain.accuracy - 1e-9
        assert hinted.occupancy <= plain.occupancy
