"""Tests for trace-driven scheme evaluation (Figures 4-5, Table 3)."""

import pytest

from repro.predictor.evaluate import evaluate_scheme, occupancy_by_context
from repro.predictor.hints import CompilerHints, empty_hints, \
    hints_from_trace
from repro.predictor.schemes import scheme_by_name
from repro.trace.records import (MODE_GLOBAL, MODE_OTHER, MODE_STACK,
                                 OC_BRANCH, OC_LOAD, REGION_DATA,
                                 REGION_HEAP, REGION_STACK, Trace,
                                 TraceRecord)


def load(pc, region, mode=MODE_OTHER, ra=0x400008):
    return TraceRecord(pc, OC_LOAD, addr=0x10000000, mode=mode,
                       region=region, ra=ra)


def branch(taken):
    return TraceRecord(0x400800, OC_BRANCH, taken=taken)


class TestStaticScheme:
    def test_definitive_modes_always_correct(self):
        records = [load(8, REGION_STACK, MODE_STACK),
                   load(16, REGION_DATA, MODE_GLOBAL)]
        result = evaluate_scheme(Trace("t", records), "static")
        assert result.accuracy == 1.0
        assert result.definitive == 2

    def test_rule4_predicts_non_stack(self):
        records = [load(8, REGION_STACK, MODE_OTHER),
                   load(16, REGION_HEAP, MODE_OTHER)]
        result = evaluate_scheme(Trace("t", records), "static")
        assert result.correct == 1      # heap correct, stack wrong
        assert result.definitive == 0

    def test_scheme_accepts_objects_and_names(self):
        trace = Trace("t", [load(8, REGION_DATA)])
        by_name = evaluate_scheme(trace, "1bit")
        by_object = evaluate_scheme(trace, scheme_by_name("1bit"))
        assert by_name.accuracy == by_object.accuracy


class TestOneBitScheme:
    def test_learns_after_first_miss(self):
        records = [load(8, REGION_STACK)] * 10
        result = evaluate_scheme(Trace("t", records), "1bit")
        assert result.correct == 9      # only the cold miss is wrong

    def test_alternating_regions_defeat_pc_only(self):
        records = []
        for i in range(20):
            region = REGION_STACK if i % 2 == 0 else REGION_HEAP
            records.append(load(8, region))
        result = evaluate_scheme(Trace("t", records), "1bit")
        assert result.accuracy < 0.2    # mispredicts every flip

    def test_definitive_modes_bypass_table(self):
        records = [load(8, REGION_STACK, MODE_STACK)] * 5
        result = evaluate_scheme(Trace("t", records), "1bit")
        assert result.table_predictions == 0
        assert result.occupancy == 0


class TestContextSchemes:
    def test_cid_separates_alternating_call_sites(self):
        # One static instruction fed stack/heap pointers from two call
        # sites: PC-only flips forever, CID nails it after two cold
        # misses - the paper's *parm1 scenario.
        records = []
        for i in range(40):
            if i % 2 == 0:
                records.append(load(8, REGION_STACK, ra=0x400008))
            else:
                records.append(load(8, REGION_HEAP, ra=0x400108))
        flat = evaluate_scheme(Trace("t", records), "1bit")
        cid = evaluate_scheme(Trace("t", records), "1bit-cid")
        assert flat.accuracy < 0.2
        assert cid.accuracy > 0.9

    def test_gbh_separates_branch_correlated_regions(self):
        records = []
        for i in range(40):
            taken = i % 2 == 0
            records.append(branch(taken))
            region = REGION_STACK if taken else REGION_DATA
            records.append(load(8, region))
        flat = evaluate_scheme(Trace("t", records), "1bit")
        gbh = evaluate_scheme(Trace("t", records), "1bit-gbh")
        assert gbh.accuracy > flat.accuracy

    def test_context_increases_occupancy(self):
        records = []
        for i in range(40):
            ra = 0x400008 if i % 2 == 0 else 0x400108
            records.append(load(8, REGION_STACK, ra=ra))
        occupancy = occupancy_by_context(Trace("t", records))
        assert occupancy["none"] == 1
        assert occupancy["cid"] == 2
        assert occupancy["hybrid"] >= 2


class TestLimitedTables:
    def test_aliasing_hurts_tiny_tables(self):
        # Two instructions with opposite regions that collide in a
        # 1-entry table but not in a large one.
        records = []
        for _ in range(30):
            records.append(load(8, REGION_STACK))
            records.append(load(16, REGION_DATA))
        big = evaluate_scheme(Trace("t", records), "1bit",
                              table_size=1024)
        tiny = evaluate_scheme(Trace("t", records), "1bit", table_size=1)
        assert big.accuracy > 0.9
        assert tiny.accuracy < big.accuracy

    def test_occupancy_never_exceeds_size(self):
        records = [load(8 * i, REGION_DATA) for i in range(100)]
        result = evaluate_scheme(Trace("t", records), "1bit", table_size=16)
        assert result.occupancy <= 16


class TestCompilerHints:
    def _trace(self):
        records = [load(8, REGION_STACK)] * 10 \
            + [load(16, REGION_DATA)] * 10
        # One genuinely polymorphic instruction the compiler must punt on.
        for i in range(10):
            region = REGION_STACK if i % 2 else REGION_HEAP
            records.append(load(24, region))
        return Trace("t", records)

    def test_hints_tag_single_region_instructions(self):
        hints = hints_from_trace(self._trace())
        assert hints.lookup(8) is True
        assert hints.lookup(16) is False
        assert hints.lookup(24) is None

    def test_hints_remove_cold_misses(self):
        trace = self._trace()
        without = evaluate_scheme(trace, "1bit")
        with_hints = evaluate_scheme(trace, "1bit",
                                     hints=hints_from_trace(trace))
        assert with_hints.accuracy >= without.accuracy
        assert with_hints.hinted == 20

    def test_hints_reduce_occupancy(self):
        trace = self._trace()
        without = evaluate_scheme(trace, "1bit")
        with_hints = evaluate_scheme(trace, "1bit",
                                     hints=hints_from_trace(trace))
        assert with_hints.occupancy < without.occupancy

    def test_empty_hints_no_op(self):
        trace = self._trace()
        plain = evaluate_scheme(trace, "1bit")
        empty = evaluate_scheme(trace, "1bit", hints=empty_hints())
        assert plain.accuracy == empty.accuracy


class TestResultAccounting:
    def test_totals_add_up(self):
        records = [load(8, REGION_STACK, MODE_STACK),
                   load(16, REGION_DATA),
                   branch(True),
                   load(24, REGION_HEAP)]
        result = evaluate_scheme(Trace("t", records), "1bit")
        assert result.total == 3      # branch not counted
        assert result.definitive == 1
        assert result.table_predictions == 2

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            evaluate_scheme(Trace("t", []), "3bit-magic")
