"""Tests for scheme definitions and static rules."""

import pytest

from repro.predictor.schemes import (ALL_SCHEMES, FIGURE4_SCHEMES, Scheme,
                                     scheme_by_name)
from repro.predictor.static_rules import (mode_is_definitive,
                                          static_predicts_stack)
from repro.trace.records import (MODE_CONSTANT, MODE_GLOBAL, MODE_OTHER,
                                 MODE_STACK)


class TestSchemeRegistry:
    def test_figure4_lineup_matches_paper(self):
        names = [s.name for s in FIGURE4_SCHEMES]
        assert names == ["static", "1bit", "1bit-gbh", "1bit-cid",
                         "1bit-hybrid"]

    def test_lookup_by_name(self):
        scheme = scheme_by_name("2bit-hybrid")
        assert scheme.bits == 2
        assert scheme.context == "hybrid"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            scheme_by_name("perceptron")

    def test_all_names_unique(self):
        names = [s.name for s in ALL_SCHEMES]
        assert len(names) == len(set(names))

    def test_invalid_scheme_construction(self):
        with pytest.raises(ValueError):
            Scheme("bad", uses_table=True, bits=5)
        with pytest.raises(ValueError):
            Scheme("bad", uses_table=True, context="weird")


class TestStaticRules:
    def test_rule_coverage(self):
        # Rules 1-3 are definitive; rule 4 is a guess.
        assert mode_is_definitive(MODE_CONSTANT)
        assert mode_is_definitive(MODE_STACK)
        assert mode_is_definitive(MODE_GLOBAL)
        assert not mode_is_definitive(MODE_OTHER)

    def test_predictions_match_paper_rules(self):
        assert static_predicts_stack(MODE_STACK) is True
        assert static_predicts_stack(MODE_CONSTANT) is False
        assert static_predicts_stack(MODE_GLOBAL) is False
        assert static_predicts_stack(MODE_OTHER) is False
