"""Property-based tests for the timing simulator on random traces."""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.timing.config import conventional_config, decoupled_config
from repro.timing.machine import simulate
from repro.trace.records import (MODE_GLOBAL, MODE_OTHER, MODE_STACK,
                                 OC_IALU, OC_LOAD, OC_STORE, REGION_DATA,
                                 REGION_HEAP, REGION_STACK, Trace,
                                 TraceRecord)

DATA = 0x10000000
HEAP = 0x20000000
STACK = 0x7FFF0000


@st.composite
def random_records(draw, max_size=120):
    """A structurally valid dynamic instruction stream."""
    n = draw(st.integers(min_value=1, max_value=max_size))
    records = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            records.append(TraceRecord(
                0x400000, OC_IALU,
                dst=draw(st.integers(min_value=-1, max_value=25)),
                src1=draw(st.integers(min_value=-1, max_value=25)),
                value=draw(st.one_of(
                    st.none(), st.integers(min_value=0, max_value=999)))))
            continue
        region, base, mode = draw(st.sampled_from([
            (REGION_DATA, DATA, MODE_GLOBAL),
            (REGION_HEAP, HEAP, MODE_OTHER),
            (REGION_STACK, STACK, MODE_STACK),
            (REGION_STACK, STACK, MODE_OTHER),
        ]))
        addr = base + draw(st.integers(min_value=0, max_value=127)) * 8
        pc = 0x400100 + draw(st.integers(min_value=0, max_value=15)) * 8
        if kind == 1:
            records.append(TraceRecord(
                pc, OC_LOAD,
                dst=draw(st.integers(min_value=1, max_value=25)),
                src1=draw(st.integers(min_value=1, max_value=25)),
                addr=addr, mode=mode, region=region,
                ra=0x400008))
        else:
            records.append(TraceRecord(
                pc, OC_STORE,
                src1=draw(st.integers(min_value=1, max_value=25)),
                src2=draw(st.integers(min_value=1, max_value=25)),
                addr=addr, mode=mode, region=region,
                ra=0x400008))
    return records


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_records())
    def test_every_instruction_commits(self, records):
        trace = Trace("prop", records)
        result = simulate(trace, conventional_config(2))
        assert result.instructions == len(records)
        assert result.cycles >= 1

    @settings(max_examples=40, deadline=None)
    @given(random_records())
    def test_cycles_bounded_below_by_width(self, records):
        trace = Trace("prop", records)
        result = simulate(trace, conventional_config(16))
        # Cannot commit more than commit_width per cycle.
        assert result.cycles >= len(records) / 16

    @settings(max_examples=25, deadline=None)
    @given(random_records())
    def test_decoupled_configs_complete_with_repairs(self, records):
        """Whatever the region/mode mix (including OTHER-mode stack and
        heap accesses that defeat the ARPT), every op must commit -
        the misprediction repair path cannot wedge the machine."""
        trace = Trace("prop", records)
        result = simulate(trace, decoupled_config(2, 2))
        assert result.instructions == len(records)
        oracle = simulate(trace, decoupled_config(2, 2,
                                                  steering="oracle"))
        assert oracle.instructions == len(records)

    @settings(max_examples=25, deadline=None)
    @given(random_records())
    def test_more_ports_rarely_slower(self, records):
        """Extra bandwidth should never hurt beyond replacement noise.

        More ports change the *order* of cache accesses, which can
        flip an LRU decision and cost one extra miss; the slack is one
        memory round-trip (the maximum a single reordered miss can
        cost on these micro traces).
        """
        trace = Trace("prop", records)
        two = simulate(trace, conventional_config(2))
        sixteen = simulate(trace, conventional_config(16))
        memory_round_trip = 2 + 12 + 50
        assert sixteen.cycles <= two.cycles * 1.05 + memory_round_trip

    @settings(max_examples=25, deadline=None)
    @given(random_records())
    def test_value_prediction_never_blocks_completion(self, records):
        trace = Trace("prop", records)
        with_vp = simulate(trace, conventional_config(2))
        without = simulate(trace,
                           replace(conventional_config(2),
                                   value_predict=False))
        assert with_vp.instructions == without.instructions
        assert with_vp.cycles <= without.cycles + 5
