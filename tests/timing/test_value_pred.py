"""Tests for the stride value predictor."""

import pytest
from hypothesis import given, strategies as st

from repro.timing.value_pred import StrideValuePredictor


class TestStridePrediction:
    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            StrideValuePredictor(entries=1000)

    def test_cold_entry_predicts_nothing(self):
        vp = StrideValuePredictor()
        assert vp.predict(0x400000) is None

    def test_constant_stride_becomes_confident(self):
        vp = StrideValuePredictor(confidence=2)
        outcomes = [vp.observe(0x400000, v) for v in (10, 13, 16, 19, 22)]
        # First observation seeds; two more build the streak; the rest
        # are confident hits.
        assert outcomes[-1] is True
        assert vp.predict(0x400000) == 25

    def test_zero_stride_constants(self):
        vp = StrideValuePredictor(confidence=2)
        for _ in range(5):
            vp.observe(0x400000, 42)
        assert vp.predict(0x400000) == 42

    def test_stride_change_resets_confidence(self):
        vp = StrideValuePredictor(confidence=2)
        for v in (0, 1, 2, 3):
            vp.observe(0x400000, v)
        assert vp.predict(0x400000) == 4
        vp.observe(0x400000, 100)          # breaks the stride
        assert vp.predict(0x400000) is None

    def test_hit_rate_accounting(self):
        vp = StrideValuePredictor(confidence=1)
        for v in range(10):
            vp.observe(0x400000, v)
        assert 0.0 < vp.hit_rate <= 1.0
        assert vp.lookups == 10

    def test_aliasing_across_pcs(self):
        vp = StrideValuePredictor(entries=2, confidence=1)
        # Two PCs two entries apart collide in a 2-entry table.
        vp.observe(0x400000, 0)
        vp.observe(0x400000, 1)
        vp.observe(0x400000, 2)
        assert vp.predict(0x400010) == vp.predict(0x400000)

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-50, max_value=50))
    def test_any_arithmetic_sequence_learned(self, start, stride):
        vp = StrideValuePredictor(confidence=2)
        values = [start + i * stride for i in range(6)]
        for v in values:
            vp.observe(0x400000, v)
        assert vp.predict(0x400000) == values[-1] + stride
