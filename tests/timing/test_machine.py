"""Tests for the out-of-order timing simulator on synthetic traces."""

from dataclasses import replace

import pytest

from repro.timing.config import (MachineConfig, conventional_config,
                                 decoupled_config, figure8_configs)
from repro.timing.machine import simulate
from repro.trace.records import (MODE_GLOBAL, MODE_OTHER, MODE_STACK,
                                 OC_IALU, OC_IMUL, OC_LOAD, OC_STORE,
                                 REGION_DATA, REGION_STACK, Trace,
                                 TraceRecord)

DATA = 0x10000000
STACK = 0x7FFF0000


def ialu(dst=-1, src1=-1, src2=-1, value=None):
    return TraceRecord(0x400000, OC_IALU, dst=dst, src1=src1, src2=src2,
                       value=value)


def load(dst, base_reg=8, addr=DATA, region=REGION_DATA,
         mode=MODE_GLOBAL, pc=0x400100, value=None):
    return TraceRecord(pc, OC_LOAD, dst=dst, src1=base_reg, addr=addr,
                       mode=mode, region=region, value=value)


def store(data_reg, base_reg=8, addr=DATA, region=REGION_DATA,
          mode=MODE_GLOBAL, pc=0x400200):
    return TraceRecord(pc, OC_STORE, src1=base_reg, src2=data_reg,
                       addr=addr, mode=mode, region=region)


def no_vp(config):
    return replace(config, value_predict=False)


def base_config(**overrides):
    return replace(conventional_config(2), value_predict=False,
                   **overrides)


class TestCoreDataflow:
    def test_independent_ops_bounded_by_width(self):
        trace = Trace("t", [ialu(dst=0) for _ in range(160)])
        result = simulate(trace, base_config())
        # 16-wide: 160 ops need >= 10 issue cycles (plus pipeline fill).
        assert 10 <= result.cycles <= 20

    def test_dependent_chain_serialises(self):
        records = [ialu(dst=5)]
        records += [ialu(dst=5, src1=5) for _ in range(99)]
        result = simulate(Trace("t", records), base_config())
        assert result.cycles >= 100   # one per chain link

    def test_multiply_latency_on_chain(self):
        records = [TraceRecord(0x400000, OC_IMUL, dst=5, src1=5)
                   for _ in range(20)]
        result = simulate(Trace("t", records), base_config())
        assert result.cycles >= 20 * 6    # imul latency 6

    def test_fu_contention(self):
        # 4 imul/idiv units: 40 independent multiplies need >= 10
        # issue cycles even at infinite width.
        records = [TraceRecord(0x400000, OC_IMUL, dst=0)
                   for _ in range(40)]
        result = simulate(Trace("t", records), base_config())
        assert result.cycles >= 10

    def test_ipc_reported(self):
        trace = Trace("t", [ialu(dst=0) for _ in range(64)])
        result = simulate(trace, base_config())
        assert result.ipc == pytest.approx(64 / result.cycles)


class TestMemorySystem:
    def test_ports_bound_throughput(self):
        # 200 independent loads, same line (all hits after the first):
        # 2 ports -> >= 100 cycles; 16 ports -> much less.
        records = [load(dst=0, addr=DATA) for _ in range(200)]
        two = simulate(Trace("t", records), base_config())
        sixteen = simulate(Trace("t", records),
                           no_vp(conventional_config(16)))
        # The cold miss (~64 cycles) overlaps with issue in both cases
        # (non-blocking cache): 2 ports take ~max(100, 64) cycles, 16
        # ports ~max(13, 64).
        assert two.cycles >= 100
        assert sixteen.cycles <= 90
        assert sixteen.cycles < two.cycles

    def test_load_miss_latency_on_chain(self):
        # A dependent chain of loads to distinct lines: every access
        # goes L1-miss -> L2 (after first L2 fill, still L1 latency +
        # L2).  Just require far slower than hit-chains.
        miss_records = []
        for i in range(20):
            miss_records.append(load(dst=5, base_reg=5,
                                     addr=DATA + i * 4096))
        hit_records = [load(dst=5, base_reg=5, addr=DATA)
                       for _ in range(20)]
        misses = simulate(Trace("t", miss_records), base_config())
        hits = simulate(Trace("t", hit_records), base_config())
        assert misses.cycles > hits.cycles * 2
        assert misses.l1_hit_rate < 0.2
        assert hits.l1_hit_rate > 0.9

    def test_store_to_load_forwarding(self):
        records = []
        for i in range(30):
            addr = DATA + i * 8
            records.append(store(data_reg=0, addr=addr))
            records.append(load(dst=0, addr=addr))
        result = simulate(Trace("t", records), base_config())
        assert result.store_forwards == 30

    def test_forwarding_avoids_ports(self):
        # Forwarded loads skip the cache: with 1 port, pure
        # store+forwarded-load pairs beat store+missing-load pairs.
        paired = []
        for i in range(40):
            addr = DATA + (i % 4) * 8
            paired.append(store(data_reg=0, addr=addr))
            paired.append(load(dst=0, addr=addr))
        result = simulate(Trace("t", paired),
                          base_config(l1_ports=1) if False else
                          no_vp(conventional_config(1)))
        assert result.store_forwards == 40

    def test_conservative_lsq_blocks_on_unknown_store_address(self):
        # A store whose base register is produced by a long multiply
        # chain delays *younger* loads in the LSQ even though they are
        # independent.
        records = [TraceRecord(0x400000, OC_IMUL, dst=9, src1=9)
                   for _ in range(10)]
        records.append(store(data_reg=0, base_reg=9, addr=DATA + 512))
        records += [load(dst=0, addr=DATA + 1024 + i * 8)
                    for i in range(20)]
        blocked = simulate(Trace("t", records), base_config())
        # Same loads without the store in the way.
        free_records = [r for r in records if r.op_class != OC_STORE]
        free = simulate(Trace("t", free_records), base_config())
        assert blocked.cycles > free.cycles


class TestDecoupling:
    def _mixed_trace(self, n=120):
        records = []
        for i in range(n):
            records.append(load(dst=0, addr=DATA + (i % 64) * 8,
                                region=REGION_DATA, mode=MODE_GLOBAL,
                                pc=0x400100))
            records.append(load(dst=0, addr=STACK - (i % 64) * 8,
                                region=REGION_STACK, mode=MODE_STACK,
                                pc=0x400108))
        return Trace("t", records)

    def test_decoupled_beats_conventional_on_mixed_traffic(self):
        trace = self._mixed_trace()
        conventional = simulate(trace, no_vp(conventional_config(2)))
        decoupled = simulate(trace, no_vp(decoupled_config(2, 2)))
        assert decoupled.cycles < conventional.cycles

    def test_oracle_steering_routes_stack_to_lvc(self):
        trace = self._mixed_trace()
        result = simulate(trace,
                          no_vp(decoupled_config(2, 2,
                                                 steering="oracle")))
        assert result.lvc_hit_rate > 0.8   # only cold misses
        assert result.arpt_predictions == 0

    def test_arpt_steering_learns_pointer_loads(self):
        # Pointer-mode (MODE_OTHER) stack loads must reach the LVC via
        # the ARPT after one cold miss each.
        records = [load(dst=0, addr=STACK - (i % 16) * 8,
                        region=REGION_STACK, mode=MODE_OTHER,
                        pc=0x400300)
                   for i in range(300)]
        result = simulate(Trace("t", records),
                          no_vp(decoupled_config(2, 2)))
        assert result.arpt_predictions == 300
        # The in-flight window dispatches a few dozen loads before the
        # first verification trains the table; after that it is exact.
        assert result.arpt_mispredictions <= 80
        assert result.arpt_accuracy > 0.7
        assert result.lvc_hit_rate > 0.0

    def test_mispredicted_ops_are_repaired(self):
        # Alternating regions through one PC defeat the 1-bit entry;
        # every flip must be detected and repaired, never mis-served.
        records = []
        for i in range(60):
            if i % 2:
                records.append(load(dst=0, addr=STACK - 64,
                                    region=REGION_STACK,
                                    mode=MODE_OTHER, pc=0x400300))
            else:
                records.append(load(dst=0, addr=DATA + 64,
                                    region=REGION_DATA,
                                    mode=MODE_OTHER, pc=0x400300))
        config = replace(no_vp(decoupled_config(2, 2)),
                         arpt_context="none")
        result = simulate(Trace("t", records), config)
        assert result.arpt_mispredictions >= 20
        assert result.instructions == 60   # still completes correctly

    def test_lvaq_fast_forwarding(self):
        # Stack store->load pairs forward in the LVAQ.
        records = []
        for i in range(30):
            addr = STACK - (i % 8) * 8
            records.append(store(data_reg=0, addr=addr,
                                 region=REGION_STACK, mode=MODE_STACK))
            records.append(load(dst=0, addr=addr, region=REGION_STACK,
                                mode=MODE_STACK))
        result = simulate(Trace("t", records),
                          no_vp(decoupled_config(2, 2)))
        assert result.store_forwards == 30


class TestIdleCycleSkip:
    """Event-driven idle-cycle skipping trades speed for nothing:
    every TimingResult field must match the walk-every-cycle run."""

    def _assert_same(self, trace, config, hints=None):
        fast = simulate(trace, config, hints=hints, idle_skip=True)
        slow = simulate(trace, config, hints=hints, idle_skip=False)
        assert fast == slow

    def test_long_memory_stalls(self):
        # A dependent chain of loads to distinct 4 KiB-apart lines:
        # every access misses to L2/memory, leaving long idle gaps
        # the skipper must jump over without changing a single stat.
        records = [load(dst=5, base_reg=5, addr=DATA + i * 4096)
                   for i in range(30)]
        self._assert_same(Trace("t", records), base_config())

    def test_store_fences_and_forwarding(self):
        records = []
        for i in range(40):
            addr = DATA + (i % 4) * 4096
            records.append(store(data_reg=0, addr=addr))
            records.append(load(dst=5, base_reg=5, addr=addr))
        self._assert_same(Trace("t", records), base_config())

    def test_decoupled_mixed_traffic(self):
        records = []
        for i in range(80):
            records.append(load(dst=0, addr=DATA + (i % 64) * 64,
                                region=REGION_DATA, mode=MODE_GLOBAL,
                                pc=0x400100))
            records.append(load(dst=0, addr=STACK - (i % 64) * 8,
                                region=REGION_STACK, mode=MODE_OTHER,
                                pc=0x400108))
        self._assert_same(Trace("t", records),
                          no_vp(decoupled_config(2, 2)))

    def test_value_prediction(self):
        records = [ialu(dst=5, src1=5, value=i) for i in range(120)]
        records += [load(dst=5, base_reg=5, addr=DATA + i * 4096)
                    for i in range(10)]
        self._assert_same(Trace("t", records),
                          replace(conventional_config(2),
                                  value_predict=True))

    def test_figure8_configs(self):
        records = []
        for i in range(50):
            records.append(load(dst=5, base_reg=5,
                                addr=DATA + i * 4096))
            records.append(store(data_reg=5,
                                 addr=STACK - (i % 8) * 8,
                                 region=REGION_STACK, mode=MODE_STACK))
        trace = Trace("t", records)
        for config in figure8_configs()[:4]:
            self._assert_same(trace, config)


class TestValuePrediction:
    def test_stride_chain_accelerated(self):
        # A chained counter with a perfect stride: value prediction
        # breaks the serial dependence.
        records = [ialu(dst=5, src1=5, value=i) for i in range(200)]
        with_vp = simulate(Trace("t", records),
                           replace(conventional_config(2),
                                   value_predict=True))
        without = simulate(Trace("t", records),
                           replace(conventional_config(2),
                                   value_predict=False))
        assert with_vp.vp_bypasses > 150
        assert with_vp.cycles < without.cycles

    def test_random_values_not_predicted(self):
        values = [((i * 2654435761) >> 7) & 0xFFFF for i in range(100)]
        records = [ialu(dst=5, src1=5, value=v) for v in values]
        result = simulate(Trace("t", records),
                          replace(conventional_config(2),
                                  value_predict=True))
        assert result.vp_bypasses < 10


class TestConfigs:
    def test_validation_rules(self):
        with pytest.raises(ValueError):
            MachineConfig(lvc_ports=2, lvaq_size=0,
                          steering="arpt").validate()
        with pytest.raises(ValueError):
            MachineConfig(lvc_ports=2, lvaq_size=96,
                          steering="lsq-only").validate()
        with pytest.raises(ValueError):
            MachineConfig(lvc_ports=0, steering="arpt").validate()

    def test_figure8_lineup(self):
        names = [c.name for c in figure8_configs()]
        assert names == ["(2+0)", "(3+0) 2cyc", "(3+0) 3cyc", "(4+0)",
                         "(2+2)", "(2+3)", "(3+3)", "(16+0)"]

    def test_paper_charges_4port_cache_extra_latency(self):
        configs = {c.name: c for c in figure8_configs()}
        assert configs["(4+0)"].l1_latency == 3
        assert configs["(2+0)"].l1_latency == 2

    def test_decoupled_queue_split(self):
        config = decoupled_config(3, 3)
        assert config.lsq_size == 96
        assert config.lvaq_size == 96
        assert conventional_config(2).lsq_size == 128

    def test_latency_table_lookup(self):
        config = conventional_config(2)
        assert config.latency_of(OC_IALU) == 1
        assert config.latency_of(OC_IMUL) == 6
        with pytest.raises(KeyError):
            config.latency_of(99)
