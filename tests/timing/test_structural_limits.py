"""Structural-resource limits of the timing model: queue capacities,
ROB bounds, commit width."""

from dataclasses import replace

from repro.timing.config import conventional_config, decoupled_config
from repro.timing.machine import simulate
from repro.trace.records import (MODE_GLOBAL, MODE_STACK, OC_IALU, OC_LOAD,
                                 REGION_DATA, REGION_STACK, Trace,
                                 TraceRecord)

DATA = 0x10000000
STACK = 0x7FFF0000


def loads(n, region=REGION_DATA, addr_base=DATA, mode=MODE_GLOBAL):
    return [TraceRecord(0x400100, OC_LOAD, dst=0, src1=8,
                        addr=addr_base + (i % 32) * 8, mode=mode,
                        region=region) for i in range(n)]


class TestQueueCapacities:
    def test_lsq_occupancy_never_exceeds_size(self):
        trace = Trace("t", loads(400))
        result = simulate(trace, replace(conventional_config(1),
                                         value_predict=False))
        assert result.lsq_occupancy_peak <= 128

    def test_small_lsq_throttles_inflight_memory(self):
        trace = Trace("t", loads(300))
        small = simulate(trace, replace(conventional_config(2),
                                        lsq_size=8, value_predict=False))
        assert small.lsq_occupancy_peak <= 8
        assert small.instructions == 300

    def test_lvaq_occupancy_bounded(self):
        records = loads(300, region=REGION_STACK, addr_base=STACK,
                        mode=MODE_STACK)
        trace = Trace("t", records)
        result = simulate(trace, replace(decoupled_config(2, 2),
                                         value_predict=False))
        assert result.lvaq_occupancy_peak <= 96

    def test_rob_bounds_inflight_instructions(self):
        # A load missing to memory at the ROB head blocks commit; only
        # rob_size instructions can enter the window behind it.  With
        # FU-bound work (independent multiplies at 4/cycle), a large
        # ROB overlaps that work with the miss; a tiny ROB cannot.
        from repro.trace.records import OC_IMUL
        records = [TraceRecord(0x400100, OC_LOAD, dst=9, src1=8,
                               addr=DATA + 4096 * 40, mode=MODE_GLOBAL,
                               region=REGION_DATA)]
        records += [TraceRecord(0x400000, OC_IMUL, dst=0)
                    for _ in range(600)]
        trace = Trace("t", records)
        small = simulate(trace, replace(conventional_config(2),
                                        rob_size=32, value_predict=False))
        large = simulate(trace, replace(conventional_config(2),
                                        rob_size=512,
                                        value_predict=False))
        assert large.cycles < small.cycles - 30

    def test_commit_width_floor(self):
        trace = Trace("t", [TraceRecord(0x400000, OC_IALU, dst=0)
                            for _ in range(320)])
        result = simulate(trace, replace(conventional_config(2),
                                         commit_width=4,
                                         value_predict=False))
        assert result.cycles >= 320 / 4
