"""Tests for the data TLB and its integration with the pipeline."""

from dataclasses import replace

import pytest

from repro.runtime.layout import DATA_BASE, STACK_BASE
from repro.timing.config import conventional_config
from repro.timing.machine import simulate
from repro.timing.tlb import DataTLB
from repro.trace.records import (MODE_GLOBAL, OC_LOAD, REGION_DATA, Trace,
                                 TraceRecord)


class TestDataTLB:
    def test_miss_then_hit(self):
        tlb = DataTLB(entries=4)
        assert tlb.access(DATA_BASE) is False
        assert tlb.access(DATA_BASE + 8) is True        # same page
        assert tlb.access(DATA_BASE + 4096) is False    # next page

    def test_lru_eviction(self):
        tlb = DataTLB(entries=2)
        tlb.access(DATA_BASE)                # page A
        tlb.access(DATA_BASE + 4096)         # page B
        tlb.access(DATA_BASE)                # touch A (MRU)
        tlb.access(DATA_BASE + 8192)         # page C evicts B
        assert tlb.access(DATA_BASE) is True
        assert tlb.access(DATA_BASE + 4096) is False

    def test_region_bit_recorded_on_fill(self):
        tlb = DataTLB(entries=4)
        tlb.access(DATA_BASE)
        tlb.access(STACK_BASE - 4096)
        assert tlb.region_bit(DATA_BASE) is False
        assert tlb.region_bit(STACK_BASE - 4096) is True

    def test_region_bit_requires_residency(self):
        tlb = DataTLB(entries=1)
        with pytest.raises(KeyError):
            tlb.region_bit(DATA_BASE)

    def test_miss_rate(self):
        tlb = DataTLB(entries=4)
        tlb.access(DATA_BASE)
        tlb.access(DATA_BASE)
        assert tlb.miss_rate == 0.5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DataTLB(entries=0)
        with pytest.raises(ValueError):
            DataTLB(page_size=1000)


class TestTLBInPipeline:
    def _page_walk_trace(self, pages, dependent=False):
        records = []
        for i in range(120):
            records.append(TraceRecord(
                0x400100, OC_LOAD,
                dst=5 if dependent else 0,
                src1=5 if dependent else 8,
                addr=DATA_BASE + (i % pages) * 4096,
                mode=MODE_GLOBAL, region=REGION_DATA))
        return Trace("t", records)

    def test_thrashing_footprint_pays_walk_penalties(self):
        # Pointer-chasing across 64 pages: every walk penalty sits on
        # the critical path (independent loads would hide it under
        # memory-level parallelism).
        trace = self._page_walk_trace(pages=64, dependent=True)
        small = simulate(trace, replace(conventional_config(2),
                                        value_predict=False,
                                        tlb_entries=8))
        large = simulate(trace, replace(conventional_config(2),
                                        value_predict=False,
                                        tlb_entries=128))
        assert small.tlb_miss_rate > large.tlb_miss_rate
        assert small.cycles > large.cycles

    def test_perfect_tlb_option(self):
        trace = self._page_walk_trace(pages=64)
        perfect = simulate(trace, replace(conventional_config(2),
                                          value_predict=False,
                                          tlb_entries=0))
        assert perfect.tlb_miss_rate == 0.0

    def test_small_footprint_unaffected(self):
        trace = self._page_walk_trace(pages=2)
        result = simulate(trace, replace(conventional_config(2),
                                         value_predict=False))
        assert result.tlb_miss_rate < 0.05
        assert result.instructions == 120
