"""Tests for the gshare predictor and the realistic front end."""

from dataclasses import replace

import pytest

from repro.timing.branch_pred import GsharePredictor
from repro.timing.config import MachineConfig, conventional_config
from repro.timing.machine import simulate
from repro.trace.records import (MODE_GLOBAL, OC_BRANCH, OC_IALU, OC_LOAD,
                                 REGION_DATA, Trace, TraceRecord)


def branch(pc, taken):
    return TraceRecord(pc, OC_BRANCH, src1=8, taken=taken)


class TestGshare:
    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            GsharePredictor(entries=100)

    def test_learns_always_taken(self):
        # The global history register must saturate (12 shifts) before
        # the index stabilises and the counter trains - so warm-up
        # takes a dozen-plus lookups, then prediction is perfect.
        pred = GsharePredictor()
        outcomes = [pred.predict_and_update(0x400000, True)
                    for _ in range(30)]
        assert all(outcomes[-10:])

    def test_learns_alternating_via_history(self):
        pred = GsharePredictor(history_bits=4)
        outcomes = [pred.predict_and_update(0x400000, i % 2 == 0)
                    for i in range(60)]
        # After history warm-up, the TNTN pattern is fully predictable.
        assert all(outcomes[-20:])

    def test_random_pattern_mispredicts(self):
        pred = GsharePredictor()
        pattern = [(i * 2654435761) >> 13 & 1 for i in range(200)]
        for i, bit in enumerate(pattern):
            pred.predict_and_update(0x400000 + (i % 3) * 8, bool(bit))
        assert pred.accuracy < 0.9

    def test_accuracy_counter(self):
        pred = GsharePredictor()
        assert pred.accuracy == 1.0
        pred.predict_and_update(0x400000, True)
        assert pred.lookups == 1


class TestRealisticFrontEnd:
    def _trace_with_branches(self, n=40, predictable=True):
        records = []
        for i in range(n):
            taken = True if predictable else bool((i * 2654435761)
                                                  >> 13 & 1)
            records.append(branch(0x400000, taken))
            for j in range(4):
                records.append(TraceRecord(0x400100, OC_IALU, dst=0))
        return Trace("t", records)

    def test_perfect_front_end_ignores_branch_pattern(self):
        cfg = replace(conventional_config(2), value_predict=False)
        regular = simulate(self._trace_with_branches(predictable=True),
                           cfg)
        random = simulate(self._trace_with_branches(predictable=False),
                          cfg)
        assert abs(regular.cycles - random.cycles) <= 2

    def test_gshare_pays_for_unpredictable_branches(self):
        # The meaningful comparison is against the perfect front end on
        # the *same* trace: every gshare misprediction costs a resolve-
        # plus-redirect bubble that perfect prediction never pays.
        trace = self._trace_with_branches(n=80, predictable=False)
        perfect = simulate(trace, replace(conventional_config(2),
                                          value_predict=False))
        gshare = simulate(trace, replace(conventional_config(2),
                                         value_predict=False,
                                         branch_predictor="gshare"))
        assert gshare.cycles > perfect.cycles + 20

    def test_gshare_never_faster_than_perfect(self):
        trace = self._trace_with_branches(predictable=False)
        perfect = simulate(trace, replace(conventional_config(2),
                                          value_predict=False))
        gshare = simulate(trace, replace(conventional_config(2),
                                         value_predict=False,
                                         branch_predictor="gshare"))
        assert gshare.cycles >= perfect.cycles

    def test_all_instructions_still_commit(self):
        trace = self._trace_with_branches(predictable=False)
        cfg = replace(conventional_config(2),
                      branch_predictor="gshare")
        result = simulate(trace, cfg)
        assert result.instructions == len(trace.records)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(branch_predictor="tage").validate()
