"""Differential testing: random MiniC expressions vs a reference
evaluator.

Hypothesis generates arbitrary integer expressions (with C semantics:
64-bit two's-complement wrap, truncating division, arithmetic right
shift); each is compiled, executed on the functional simulator, and
compared against a Python model that mirrors those semantics
operation by operation.
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import run_minic

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def wrap(value):
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def c_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_rem(a, b):
    return a - c_div(a, b) * b


# Each strategy element is a pair (source_text, expected_value).

_leaves = st.integers(min_value=-99, max_value=99).map(
    lambda v: (f"({v})", v))


def _extend(children):
    pairs = st.tuples(children, children)

    def arith(op, fn):
        return pairs.map(lambda ab: (
            f"({ab[0][0]} {op} {ab[1][0]})",
            wrap(fn(ab[0][1], ab[1][1]))))

    def division(ab):
        (atext, avalue), (btext, bvalue) = ab
        divisor_text = f"(({btext} & 7) + 1)"
        divisor = (bvalue & 7) + 1
        return (f"({atext} / {divisor_text})",
                wrap(c_div(avalue, divisor)))

    def modulo(ab):
        (atext, avalue), (btext, bvalue) = ab
        divisor_text = f"(({btext} & 7) + 1)"
        divisor = (bvalue & 7) + 1
        return (f"({atext} % {divisor_text})",
                wrap(c_rem(avalue, divisor)))

    def shift(triple):
        (text, value), amount, left = triple
        if left:
            return (f"({text} << {amount})", wrap(value << amount))
        return (f"({text} >> {amount})", wrap(value >> amount))

    def comparison(triple):
        (atext, avalue), (btext, bvalue), op = triple
        ops = {"<": int.__lt__, "<=": int.__le__, ">": int.__gt__,
               ">=": int.__ge__, "==": int.__eq__, "!=": int.__ne__}
        return (f"({atext} {op} {btext})",
                int(ops[op](avalue, bvalue)))

    return st.one_of(
        arith("+", lambda a, b: a + b),
        arith("-", lambda a, b: a - b),
        arith("*", lambda a, b: a * b),
        arith("&", lambda a, b: a & b),
        arith("|", lambda a, b: a | b),
        arith("^", lambda a, b: a ^ b),
        pairs.map(division),
        pairs.map(modulo),
        st.tuples(children, st.integers(min_value=0, max_value=8),
                  st.booleans()).map(shift),
        st.tuples(children, children,
                  st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        .map(comparison),
    )


_expressions = st.recursive(_leaves, _extend, max_leaves=24)


class TestExpressionDifferential:
    @settings(max_examples=120, deadline=None)
    @given(_expressions)
    def test_compiled_expression_matches_reference(self, pair):
        text, expected = pair
        trace = run_minic(
            f"int main() {{ print_int({text}); return 0; }}",
            name=f"diff-{hash(text) & 0xFFFF:x}")
        assert trace.output == [expected], text

    @settings(max_examples=40, deadline=None)
    @given(_expressions, _expressions)
    def test_expressions_through_variables_and_calls(self, pa, pb):
        atext, avalue = pa
        btext, bvalue = pb
        expected = wrap(avalue + bvalue)
        trace = run_minic(f"""
            int combine(int a, int b) {{ return a + b; }}
            int main() {{
              int x = {atext};
              int y = {btext};
              print_int(combine(x, y));
              return 0;
            }}
        """, name=f"diff2-{(hash(atext) ^ hash(btext)) & 0xFFFF:x}")
        assert trace.output == [expected], (atext, btext)
