"""Tests for the *shape* of generated code: addressing modes, calling
convention, frame discipline - the properties the paper's predictor
depends on."""

import pytest

from repro.compiler import CompileError, compile_source
from repro.isa import registers as R
from repro.isa.instructions import AddrMode, Op
from repro.runtime.layout import GP_VALUE, STACK_BASE
from tests.conftest import run_minic


def mem_instructions(compiled):
    return [i for i in compiled.program.instructions if i.is_mem]


class TestAddressingModes:
    def test_globals_are_gp_relative(self):
        compiled = compile_source("""
            int g;
            int main() { g = 4; return g; }
        """)
        modes = [i.addr_mode for i in mem_instructions(compiled)
                 if i.rs == R.GP]
        assert modes, "expected at least one $gp-relative access"
        assert all(m is AddrMode.GLOBAL for m in modes)

    def test_frame_accesses_are_sp_or_fp_relative(self):
        compiled = compile_source("""
            int main() {
              int arr[4];
              arr[0] = 1;
              return arr[0];
            }
        """)
        stack_modes = [i for i in mem_instructions(compiled)
                       if i.addr_mode is AddrMode.STACK]
        assert stack_modes, "prologue/array accesses must be stack-mode"

    def test_pointer_dereference_is_other_mode(self):
        compiled = compile_source("""
            int deref(int* p) { return *p; }
            int main() { int x = 1; return deref(&x); }
        """)
        other = [i for i in mem_instructions(compiled)
                 if i.addr_mode is AddrMode.OTHER]
        assert other, "pointer loads must use a computed base register"

    def test_float_literals_come_from_constant_pool(self):
        compiled = compile_source("""
            int main() { float x = 3.14; print_float(x); return 0; }
        """)
        pool_loads = [i for i in compiled.program.instructions
                      if i.op is Op.LF and i.rs == R.GP]
        assert pool_loads, "FP literal should load from the data segment"


class TestCallingConvention:
    def test_prologue_saves_ra_and_fp_in_non_leaf(self):
        compiled = compile_source("""
            int helper() { return 1; }
            int main() { return helper(); }
        """)
        index = compiled.program.labels["main"]
        window = compiled.program.instructions[index:index + 5]
        saved = [i.rt for i in window if i.op is Op.SW]
        assert R.RA in saved
        assert R.FP in saved

    def test_leaf_function_skips_ra_fp_saves(self):
        # Leaf functions never clobber $ra/$fp, so an optimising
        # compiler emits no saves and no $fp update for them.
        compiled = compile_source("""
            int leaf(int a, int b) { return a * b + 3; }
            int main() { return leaf(2, 3); }
        """)
        start = compiled.program.labels["leaf"]
        end = compiled.program.labels["main"]
        body = compiled.program.instructions[start:end]
        assert all(i.op is not Op.SW for i in body), \
            "a register-only leaf needs no stack traffic at all"
        assert all(i.rd != R.FP for i in body if i.rd is not None)

    def test_start_stub_initialises_gp_and_sp(self):
        compiled = compile_source("int main() { return 0; }")
        start = compiled.program.labels["__start"]
        stub = compiled.program.instructions[start:start + 4]
        values = {i.rd: i.imm for i in stub if i.op is Op.LI}
        assert values[R.GP] == GP_VALUE
        assert values[R.SP] == STACK_BASE

    def test_register_args_use_arg_registers(self):
        compiled = compile_source("""
            int f(int a, int b) { return a + b; }
            int main() { return f(1, 2); }
        """)
        movs = [i for i in compiled.program.instructions
                if i.op is Op.MOV and i.rd in R.ARG_REGS]
        assert len(movs) >= 2

    def test_stack_args_push_below_sp(self):
        compiled = compile_source("""
            int f(int a, int b, int c, int d, int e, int f) {
              return a + b + c + d + e + f;
            }
            int main() { return f(1, 2, 3, 4, 5, 6); }
        """)
        sp_stores = [i for i in compiled.program.instructions
                     if i.op is Op.SW and i.rs == R.SP and i.imm >= 0]
        assert len(sp_stores) >= 2, "args 5 and 6 must be stored via $sp"

    def test_sp_balance_across_execution(self):
        trace = run_minic("""
            int f(int a, int b, int c, int d, int e) { return e; }
            int main() { return f(1, 2, 3, 4, 5); }
        """)
        # If SP were unbalanced, the program would crash or corrupt its
        # frame; successful execution with the right result is the check.
        assert trace.exit_code == 5


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope; }")

    def test_missing_main(self):
        with pytest.raises(CompileError):
            compile_source("int f() { return 0; }")

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int x; int x; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        trace = run_minic("""
            int main() {
              int x = 1;
              { int x = 2; print_int(x); }
              print_int(x);
              return 0;
            }
        """)
        assert trace.output == [2, 1]

    def test_address_of_register_promoted_array_ok(self):
        # Arrays are memory-resident by nature; taking an element address
        # must work.
        trace = run_minic("""
            int main() {
              int arr[3];
              arr[1] = 5;
              int* p = &arr[1];
              print_int(*p);
              return 0;
            }
        """)
        assert trace.output == [5]

    def test_assign_to_array_name_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                int arr[3];
                int main() { arr = 0; return 0; }
            """)

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                int f(int a) { return a; }
                int main() { return f(1, 2); }
            """)

    def test_call_to_undefined_function(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return g(); }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { break; return 0; }")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { void x; return 0; }")

    def test_return_value_from_void(self):
        with pytest.raises(CompileError):
            compile_source("""
                void f() { return 1; }
                int main() { f(); return 0; }
            """)

    def test_global_initializer_must_be_constant(self):
        # Literal arithmetic folds at parse time and is fine; anything
        # referencing run-time state is not.
        compile_source("int x = 1 + 2; int main() { return x; }")
        with pytest.raises(CompileError):
            compile_source("""
                int y;
                int x = y + 1;
                int main() { return 0; }
            """)

    def test_dereference_of_int_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int x = 1; return *x; }")

    def test_builtin_redefinition_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                int malloc(int n) { return n; }
                int main() { return 0; }
            """)


class TestLinker:
    def test_all_targets_resolved(self):
        compiled = compile_source("""
            int f(int n) { if (n > 0) return f(n - 1); return 0; }
            int main() { return f(3); }
        """)
        for instr in compiled.program.instructions:
            if instr.op in (Op.J, Op.JAL, Op.BEQZ, Op.BNEZ):
                assert instr.resolved_target is not None

    def test_entry_point_is_start(self):
        compiled = compile_source("int main() { return 0; }")
        assert compiled.entry_pc == compiled.program.pc_of_label("__start")

    def test_text_size_counts_instructions(self):
        compiled = compile_source("int main() { return 0; }")
        assert compiled.text_size == len(compiled.program.instructions)
