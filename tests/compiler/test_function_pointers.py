"""Tests for function pointers and indirect calls (JALR).

Interpreter-style dispatch - the paper's m88ksim/li/perl workloads all
dispatch through function-pointer tables - exercises JALR, the one call
form where the callee is unknown until run time.
"""

import pytest

from repro.compiler import CompileError, compile_source
from repro.isa.instructions import Op
from repro.trace.records import OC_CALL
from tests.conftest import run_minic


class TestFunctionPointers:
    def test_address_of_function_and_indirect_call(self):
        trace = run_minic("""
            int triple(int x) { return 3 * x; }
            int main() {
              int* fn = (int*) &triple;
              print_int(fn(7));
              return 0;
            }
        """)
        assert trace.output == [21]

    def test_dispatch_table(self):
        trace = run_minic("""
            int inc(int x) { return x + 1; }
            int dec(int x) { return x - 1; }
            int table[2];
            int main() {
              table[0] = (int) &inc;
              table[1] = (int) &dec;
              int value = 10;
              for (int i = 0; i < 6; i += 1) {
                int* fn = (int*) table[i % 2];
                value = fn(value);
              }
              print_int(value);
              return 0;
            }
        """)
        assert trace.output == [10]

    def test_pointer_passed_between_functions(self):
        trace = run_minic("""
            int square(int x) { return x * x; }
            int apply(int* fn, int arg) { return fn(arg); }
            int main() {
              print_int(apply((int*) &square, 6));
              return 0;
            }
        """)
        assert trace.output == [36]

    def test_indirect_call_with_multiple_args(self):
        trace = run_minic("""
            int weighted(int a, int b, int c) { return a + 2*b + 3*c; }
            int main() {
              int* fn = (int*) &weighted;
              print_int(fn(1, 2, 3));
              return 0;
            }
        """)
        assert trace.output == [1 + 4 + 9]

    def test_emits_lfa_and_jalr(self):
        compiled = compile_source("""
            int f(int x) { return x; }
            int main() {
              int* p = (int*) &f;
              return p(1);
            }
        """)
        ops = [i.op for i in compiled.program.instructions]
        assert Op.LFA in ops
        assert Op.JALR in ops
        lfa = next(i for i in compiled.program.instructions
                   if i.op is Op.LFA)
        assert lfa.imm == compiled.program.pc_of_label("f")

    def test_indirect_calls_traced_as_calls(self):
        trace = run_minic("""
            int id(int x) { return x; }
            int main() {
              int* fn = (int*) &id;
              int t = 0;
              for (int i = 0; i < 5; i += 1) t += fn(i);
              print_int(t);
              return 0;
            }
        """)
        assert trace.output == [10]
        calls = sum(1 for r in trace.records if r.op_class == OC_CALL)
        assert calls >= 5

    def test_caller_of_indirect_call_is_not_leaf(self):
        # Indirect calls clobber $ra like any call.
        trace = run_minic("""
            int one() { return 1; }
            int caller() {
              int* fn = (int*) &one;
              return fn() + fn();
            }
            int main() { print_int(caller()); return 0; }
        """)
        assert trace.output == [2]

    def test_local_variable_shadows_function_name(self):
        # A local named like a function is a variable, not the function.
        trace = run_minic("""
            int value() { return 5; }
            int main() {
              int value = 9;
              print_int(value);
              return 0;
            }
        """)
        assert trace.output == [9]

    def test_too_many_indirect_args_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                int f(int a, int b, int c, int d, int e) { return a; }
                int main() {
                  int* p = (int*) &f;
                  return p(1, 2, 3, 4, 5);
                }
            """)

    def test_calling_non_pointer_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
                int main() {
                  int x = 5;
                  return x(1);
                }
            """)

    def test_float_args_rejected_on_indirect_calls(self):
        with pytest.raises(CompileError):
            compile_source("""
                int f(int a) { return a; }
                int main() {
                  int* p = (int*) &f;
                  return p(1.5);
                }
            """)
