"""Tests for the leaf-function optimisation.

Leaf functions (no user calls) keep parameters in argument registers,
house locals in caller-saved registers, skip the $ra/$fp saves, and
address any frame $sp-relative.  These tests pin down both the code
shape and - more importantly - correctness under every wrinkle: builtin
calls clobbering $a0, register exhaustion, arrays, and recursion.
"""

from repro.compiler import compile_source
from repro.isa import registers as R
from repro.isa.instructions import Op
from tests.conftest import run_minic


def body_of(compiled, name, next_label):
    start = compiled.program.labels[name]
    end = compiled.program.labels[next_label]
    return compiled.program.instructions[start:end]


class TestLeafShape:
    def test_leaf_never_touches_fp(self):
        compiled = compile_source("""
            int scale(int x, int y) {
              int t = x * 3;
              return t + y;
            }
            int main() { return scale(2, 5); }
        """)
        for instr in body_of(compiled, "scale", "main"):
            assert instr.rs != R.FP
            assert instr.rd != R.FP

    def test_leaf_with_array_uses_sp(self):
        compiled = compile_source("""
            int median3(int a, int b, int c) {
              int buf[3];
              buf[0] = a; buf[1] = b; buf[2] = c;
              if (buf[0] > buf[1]) { int t = buf[0]; buf[0] = buf[1];
                                     buf[1] = t; }
              if (buf[1] > buf[2]) { int t = buf[1]; buf[1] = buf[2];
                                     buf[2] = t; }
              if (buf[0] > buf[1]) { int t = buf[0]; buf[0] = buf[1];
                                     buf[1] = t; }
              return buf[1];
            }
            int main() { return median3(9, 1, 5); }
        """)
        body = body_of(compiled, "median3", "main")
        sp_mem = [i for i in body if i.is_mem and i.rs == R.SP]
        assert sp_mem, "array slots must be $sp-relative in a leaf"
        assert all(i.rs != R.FP for i in body if i.is_mem)

    def test_recursive_function_is_not_leaf(self):
        compiled = compile_source("""
            int down(int n) { if (n == 0) return 0; return down(n - 1); }
            int main() { return down(3); }
        """)
        body = body_of(compiled, "down", "main")
        saved = [i.rt for i in body if i.op is Op.SW]
        assert R.RA in saved

    def test_builtin_caller_still_leaf(self):
        compiled = compile_source("""
            int show(int x) { print_int(x); return x; }
            int main() { return show(5); }
        """)
        body = body_of(compiled, "show", "main")
        # Syscalls do not clobber $ra: still no $ra save.
        assert all(i.rt != R.RA for i in body if i.op is Op.SW)


class TestLeafCorrectness:
    def test_param_survives_builtin_a0_clobber(self):
        # print_int routes its argument through $a0; a leaf's first
        # parameter must be relocated, not destroyed.
        trace = run_minic("""
            int echo(int x, int y) {
              print_int(7);
              return x * 100 + y;
            }
            int main() { print_int(echo(3, 4)); return 0; }
        """)
        assert trace.output == [7, 304]

    def test_malloc_in_leaf(self):
        trace = run_minic("""
            int* grab(int n) {
              int* p = (int*) malloc(n);
              p[0] = n * 2;
              return p;
            }
            int main() {
              int* block = grab(4);
              print_int(block[0]);
              free(block);
              return 0;
            }
        """)
        assert trace.output == [8]

    def test_leaf_with_many_locals_falls_back_to_saved_regs(self):
        decls = "".join(f"int v{i} = {i} + a;" for i in range(12))
        total = " + ".join(f"v{i}" for i in range(12))
        trace = run_minic(f"""
            int crunch(int a) {{
              {decls}
              return {total};
            }}
            int main() {{ print_int(crunch(10)); return 0; }}
        """)
        assert trace.output == [sum(i + 10 for i in range(12))]

    def test_float_leaf_locals(self):
        trace = run_minic("""
            float blend(float a, float b) {
              float wa = 0.25;
              float wb = 0.75;
              float mixed = a * wa + b * wb;
              return mixed;
            }
            int main() { print_float(blend(4.0, 8.0)); return 0; }
        """)
        assert trace.output == [7.0]

    def test_leaf_called_in_loop_from_non_leaf(self):
        trace = run_minic("""
            int square(int x) { return x * x; }
            int main() {
              int total = 0;
              for (int i = 1; i <= 5; i += 1) total += square(i);
              print_int(total);
              return 0;
            }
        """)
        assert trace.output == [55]

    def test_unused_arg_registers_become_leaf_locals(self):
        # One parameter: $a1-$a3 are free for locals; results must be
        # correct regardless of where they land.
        trace = run_minic("""
            int combo(int x) {
              int a = x + 1;
              int b = x + 2;
              int c = x + 3;
              int d = x + 4;
              return a * b + c * d;
            }
            int main() { print_int(combo(1)); return 0; }
        """)
        assert trace.output == [2 * 3 + 4 * 5]

    def test_stack_traffic_reduction(self):
        """The whole point: a hot leaf emits no stack traffic."""
        trace = run_minic("""
            int mix(int a, int b) { return (a * 31 + b) & 65535; }
            int main() {
              int h = 0;
              for (int i = 0; i < 200; i += 1) h = mix(h, i);
              print_int(h);
              return 0;
            }
        """)
        mem = [r for r in trace.records if r.is_mem]
        # main's own frame handling only: far fewer than one stack
        # access per call.
        assert len(mem) < 100
