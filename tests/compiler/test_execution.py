"""End-to-end compiler correctness: compile MiniC, execute, check output.

These are the compiler's golden tests - every language feature is
exercised through the full pipeline (lexer, parser, codegen, linker,
functional simulator) and verified against hand-computed results.
"""

import pytest

from tests.conftest import run_minic


def outputs(source):
    return run_minic(source).output


class TestArithmetic:
    def test_precedence_and_parentheses(self):
        assert outputs("""
            int main() {
              print_int(2 + 3 * 4);
              print_int((2 + 3) * 4);
              print_int(10 - 4 - 3);
              return 0;
            }
        """) == [14, 20, 3]

    def test_division_and_modulo_c_semantics(self):
        assert outputs("""
            int main() {
              print_int(7 / 2);
              print_int(-7 / 2);
              print_int(7 % 3);
              print_int(-7 % 3);
              print_int(7 % -3);
              return 0;
            }
        """) == [3, -3, 1, -1, 1]

    def test_shifts_and_bitwise(self):
        assert outputs("""
            int main() {
              print_int(1 << 10);
              print_int(1024 >> 3);
              print_int(-16 >> 2);
              print_int(12 & 10);
              print_int(12 | 3);
              print_int(12 ^ 10);
              return 0;
            }
        """) == [1024, 128, -4, 8, 15, 6]

    def test_comparisons(self):
        assert outputs("""
            int main() {
              print_int(3 < 4);
              print_int(4 < 3);
              print_int(4 <= 4);
              print_int(5 > 2);
              print_int(2 >= 3);
              print_int(7 == 7);
              print_int(7 != 7);
              return 0;
            }
        """) == [1, 0, 1, 1, 0, 1, 0]

    def test_unary_minus_and_not(self):
        assert outputs("""
            int main() {
              print_int(-5);
              print_int(!0);
              print_int(!17);
              print_int(- -8);
              return 0;
            }
        """) == [-5, 1, 0, 8]

    def test_compound_assignment(self):
        assert outputs("""
            int main() {
              int x = 10;
              x += 5;  print_int(x);
              x -= 3;  print_int(x);
              x *= 2;  print_int(x);
              x /= 4;  print_int(x);
              x %= 4;  print_int(x);
              return 0;
            }
        """) == [15, 12, 24, 6, 2]


class TestControlFlow:
    def test_if_else_chains(self):
        assert outputs("""
            int sign(int x) {
              if (x > 0) return 1;
              else if (x < 0) return -1;
              else return 0;
            }
            int main() {
              print_int(sign(42));
              print_int(sign(-42));
              print_int(sign(0));
              return 0;
            }
        """) == [1, -1, 0]

    def test_while_loop(self):
        assert outputs("""
            int main() {
              int n = 0;
              int total = 0;
              while (n < 10) { total += n; n += 1; }
              print_int(total);
              return 0;
            }
        """) == [45]

    def test_for_with_break_and_continue(self):
        assert outputs("""
            int main() {
              int total = 0;
              for (int i = 0; i < 100; i += 1) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                total += i;
              }
              print_int(total);
              return 0;
            }
        """) == [1 + 3 + 5 + 7 + 9]

    def test_nested_loops(self):
        assert outputs("""
            int main() {
              int count = 0;
              for (int i = 0; i < 5; i += 1)
                for (int j = 0; j < i; j += 1)
                  count += 1;
              print_int(count);
              return 0;
            }
        """) == [10]

    def test_short_circuit_evaluation(self):
        # The right-hand side must not run when short-circuited: it would
        # divide by zero.
        assert outputs("""
            int safe_div(int a, int b) {
              if (b != 0 && a / b > 1) return 1;
              return 0;
            }
            int main() {
              print_int(safe_div(10, 0));
              print_int(safe_div(10, 3));
              print_int(0 || 3);
              print_int(2 && 0);
              print_int(2 && 9);
              return 0;
            }
        """) == [0, 1, 1, 0, 1]

    def test_logical_result_across_calls(self):
        # Regression guard: &&'s partial result must survive a call with
        # register-clobbering on the right-hand side.
        assert outputs("""
            int one() { return 1; }
            int main() {
              print_int(1 && one());
              print_int(0 || one());
              return 0;
            }
        """) == [1, 1]


class TestFunctions:
    def test_recursion(self):
        assert outputs("""
            int fact(int n) {
              if (n <= 1) return 1;
              return n * fact(n - 1);
            }
            int main() { print_int(fact(10)); return 0; }
        """) == [3628800]

    def test_mutual_recursion(self):
        # MiniC has no forward declarations; mutual recursion works
        # because all signatures are collected before codegen begins.
        assert outputs("""
            int is_even(int n) {
              if (n == 0) return 1;
              return is_odd(n - 1);
            }
            int is_odd(int n) {
              if (n == 0) return 0;
              return is_even(n - 1);
            }
            int main() {
              print_int(is_even(10));
              print_int(is_odd(7));
              return 0;
            }
        """) == [1, 1]

    def test_many_arguments_use_stack(self):
        # Arguments beyond the fourth are passed on the stack.
        assert outputs("""
            int sum8(int a, int b, int c, int d, int e, int f, int g,
                     int h) {
              return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
            }
            int main() {
              print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8));
              return 0;
            }
        """) == [1 + 4 + 9 + 16 + 25 + 36 + 49 + 64]

    def test_void_function(self):
        assert outputs("""
            int counter;
            void bump(int by) { counter += by; }
            int main() {
              bump(3); bump(4);
              print_int(counter);
              return 0;
            }
        """) == [7]

    def test_deep_recursion_stack_integrity(self):
        assert outputs("""
            int depth(int n) {
              if (n == 0) return 0;
              return 1 + depth(n - 1);
            }
            int main() { print_int(depth(500)); return 0; }
        """) == [500]

    def test_exit_code_from_main(self):
        trace = run_minic("int main() { return 42; }")
        assert trace.exit_code == 42


class TestPointersAndArrays:
    def test_global_array_indexing(self):
        assert outputs("""
            int squares[10];
            int main() {
              for (int i = 0; i < 10; i += 1) squares[i] = i * i;
              print_int(squares[7]);
              return 0;
            }
        """) == [49]

    def test_local_array_and_constant_index(self):
        assert outputs("""
            int main() {
              int buf[4];
              buf[0] = 10; buf[1] = 20; buf[2] = 30; buf[3] = 40;
              print_int(buf[2]);
              return 0;
            }
        """) == [30]

    def test_pointer_arithmetic(self):
        assert outputs("""
            int data[5] = {1, 2, 3, 4, 5};
            int main() {
              int* p = data;
              print_int(*p);
              p = p + 3;
              print_int(*p);
              p = p - 2;
              print_int(*p);
              print_int(*(data + 4));
              return 0;
            }
        """) == [1, 4, 2, 5]

    def test_pointer_difference(self):
        assert outputs("""
            int data[10];
            int main() {
              int* a = &data[2];
              int* b = &data[9];
              print_int(b - a);
              print_int(a - b);
              return 0;
            }
        """) == [7, -7]

    def test_address_of_local_and_write_through(self):
        assert outputs("""
            void set(int* p, int v) { *p = v; }
            int main() {
              int x = 1;
              set(&x, 99);
              print_int(x);
              return 0;
            }
        """) == [99]

    def test_heap_allocation_roundtrip(self):
        assert outputs("""
            int main() {
              int* block = (int*) malloc(8);
              for (int i = 0; i < 8; i += 1) block[i] = i * 11;
              int total = 0;
              for (int i = 0; i < 8; i += 1) total += block[i];
              free(block);
              print_int(total);
              return 0;
            }
        """) == [11 * sum(range(8))]

    def test_pointer_to_pointer(self):
        assert outputs("""
            int main() {
              int x = 5;
              int* p = &x;
              int** pp = &p;
              **pp = 77;
              print_int(x);
              return 0;
            }
        """) == [77]

    def test_swap_through_pointers(self):
        assert outputs("""
            void swap(int* a, int* b) {
              int t = *a; *a = *b; *b = t;
            }
            int main() {
              int x = 1; int y = 2;
              swap(&x, &y);
              print_int(x); print_int(y);
              return 0;
            }
        """) == [2, 1]

    def test_array_initializer_local_semantics(self):
        assert outputs("""
            int main() {
              int t[3] = {5, 6, 7};
              print_int(t[0] + t[1] + t[2]);
              return 0;
            }
        """) == [18]


class TestGlobals:
    def test_scalar_initializers(self):
        assert outputs("""
            int a = 5;
            int b = -3;
            float f = 2.5;
            int main() {
              print_int(a + b);
              print_float(f);
              return 0;
            }
        """) == [2, 2.5]

    def test_uninitialised_globals_are_zero(self):
        assert outputs("""
            int z;
            int arr[4];
            int main() { print_int(z + arr[3]); return 0; }
        """) == [0]

    def test_global_array_partial_initializer(self):
        assert outputs("""
            int t[5] = {9, 8};
            int main() {
              print_int(t[0]); print_int(t[1]); print_int(t[4]);
              return 0;
            }
        """) == [9, 8, 0]


class TestFloats:
    def test_float_arithmetic(self):
        out = outputs("""
            int main() {
              float a = 1.5;
              float b = 2.25;
              print_float(a + b);
              print_float(a * b);
              print_float(b / a);
              print_float(a - b);
              return 0;
            }
        """)
        assert out == [3.75, 3.375, 1.5, -0.75]

    def test_int_float_conversions(self):
        out = outputs("""
            int main() {
              float f = 7;
              int i = (int) 3.9;
              print_float(f);
              print_int(i);
              print_float((float) 2 / 4);
              return 0;
            }
        """)
        assert out == [7.0, 3, 0.5]

    def test_float_comparisons(self):
        assert outputs("""
            int main() {
              float a = 1.5;
              print_int(a < 2.0);
              print_int(a > 2.0);
              print_int(a == 1.5);
              print_int(a != 1.5);
              print_int(a <= 1.5);
              print_int(a >= 1.6);
              return 0;
            }
        """) == [1, 0, 1, 0, 1, 0]

    def test_sqrt_builtin(self):
        out = outputs("""
            int main() {
              print_float(sqrt(16.0));
              print_float(sqrt(2.0));
              return 0;
            }
        """)
        assert out[0] == 4.0
        assert abs(out[1] - 2 ** 0.5) < 1e-12

    def test_mixed_arithmetic_promotes(self):
        assert outputs("""
            int main() {
              print_float(1 + 0.5);
              print_float(3 / 2.0);
              return 0;
            }
        """) == [1.5, 1.5]

    def test_float_array_and_params(self):
        out = outputs("""
            float dot(float* a, float* b, int n) {
              float total = 0.0;
              for (int i = 0; i < n; i += 1) total += a[i] * b[i];
              return total;
            }
            float xs[3] = {1.0, 2.0, 3.0};
            float ys[3] = {4.0, 5.0, 6.0};
            int main() {
              print_float(dot(xs, ys, 3));
              return 0;
            }
        """)
        assert out == [32.0]


class TestRegisterPressure:
    def test_deeply_nested_expression_spills(self):
        # 16 live subexpressions force temporary spilling to the stack.
        expr = " + ".join(f"(a{i} * b{i})" for i in range(8))
        decls = "".join(f"int a{i} = {i + 1}; int b{i} = {i + 2};"
                        for i in range(8))
        expected = sum((i + 1) * (i + 2) for i in range(8))
        assert outputs(f"""
            int main() {{
              {decls}
              print_int({expr});
              return 0;
            }}
        """) == [expected]

    def test_more_locals_than_saved_registers(self):
        decls = "".join(f"int v{i} = {i};" for i in range(20))
        total = " + ".join(f"v{i}" for i in range(20))
        assert outputs(f"""
            int main() {{
              {decls}
              print_int({total});
              return 0;
            }}
        """) == [sum(range(20))]

    def test_call_in_complex_expression(self):
        assert outputs("""
            int f(int x) { return x * 10; }
            int main() {
              int a = 1; int b = 2; int c = 3;
              print_int(a + f(b) + c * f(a + b));
              return 0;
            }
        """) == [1 + 20 + 3 * 30]
