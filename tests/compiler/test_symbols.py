"""Tests for symbol tables and frame building."""

import pytest

from repro.compiler.symbols import (CompileError, FrameBuilder,
                                    FunctionSignature, GlobalTable,
                                    LocalSymbol, SAVE_AREA_WORDS, Scope,
                                    saved_reg_slot)
from repro.lang.types import FLOAT, INT
from repro.runtime.layout import WORD_SIZE


class TestScope:
    def test_declare_and_lookup(self):
        scope = Scope()
        symbol = LocalSymbol(name="x", var_type=INT, reg=16)
        scope.declare(symbol)
        assert scope.lookup("x") is symbol

    def test_nested_lookup_falls_through(self):
        outer = Scope()
        outer.declare(LocalSymbol(name="x", var_type=INT, reg=16))
        inner = Scope(outer)
        assert inner.lookup("x") is not None

    def test_shadowing(self):
        outer = Scope()
        outer.declare(LocalSymbol(name="x", var_type=INT, reg=16))
        inner = Scope(outer)
        shadow = LocalSymbol(name="x", var_type=FLOAT, reg=52)
        inner.declare(shadow)
        assert inner.lookup("x") is shadow
        assert outer.lookup("x") is not shadow

    def test_same_scope_redeclaration_rejected(self):
        scope = Scope()
        scope.declare(LocalSymbol(name="x", var_type=INT))
        with pytest.raises(CompileError):
            scope.declare(LocalSymbol(name="x", var_type=INT))

    def test_missing_lookup_returns_none(self):
        assert Scope().lookup("nothing") is None


class TestGlobalTable:
    def test_sequential_offsets(self):
        table = GlobalTable()
        a = table.declare_global("a", INT, 1, False, [])
        b = table.declare_global("b", INT, 10, True, [])
        c = table.declare_global("c", FLOAT, 1, False, [])
        assert a.offset == 0
        assert b.offset == WORD_SIZE
        assert c.offset == 11 * WORD_SIZE
        assert table.data_size_bytes == 12 * WORD_SIZE

    def test_redefinition_rejected(self):
        table = GlobalTable()
        table.declare_global("a", INT, 1, False, [])
        with pytest.raises(CompileError):
            table.declare_global("a", INT, 1, False, [])

    def test_function_name_collision_with_global(self):
        table = GlobalTable()
        table.declare_global("f", INT, 1, False, [])
        with pytest.raises(CompileError):
            table.declare_function(FunctionSignature("f", INT, []))

    def test_array_value_type_decays(self):
        table = GlobalTable()
        arr = table.declare_global("arr", INT, 4, True, [])
        assert arr.value_type == INT.pointer_to()
        scalar = table.declare_global("x", INT, 1, False, [])
        assert scalar.value_type == INT


class TestFrameBuilder:
    def test_locals_below_save_area(self):
        frame = FrameBuilder()
        offset = frame.alloc_local(1)
        assert offset == -(SAVE_AREA_WORDS + 1) * WORD_SIZE

    def test_array_allocation_spans(self):
        frame = FrameBuilder()
        first = frame.alloc_local(4)
        second = frame.alloc_local(1)
        assert first - second == 1 * WORD_SIZE
        assert second == first - WORD_SIZE

    def test_spill_slots_recycled(self):
        frame = FrameBuilder()
        slot = frame.alloc_spill()
        frame.release_spill(slot)
        assert frame.alloc_spill() == slot

    def test_frame_size_aligned(self):
        frame = FrameBuilder()
        frame.alloc_local(1)
        assert frame.frame_size % 16 == 0
        assert frame.frame_size >= (SAVE_AREA_WORDS + 1) * WORD_SIZE

    def test_saved_slots_dont_collide_with_locals(self):
        frame = FrameBuilder()
        local = frame.alloc_local(1)
        for i in range(16):
            assert saved_reg_slot(i) > local
