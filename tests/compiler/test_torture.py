"""Codegen torture tests: register pressure crossed with calls, floats,
and control flow - the combinations most likely to expose allocator or
spill bugs."""

from tests.conftest import run_minic


def out(source, name):
    return run_minic(source, name).output


class TestSpillsAcrossCalls:
    def test_int_temps_survive_nested_calls(self):
        # Eight live temporaries, each separated by a clobbering call.
        assert out("""
            int bump(int x) { return x + 1; }
            int main() {
              int r = (1 + bump(10)) * (2 + bump(20))
                    + (3 + bump(30)) * (4 + bump(40))
                    + (5 + bump(50)) * (6 + bump(60));
              print_int(r);
              return 0;
            }
        """, "t1") == [(1 + 11) * (2 + 21) + (3 + 31) * (4 + 41)
                       + (5 + 51) * (6 + 61)]

    def test_float_temps_survive_calls(self):
        assert out("""
            float fbump(float x) { return x + 0.5; }
            int main() {
              float r = (1.0 + fbump(10.0)) * (2.0 + fbump(20.0))
                      + (3.0 + fbump(30.0));
              print_float(r);
              return 0;
            }
        """, "t2") == [(1.0 + 10.5) * (2.0 + 20.5) + (3.0 + 30.5)]

    def test_mixed_int_float_pressure(self):
        terms_i = " + ".join(f"(i{k} * {k + 1})" for k in range(6))
        terms_f = " + ".join(f"(f{k} * {k}.5)" for k in range(6))
        decls_i = "".join(f"int i{k} = {k + 2};" for k in range(6))
        decls_f = "".join(f"float f{k} = {k}.25;" for k in range(6))
        expected_i = sum((k + 2) * (k + 1) for k in range(6))
        expected_f = sum((k + 0.25) * (k + 0.5) for k in range(6))
        result = out(f"""
            int main() {{
              {decls_i}
              {decls_f}
              print_int({terms_i});
              print_float({terms_f});
              return 0;
            }}
        """, "t3")
        assert result[0] == expected_i
        assert abs(result[1] - expected_f) < 1e-9

    def test_call_inside_logical_operand(self):
        assert out("""
            int calls;
            int check(int v) { calls += 1; return v; }
            int main() {
              int a = check(1) && check(0) && check(1);
              int b = check(0) || check(1);
              print_int(a);
              print_int(b);
              print_int(calls);
              return 0;
            }
        """, "t4") == [0, 1, 4]   # short-circuit skips the third check

    def test_recursion_with_float_locals(self):
        result = out("""
            float geo(float base, int n) {
              if (n == 0) return 1.0;
              float rest = geo(base, n - 1);
              return base * rest;
            }
            int main() { print_float(geo(2.0, 10)); return 0; }
        """, "t5")
        assert result == [1024.0]

    def test_arguments_evaluated_with_nested_calls(self):
        assert out("""
            int add3(int a, int b, int c) { return a + b * 10 + c * 100; }
            int one() { return 1; }
            int main() {
              print_int(add3(one(), one() + one(), add3(one(), one(),
                                                        one())));
              return 0;
            }
        """, "t6") == [1 + 2 * 10 + 111 * 100]

    def test_eight_arg_call_with_expressions(self):
        assert out("""
            int sum8(int a, int b, int c, int d,
                     int e, int f, int g, int h) {
              return a + b + c + d + e + f + g + h;
            }
            int two() { return 2; }
            int main() {
              print_int(sum8(two(), two() * 2, two() * 3, two() * 4,
                             two() * 5, two() * 6, two() * 7,
                             two() * 8));
              return 0;
            }
        """, "t7") == [2 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)]


class TestControlFlowPressure:
    def test_nested_loops_with_live_accumulators(self):
        assert out("""
            int main() {
              int a = 0; int b = 0; int c = 0; int d = 0;
              for (int i = 0; i < 4; i += 1) {
                for (int j = 0; j < 4; j += 1) {
                  a += i; b += j; c += i * j; d += 1;
                }
              }
              print_int(a * 1000000 + b * 10000 + c * 100 + d);
              return 0;
            }
        """, "t8") == [24 * 1000000 + 24 * 10000 + 36 * 100 + 16]

    def test_break_inside_deep_nesting(self):
        assert out("""
            int main() {
              int found = -1;
              for (int i = 0; i < 10; i += 1) {
                for (int j = 0; j < 10; j += 1) {
                  if (i * 10 + j == 42) { found = i * j; break; }
                }
                if (found >= 0) break;
              }
              print_int(found);
              return 0;
            }
        """, "t9") == [8]

    def test_assignment_as_expression_value(self):
        assert out("""
            int main() {
              int a;
              int b = (a = 7) + 1;
              print_int(a);
              print_int(b);
              return 0;
            }
        """, "t10") == [7, 8]

    def test_chained_assignment(self):
        assert out("""
            int main() {
              int a; int b; int c;
              a = b = c = 9;
              print_int(a + b + c);
              return 0;
            }
        """, "t11") == [27]

    def test_pointer_walk_with_call_in_loop(self):
        assert out("""
            int gbuf[8];
            int scale(int x) { return x * 2; }
            int main() {
              for (int i = 0; i < 8; i += 1) gbuf[i] = i;
              int* p = gbuf;
              int total = 0;
              for (int i = 0; i < 8; i += 1) {
                total += scale(p[0]);
                p = p + 1;
              }
              print_int(total);
              return 0;
            }
        """, "t12") == [2 * sum(range(8))]
