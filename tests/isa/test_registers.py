"""Tests for the register-file model."""

import pytest

from repro.isa import registers as R


class TestRegisterNumbers:
    def test_mips_convention_positions(self):
        assert R.ZERO == 0
        assert R.GP == 28
        assert R.SP == 29
        assert R.FP == 30
        assert R.RA == 31

    def test_fpr_ids_follow_gprs(self):
        assert R.FPR_BASE == 32
        assert R.F0 == 32

    def test_register_groups_are_disjoint(self):
        temps = set(R.TEMP_REGS)
        saved = set(R.SAVED_REGS)
        args = set(R.ARG_REGS)
        assert not temps & saved
        assert not temps & args
        assert not saved & args

    def test_special_registers_not_allocatable(self):
        allocatable = set(R.TEMP_REGS) | set(R.SAVED_REGS) | set(R.ARG_REGS)
        for special in (R.ZERO, R.GP, R.SP, R.FP, R.RA, R.AT):
            assert special not in allocatable

    def test_fp_groups_are_fprs(self):
        for reg in R.FTEMP_REGS + R.FSAVED_REGS + R.FARG_REGS + (R.FV0,):
            assert R.is_fpr(reg)

    def test_fp_groups_disjoint(self):
        ftemps = set(R.FTEMP_REGS)
        fsaved = set(R.FSAVED_REGS)
        fargs = set(R.FARG_REGS)
        assert not ftemps & fsaved
        assert not ftemps & fargs
        assert not fsaved & fargs
        assert R.FV0 not in ftemps | fsaved | fargs


class TestRegNames:
    def test_gpr_names(self):
        assert R.reg_name(R.SP) == "$sp"
        assert R.reg_name(R.ZERO) == "$zero"
        assert R.reg_name(R.T0) == "$t0"

    def test_fpr_names(self):
        assert R.reg_name(R.FPR_BASE) == "$f0"
        assert R.reg_name(R.FPR_BASE + 31) == "$f31"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            R.reg_name(-1)
        with pytest.raises(ValueError):
            R.reg_name(64)

    def test_is_fpr_boundary(self):
        assert not R.is_fpr(31)
        assert R.is_fpr(32)
