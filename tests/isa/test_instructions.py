"""Tests for instruction representation and addressing-mode classification."""

import pytest

from repro.isa import registers as R
from repro.isa.instructions import (INSTRUCTION_SIZE, AddrMode, Instruction,
                                    Op, Program, classify_addr_mode)


class TestAddrModeClassification:
    def test_sp_and_fp_are_stack(self):
        assert classify_addr_mode(R.SP) is AddrMode.STACK
        assert classify_addr_mode(R.FP) is AddrMode.STACK

    def test_gp_is_global(self):
        assert classify_addr_mode(R.GP) is AddrMode.GLOBAL

    def test_zero_is_constant(self):
        assert classify_addr_mode(R.ZERO) is AddrMode.CONSTANT

    def test_computed_bases_are_other(self):
        for reg in (R.T0, R.S3, R.A1, R.V0, R.RA):
            assert classify_addr_mode(reg) is AddrMode.OTHER

    def test_instruction_addr_mode_property(self):
        load = Instruction(Op.LW, rd=R.T0, rs=R.SP, imm=-8)
        assert load.addr_mode is AddrMode.STACK

    def test_addr_mode_rejected_for_non_memory(self):
        add = Instruction(Op.ADD, rd=R.T0, rs=R.T1, rt=R.T2)
        with pytest.raises(ValueError):
            _ = add.addr_mode


class TestDestAndSourceRegs:
    def test_alu_dest(self):
        add = Instruction(Op.ADD, rd=R.T0, rs=R.T1, rt=R.T2)
        assert add.dest_regs() == (R.T0,)
        assert set(add.src_regs()) == {R.T1, R.T2}

    def test_store_has_no_dest(self):
        store = Instruction(Op.SW, rt=R.T0, rs=R.SP, imm=0)
        assert store.dest_regs() == ()
        assert R.T0 in store.src_regs()
        assert R.SP in store.src_regs()

    def test_load_dest_and_base_source(self):
        load = Instruction(Op.LW, rd=R.T3, rs=R.GP, imm=16)
        assert load.dest_regs() == (R.T3,)
        assert R.GP in load.src_regs()

    def test_jal_writes_ra(self):
        jal = Instruction(Op.JAL, target="foo")
        assert jal.dest_regs() == (R.RA,)

    def test_jr_reads_target_register(self):
        jr = Instruction(Op.JR, rs=R.RA)
        assert jr.dest_regs() == ()
        assert jr.src_regs() == (R.RA,)

    def test_branch_has_no_dest(self):
        br = Instruction(Op.BEQZ, rs=R.T0, target="x")
        assert br.dest_regs() == ()


class TestInstructionPredicates:
    def test_load_store_predicates(self):
        assert Instruction(Op.LW, rd=1, rs=2).is_load
        assert Instruction(Op.LF, rd=33, rs=2).is_load
        assert Instruction(Op.SW, rt=1, rs=2).is_store
        assert Instruction(Op.SF, rt=33, rs=2).is_store
        assert not Instruction(Op.ADD, rd=1, rs=2, rt=3).is_mem

    def test_call_predicates(self):
        assert Instruction(Op.JAL, target="f").is_call
        assert Instruction(Op.JALR, rs=R.T0).is_call
        assert not Instruction(Op.JR, rs=R.RA).is_call

    def test_str_forms(self):
        load = Instruction(Op.LW, rd=R.T0, rs=R.SP, imm=-16)
        assert "$t0" in str(load)
        assert "($sp)" in str(load)
        add = Instruction(Op.ADDI, rd=R.T1, rs=R.T2, imm=42)
        assert "42" in str(add)


class TestProgram:
    def _program(self, count=4):
        instrs = [Instruction(Op.NOP) for _ in range(count)]
        return Program(instructions=instrs, labels={"start": 0, "end": 3},
                       text_base=0x400000)

    def test_pc_index_roundtrip(self):
        program = self._program()
        for i in range(4):
            pc = program.pc_of_index(i)
            assert program.index_of_pc(pc) == i

    def test_pc_spacing_is_instruction_size(self):
        program = self._program()
        assert program.pc_of_index(1) - program.pc_of_index(0) \
            == INSTRUCTION_SIZE

    def test_misaligned_pc_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            program.index_of_pc(0x400001)

    def test_label_pc(self):
        program = self._program()
        assert program.pc_of_label("end") == 0x400000 + 3 * INSTRUCTION_SIZE

    def test_len(self):
        assert len(self._program(7)) == 7
