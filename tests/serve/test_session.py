"""The :class:`repro.api.Session` facade: CLI parity and residency.

The redesign's core guarantee is that every entry point - batch CLI,
programmatic Session, served daemon - produces byte-identical payloads
for the same query.  These tests pin the CLI<->Session half of that
triangle; ``test_server.py`` pins the served half.
"""

import pytest

from repro import api, metrics
from repro.cli import main
from repro.eval import engine
from repro.trace import cache as trace_cache
from repro.workloads import suite

SCALE = 0.2
NAME = "db_vortex"


@pytest.fixture(autouse=True)
def _clear_state():
    yield
    suite.clear_caches()
    trace_cache.reset()
    engine.set_jobs(None)
    engine.set_checkpoint(None)
    metrics.disable()
    engine.take_metrics()


class TestCliParity:
    def test_predict_text_matches_cli_stdout(self, capsys):
        assert main(["predict", "--scale", str(SCALE), NAME]) == 0
        expected = capsys.readouterr().out
        response = api.Session().predict(api.PredictRequest(
            names=(NAME,), scale=SCALE))
        assert response.text == expected

    def test_regions_text_matches_cli_stdout(self, capsys):
        assert main(["regions", "--scale", str(SCALE), NAME]) == 0
        expected = capsys.readouterr().out
        response = api.Session().regions(api.RegionsRequest(
            names=(NAME,), scale=SCALE))
        assert response.text == expected

    def test_experiment_text_matches_cli_stdout(self, capsys):
        assert main(["experiment", "table1", "--scale", str(SCALE),
                     NAME]) == 0
        expected = capsys.readouterr().out
        response = api.Session().experiment(api.ExperimentRequest(
            experiment="table1", names=(NAME,), scale=SCALE))
        assert response.text == expected
        assert response.result is not None
        assert response.result.experiment == "table1"

    @pytest.mark.slow
    def test_timing_text_matches_cli_stdout(self, capsys):
        assert main(["timing", "--scale", "0.1", NAME]) == 0
        expected = capsys.readouterr().out
        response = api.Session().timing(api.TimingRequest(
            names=(NAME,), scale=0.1))
        assert response.text == expected


class TestResidency:
    def test_resident_matches_batch(self):
        request = api.PredictRequest(names=(NAME,), scale=SCALE)
        batch = api.Session().predict(request)
        suite.clear_caches()
        resident = api.Session(resident=True).predict(request)
        assert resident.lines == batch.lines
        assert resident.text == batch.text

    def test_warm_requests_skip_trace_regeneration(self):
        session = api.Session(resident=True)
        session.warm([(NAME, SCALE)])
        assert session.warmed() == ((NAME, SCALE),)
        request = api.PredictRequest(names=(NAME,), scale=SCALE)
        first = session.predict(request)
        second = session.predict(request)
        assert second is first          # memoised, not recomputed
        snapshot = session.metrics.snapshot()
        # One trace load (the warm), zero regenerations afterwards.
        assert snapshot["api.trace.misses"]["value"] == 1
        assert snapshot["api.trace.hits"]["value"] >= 1
        assert snapshot["api.predict.memo.misses"]["value"] == 1
        assert snapshot["api.predict.memo.hits"]["value"] == 1

    def test_resident_lru_bounds_trace_memory(self):
        session = api.Session(resident=True, max_resident_traces=1)
        session.warm([(NAME, 0.1), (NAME, SCALE)])
        assert session.warmed() == ((NAME, SCALE),)

    def test_close_drops_residency(self):
        session = api.Session(resident=True)
        session.warm([(NAME, SCALE)])
        session.close()
        assert session.warmed() == ()

    def test_default_requests_cover_full_suite(self):
        request = api.RegionsRequest()
        assert api.resolve_names(request.names) \
            == tuple(suite.ALL_WORKLOADS)


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            api.Session().predict(api.PredictRequest(names=("gcc",)))

    def test_unknown_scheme_rejected_before_tracing(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            api.Session().predict(api.PredictRequest(
                names=(NAME,), scheme="telepathy"))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            api.Session().experiment(api.ExperimentRequest(
                experiment="figure99"))

    def test_experiment_registry_matches_ids(self):
        assert api.EXPERIMENT_IDS == tuple(sorted(api.EXPERIMENTS))
        assert "table1" in api.EXPERIMENTS
        assert "a8" in api.EXPERIMENTS
