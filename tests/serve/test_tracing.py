"""Request correlation, telemetry, and exposition on the serve path.

End-to-end checks of the PR's observability layer: client-minted
``request_id`` threading through the daemon's span journals and
response envelopes, deadline budgets in 504 payloads, the Prometheus
``metrics`` op, ``stats --stream`` push frames, the continuous
telemetry recorder riding a live server, and the ``repro top``
renderer.
"""

import json
import socket

import pytest

from repro import api
from repro.obs import profile as obs_profile
from repro.obs import spans
from repro.serve import telemetry
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer
from repro.serve.top import render_frame, run_top
from repro.workloads import suite

SCALE = 0.2
NAME = "db_vortex"


@pytest.fixture(scope="module")
def warm_server():
    session = api.Session(resident=True)
    session.warm([(NAME, SCALE)])
    server = ReproServer(session, port=0, max_inflight=8,
                         queue_depth=16)
    address = server.start()
    yield server, address
    server.shutdown(drain=True)
    suite.clear_caches()


class TestRequestCorrelation:
    def test_response_echoes_request_id_attempt_incarnation(
            self, warm_server):
        server, address = warm_server
        with ServeClient(address) as client:
            response = client.call("predict", names=[NAME],
                                   scale=SCALE)
        assert response["request_id"] == client.last_request_id
        assert response["attempt"] == 0
        assert response["incarnation"] == server.incarnation_id

    def test_request_ids_are_unique_per_call(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            client.health()
            first = client.last_request_id
            client.health()
            second = client.last_request_id
        assert first != second

    def test_caller_supplied_request_id_is_used(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            response = client.call("health",
                                   request_id="ext-trace-42")
        assert response["request_id"] == "ext-trace-42"
        assert client.last_request_id == "ext-trace-42"

    def test_server_mints_id_for_clients_that_send_none(
            self, warm_server):
        server, address = warm_server
        with socket.create_connection(address, timeout=10.0) as sock:
            sock.sendall(b'{"op": "health", "id": 1}\n')
            line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert response["request_id"].startswith(
            f"srv-{server.incarnation_id}-")

    def test_health_reports_incarnation(self, warm_server):
        server, address = warm_server
        with ServeClient(address) as client:
            health = client.health()
        assert health["incarnation"] == server.incarnation_id

    def test_protocol_error_response_carries_incarnation(
            self, warm_server):
        server, address = warm_server
        with socket.create_connection(address, timeout=10.0) as sock:
            sock.sendall(b'{"op": 7}\n')
            line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert response["status"] == 400
        assert response["incarnation"] == server.incarnation_id


class TestSpanStamping:
    def test_request_tree_is_stamped_and_event_flushed(self, tmp_path):
        spans.enable(tmp_path, run_id="trace-run")
        try:
            session = api.Session(resident=True)
            server = ReproServer(session, port=0)
            address = server.start()
            try:
                with ServeClient(address) as client:
                    client.result("predict", names=[NAME], scale=SCALE)
                    request_id = client.last_request_id
            finally:
                server.shutdown(drain=True)
        finally:
            spans.disable()
            suite.clear_caches()
        run = obs_profile.load_run(tmp_path)
        stamped = [span for span in run.spans
                   if span["attrs"].get("request") == request_id]
        names = {span["name"] for span in stamped}
        # The flushed start event, the lifecycle span, and the
        # session's work underneath all carry the client's id.
        assert "serve:request:start" in names
        assert "serve:request" in names
        assert len(names) > 2
        lifecycle = next(span for span in stamped
                         if span["name"] == "serve:request")
        assert lifecycle["attrs"]["incarnation"] \
            == server.incarnation_id
        assert lifecycle["attrs"]["status"] == 200
        assert all(span["attrs"].get("request_attempt") == 0
                   for span in stamped)
        # And the manifest records which incarnation appended.
        assert run.manifest["incarnation_id"] == server.incarnation_id

    def test_request_timeline_renders_from_journal(self, tmp_path):
        spans.enable(tmp_path, run_id="tl-run")
        try:
            session = api.Session(resident=True)
            server = ReproServer(session, port=0)
            address = server.start()
            try:
                with ServeClient(address) as client:
                    client.result("predict", names=[NAME], scale=SCALE)
                    request_id = client.last_request_id
            finally:
                server.shutdown(drain=True)
        finally:
            spans.disable()
            suite.clear_caches()
        runs = obs_profile.load_runs([tmp_path])
        timeline = obs_profile.request_timeline(runs, request_id)
        assert timeline.entries
        assert timeline.incarnations == [server.incarnation_id]
        [attempt] = timeline.attempts
        assert attempt["attempt"] == 0
        assert attempt["outcome"] == "completed status 200"
        text = obs_profile.render_request_timeline(timeline)
        assert request_id in text
        assert server.incarnation_id in text

    def test_missing_request_renders_a_hint(self):
        timeline = obs_profile.request_timeline([], "nope")
        text = obs_profile.render_request_timeline(timeline)
        assert "no spans found" in text


class TestDeadlineBudgets:
    def test_504_payload_carries_remaining_budgets(self):
        session = api.Session(resident=True)
        server = ReproServer(session, port=0, debug_ops=True)
        address = server.start()
        try:
            with ServeClient(address) as client:
                response = client.call("sleep", seconds=2.0,
                                       timeout_ms=60.0)
        finally:
            server.shutdown(drain=True)
        assert response["status"] == 504
        assert response["stages"]
        budgets = response["budget_ms"]
        assert budgets
        labels = [label for label, _ in budgets]
        assert labels[0] == "serve:sleep"
        # Remaining budget only shrinks as stages complete.
        remaining = [ms for _, ms in budgets]
        assert remaining == sorted(remaining, reverse=True)
        assert all(ms <= 60.0 for ms in remaining)


class TestMetricsOp:
    def test_prometheus_exposition(self, warm_server):
        server, address = warm_server
        with ServeClient(address) as client:
            client.result("predict", names=[NAME], scale=SCALE)
            text = client.metrics_text()
        lines = text.splitlines()
        assert any(line.startswith("repro_serve_requests_total ")
                   for line in lines)
        assert f'incarnation="{server.incarnation_id}"' in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        # Every sample line parses as "name{labels} value".
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)    # raises if malformed

    def test_metrics_rejects_params(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            with pytest.raises(ServeError) as exc_info:
                client.result("metrics", verbose=True)
        assert exc_info.value.status == 400


class TestStatsStream:
    def test_stream_pushes_frames_then_connection_survives(
            self, warm_server):
        server, address = warm_server
        with ServeClient(address) as client:
            frames = list(client.stream_stats(interval_s=0.05,
                                              count=3))
            stream_id = client.last_request_id
            # The subscription ended on its own count: the same
            # connection keeps answering.
            health = client.health()
        assert len(frames) == 3
        assert health["incarnation"] == server.incarnation_id
        first, *pushed = frames
        assert first["result"]["incarnation"] == server.incarnation_id
        assert "requests" in first["result"]
        for index, frame in enumerate(pushed):
            assert frame["stream"] is True
            assert frame["seq"] == index + 2
            assert frame["request_id"] == stream_id
            assert frame["result"]["uptime_s"] >= \
                first["result"]["uptime_s"]

    def test_stream_validation_errors_are_400(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            bad_interval = client.call("stats", stream=True,
                                       interval_s=-1)
            assert bad_interval["status"] == 400
            bad_count = client.call("stats", stream=True,
                                    count="lots")
            assert bad_count["status"] == 400
            no_stream = client.call("stats", interval_s=5)
            assert no_stream["status"] == 400

    def test_plain_stats_still_returns_full_snapshot(self, warm_server):
        server, address = warm_server
        with ServeClient(address) as client:
            stats = client.stats()
        assert stats["incarnation"] == server.incarnation_id
        assert "metrics" in stats


class TestServerTelemetry:
    def test_recorder_rides_the_server_lifecycle(self, tmp_path):
        path = tmp_path / telemetry.FILENAME
        session = api.Session(resident=True)
        server = ReproServer(session, port=0, telemetry_path=path,
                             telemetry_interval_s=30.0)
        address = server.start()
        try:
            with ServeClient(address) as client:
                client.result("predict", names=[NAME], scale=SCALE)
        finally:
            server.shutdown(drain=True)
            suite.clear_caches()
        samples = telemetry.read_telemetry(path)
        # Interval far beyond the test: the sample is the final flush.
        assert samples
        last = samples[-1]
        assert last["incarnation"] == server.incarnation_id
        assert last["requests"] >= 1
        assert last["admission"]["state"] in ("ok", "degraded",
                                              "overloaded")


class TestTopRenderer:
    FRAME = {
        "ts": 100.0, "uptime_s": 12.5, "incarnation": "i-abc-1",
        "inflight": 1, "requests": 50, "errors": 2, "shed": 3,
        "rejected": 0, "deadline_expired": 0,
        "latency_ms": {"p50": 1.5, "p95": 4.0, "p99": 9.0,
                       "mean": 2.25, "count": 50},
        "admission": {"state": "degraded", "pending": 2,
                      "window": {"hit_rate": 0.75,
                                 "evictions_per_s": 0.5}},
        "resident": 4, "memoised": 7,
    }

    def test_render_frame_plain(self):
        text = render_frame(self.FRAME)
        assert "[DEGRADED]" in text
        assert "incarnation i-abc-1" in text
        assert "p95 4.0ms" in text
        assert "lru hit-rate 75.0%" in text
        assert "shed 3" in text
        assert "\x1b[" not in text

    def test_render_frame_color_paints_state(self):
        text = render_frame(self.FRAME, color=True)
        assert "\x1b[33m" in text           # yellow for degraded
        assert "DEGRADED" in text

    def test_rates_derive_from_previous_frame(self):
        current = dict(self.FRAME, ts=110.0, requests=150)
        text = render_frame(current, self.FRAME)
        assert "qps 10.0" in text

    def test_run_top_against_live_server(self, warm_server, capsys):
        _, address = warm_server
        import io
        out = io.StringIO()
        code = run_top(address, interval_s=0.05, count=2, out=out,
                       color=False, clear=False)
        assert code == 0
        frames = out.getvalue().strip().split("repro serve ")
        assert len([f for f in frames if f]) == 2
