"""The multiprocess load generator behind ``repro bench load``."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.serve.bench import render_report, run_load
from repro.serve.server import ReproServer
from repro.workloads import suite

SCALE = 0.2
NAME = "db_vortex"


@pytest.fixture(scope="module")
def warm_server():
    session = api.Session(resident=True)
    session.warm([(NAME, SCALE)])
    server = ReproServer(session, port=0)
    address = server.start()
    yield server, address
    server.shutdown(drain=True)
    suite.clear_caches()


class TestRunLoad:
    def test_report_shape_and_artifact(self, warm_server, tmp_path):
        _, address = warm_server
        out = tmp_path / "BENCH_serve.json"
        report = run_load(address, clients=2, count=5,
                          params={"names": [NAME], "scale": SCALE},
                          out=out)
        assert report["requests"] == 10
        assert report["ok"] == 10
        assert report["errors"] == 0
        assert report["qps"] > 0
        latency = report["latency_ms"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["max"] >= latency["p99"]
        # The daemon's live endpoints ride along for CI assertions.
        assert report["health"]["status"] == "ok"
        assert report["stats"]["metrics"]["serve.requests"]["value"] \
            >= 10
        # The artifact on disk is the same document.
        assert json.loads(out.read_text()) == report
        # A served payload sample is embedded for spot-checking.
        assert report["sample"]["lines"]

    def test_render_report_mentions_the_numbers(self, warm_server,
                                                tmp_path):
        _, address = warm_server
        report = run_load(address, clients=1, count=3,
                          params={"names": [NAME], "scale": SCALE})
        text = render_report(report)
        assert "1 clients x 3 requests" in text
        assert "qps" in text and "p99" in text

    def test_dead_server_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="load client failed"):
            run_load(("127.0.0.1", 1), clients=1, count=1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            run_load(("127.0.0.1", 1), clients=0, count=1)


class TestBenchCli:
    def test_bench_load_against_running_daemon(self, warm_server,
                                               tmp_path, capsys,
                                               monkeypatch):
        _, address = warm_server
        monkeypatch.chdir(tmp_path)
        host, port = address
        assert main(["bench", "load", "--clients", "2", "--count", "4",
                     "--host", host, "--port", str(port),
                     "--workloads", NAME, "--scale", str(SCALE)]) == 0
        captured = capsys.readouterr()
        assert "qps" in captured.out
        assert "load report written to BENCH_serve.json" in captured.err
        report = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert report["ok"] == 8
        assert report["params"]["scheme"] == api.DEFAULT_SCHEME
