"""The ``repro serve`` daemon: concurrency, admission, shutdown.

Servers are started in-process on ephemeral ports (``port=0``) so the
tests exercise the real socket stack without fixed-port collisions.
"""

import threading
import time

import pytest

from repro import api
from repro.cli import main
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import CONTROL_OPS, ReproServer
from repro.workloads import suite

SCALE = 0.2
NAME = "db_vortex"


@pytest.fixture(scope="module")
def warm_server():
    """One warmed daemon shared by the read-only tests in this module."""
    session = api.Session(resident=True)
    session.warm([(NAME, SCALE)])
    server = ReproServer(session, port=0, max_inflight=8,
                         queue_depth=16)
    address = server.start()
    yield server, address
    server.shutdown(drain=True)
    suite.clear_caches()


class TestProtocolSurface:
    def test_health_endpoint(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["max_inflight"] == 8
        assert [NAME, SCALE] in health["warmed"]

    def test_stats_endpoint_reports_latency_quantiles(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            client.result("predict", names=[NAME], scale=SCALE)
            stats = client.stats()
        summary = stats["latency_ms"]
        assert summary["count"] >= 1
        assert summary["p50"] is not None
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        snapshot = stats["metrics"]
        assert snapshot["serve.requests"]["value"] >= 1
        assert "serve.latency_ms" in snapshot
        assert "serve.op.predict.latency_ms" in snapshot

    def test_unknown_op_is_404(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            response = client.call("frobnicate")
        assert response["ok"] is False
        assert response["status"] == 404

    def test_unknown_param_is_400(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            with pytest.raises(ServeError) as exc_info:
                client.result("predict", names=[NAME], turbo=True)
        assert exc_info.value.status == 400

    def test_unknown_workload_is_400(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            with pytest.raises(ServeError) as exc_info:
                client.result("predict", names=["176.gcc"])
        assert exc_info.value.status == 400

    def test_malformed_json_is_400(self, warm_server):
        _, address = warm_server
        client = ServeClient(address)
        try:
            client._sock.sendall(b"this is not json\n")
            import json
            response = json.loads(client._read_line())
        finally:
            client.close()
        assert response["ok"] is False
        assert response["status"] == 400

    def test_request_id_echoed_back(self, warm_server):
        _, address = warm_server
        with ServeClient(address) as client:
            response = client.call("health")
        assert response["id"] == client._next_id


class TestConcurrentDeterminism:
    def test_eight_clients_byte_identical_to_batch_cli(self, warm_server,
                                                       capsys):
        """The redesign's acceptance bar: >= 8 concurrent clients all
        receive payloads byte-identical to the batch CLI's stdout."""
        _, address = warm_server
        assert main(["predict", "--scale", str(SCALE), NAME]) == 0
        expected = capsys.readouterr().out

        payloads = [None] * 8
        errors = []

        def worker(slot):
            try:
                with ServeClient(address) as client:
                    for _ in range(3):
                        result = client.result("predict", names=[NAME],
                                               scale=SCALE)
                        text = "".join(line + "\n"
                                       for line in result["lines"])
                        assert text == expected
                    payloads[slot] = text
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert all(payload == expected for payload in payloads)

    def test_experiment_payload_matches_batch_cli(self, warm_server,
                                                  capsys):
        _, address = warm_server
        assert main(["experiment", "table1", "--scale", str(SCALE),
                     NAME]) == 0
        expected = capsys.readouterr().out
        with ServeClient(address) as client:
            result = client.result("experiment", experiment="table1",
                                   names=[NAME], scale=SCALE)
        assert result["rendered"] + "\n" == expected


class TestAdmissionControl:
    def test_overload_is_rejected_with_503(self):
        server = ReproServer(api.Session(resident=True), port=0,
                             max_inflight=1, queue_depth=0,
                             debug_ops=True)
        address = server.start()
        try:
            ready = threading.Event()
            holder_response = {}

            def hold_slot():
                with ServeClient(address) as client:
                    ready.set()
                    holder_response.update(
                        client.call("sleep", seconds=1.5))

            holder = threading.Thread(target=hold_slot)
            holder.start()
            ready.wait(timeout=10)
            time.sleep(0.3)     # let the sleep op take the only slot
            rejected = 0
            with ServeClient(address) as client:
                for _ in range(5):
                    response = client.call("sleep", seconds=0.0)
                    if response["status"] == 503:
                        rejected += 1
                # Control ops bypass admission even under overload,
                # and health reports the saturated state honestly.
                assert client.health()["status"] == "overloaded"
                stats = client.stats()
            holder.join(timeout=30)
            assert rejected >= 1
            assert holder_response.get("ok") is True
            assert stats["metrics"]["serve.rejected"]["value"] \
                >= rejected
            assert "sleep" not in CONTROL_OPS
        finally:
            server.shutdown(drain=True)

    def test_constructor_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            ReproServer(max_inflight=0)
        with pytest.raises(ValueError):
            ReproServer(queue_depth=-1)


class TestShutdown:
    def test_drain_finishes_inflight_request(self):
        """Clean shutdown: the in-flight request completes and its
        response is flushed before the connection closes."""
        server = ReproServer(api.Session(resident=True), port=0,
                             debug_ops=True)
        address = server.start()
        inflight_response = {}

        def slow_request():
            with ServeClient(address) as client:
                inflight_response.update(
                    client.call("sleep", seconds=1.0))

        requester = threading.Thread(target=slow_request)
        requester.start()
        time.sleep(0.3)         # ensure the request is executing
        server.shutdown(drain=True, timeout=30)
        requester.join(timeout=30)
        assert inflight_response.get("ok") is True
        assert inflight_response["result"]["slept_s"] == 1.0

    def test_wire_shutdown_op_requests_stop(self):
        server = ReproServer(api.Session(resident=True), port=0)
        address = server.start()
        try:
            with ServeClient(address) as client:
                assert client.shutdown() == {"stopping": True}
            assert server.wait_for_stop(timeout=10)
        finally:
            server.shutdown(drain=True)

    def test_cli_serve_round_trip(self, tmp_path, capsys):
        """The ``repro serve`` subcommand end to end: warm, announce,
        serve, honour the wire-side shutdown op, exit 0."""
        port_file = tmp_path / "serve.port"
        exit_code = {}

        def run_daemon():
            exit_code["value"] = main(
                ["serve", "--port", "0", "--port-file", str(port_file),
                 "--warm", f"{NAME}@{SCALE}"])

        daemon = threading.Thread(target=run_daemon)
        daemon.start()
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            port = int(port_file.read_text())
            with ServeClient(("127.0.0.1", port)) as client:
                health = client.health()
                assert [NAME, SCALE] in health["warmed"]
                client.shutdown()
        finally:
            daemon.join(timeout=60)
        assert exit_code.get("value") == 0
        err = capsys.readouterr().err
        assert "warmed 1 trace(s)" in err
        assert "listening on 127.0.0.1:" in err
        suite.clear_caches()

    def test_cli_serve_rejects_bad_warm_spec(self, capsys):
        assert main(["serve", "--port", "0", "--warm",
                     f"{NAME}@fast"]) == 2
        assert "invalid --warm spec" in capsys.readouterr().err

    def test_unix_socket_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        session = api.Session(resident=True)
        server = ReproServer(session, unix_socket=path)
        address = server.start()
        assert address == path
        try:
            with ServeClient(address) as client:
                assert client.health()["status"] == "ok"
        finally:
            server.shutdown(drain=True)
        suite.clear_caches()
