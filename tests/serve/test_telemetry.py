"""The telemetry ring buffer and its derived rates."""

import json

from repro.serve import telemetry
from repro.serve.telemetry import TelemetryRecorder, derive_rates


def _source_factory(samples):
    """A source() yielding the given dicts in order (then the last)."""
    state = {"index": 0}

    def source():
        index = min(state["index"], len(samples) - 1)
        state["index"] += 1
        doc = samples[index]
        if isinstance(doc, Exception):
            raise doc
        return dict(doc)

    return source


class TestDeriveRates:
    def test_rates_from_counter_deltas(self):
        previous = {"ts": 100.0, "requests": 10, "errors": 1, "shed": 0}
        current = {"ts": 102.0, "requests": 30, "errors": 1, "shed": 4}
        doc = derive_rates(current, previous)
        assert doc["qps"] == 10.0
        assert doc["errors_per_s"] == 0.0
        assert doc["shed_per_s"] == 2.0

    def test_first_sample_has_no_rates(self):
        doc = derive_rates({"ts": 1.0, "requests": 5}, None)
        assert "qps" not in doc

    def test_restart_counter_regression_clamps_to_zero(self):
        previous = {"ts": 100.0, "requests": 500, "errors": 0,
                    "shed": 0}
        current = {"ts": 105.0, "requests": 3, "errors": 0, "shed": 0}
        assert derive_rates(current, previous)["qps"] == 0.0

    def test_non_positive_dt_yields_no_rates(self):
        doc = derive_rates({"ts": 1.0, "requests": 2},
                           {"ts": 1.0, "requests": 1})
        assert "qps" not in doc


class TestRecorder:
    def test_samples_append_jsonl_with_rates(self, tmp_path):
        path = tmp_path / telemetry.FILENAME
        recorder = TelemetryRecorder(_source_factory([
            {"ts": 10.0, "requests": 0, "errors": 0, "shed": 0},
            {"ts": 11.0, "requests": 8, "errors": 0, "shed": 0},
        ]), path, interval_s=60.0)
        recorder.sample()
        recorder.sample()
        samples = telemetry.read_telemetry(path)
        assert len(samples) == 2
        assert "qps" not in samples[0]
        assert samples[1]["qps"] == 8.0
        assert recorder.samples == 2

    def test_source_failure_is_counted_not_raised(self, tmp_path):
        recorder = TelemetryRecorder(
            _source_factory([RuntimeError("boom")]),
            tmp_path / "t.jsonl", interval_s=60.0)
        assert recorder.sample() is None
        assert recorder.write_errors == 1
        assert recorder.samples == 0

    def test_rotation_bounds_the_segment(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TelemetryRecorder(
            _source_factory([{"ts": float(i), "requests": i}
                             for i in range(200)]),
            path, interval_s=60.0, max_bytes=512)
        for _ in range(50):
            recorder.sample()
        rotated = path.with_name(path.name + telemetry.ROTATED_SUFFIX)
        assert rotated.exists()
        if path.exists():       # absent right after a rotation
            assert path.stat().st_size <= 512 + 256  # one line of slack
        # Reader folds .old before the live segment, oldest first.
        samples = telemetry.read_telemetry(path)
        timestamps = [s["ts"] for s in samples]
        assert timestamps == sorted(timestamps)

    def test_reader_drops_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"ts": 1.0}) + "\n"
                        + "{broken...\n"
                        + json.dumps({"ts": 2.0}) + "\n")
        assert [s["ts"] for s in telemetry.read_telemetry(path)] \
            == [1.0, 2.0]

    def test_thread_lifecycle_and_final_sample(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = TelemetryRecorder(
            _source_factory([{"ts": 1.0, "requests": 1}]),
            path, interval_s=30.0)
        recorder.start()
        recorder.start()            # idempotent
        recorder.stop(final_sample=True)
        # Interval far beyond the test, so the only guaranteed sample
        # is the final flush on stop().
        assert telemetry.read_telemetry(path)
        assert recorder.samples >= 1

    def test_env_bound_is_used_when_unset(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.MAX_BYTES_ENV_VAR, "1234")
        recorder = TelemetryRecorder(lambda: {}, tmp_path / "t.jsonl",
                                     interval_s=1.0)
        assert recorder.max_bytes == 1234
        monkeypatch.setenv(telemetry.MAX_BYTES_ENV_VAR, "banana")
        recorder = TelemetryRecorder(lambda: {}, tmp_path / "t.jsonl",
                                     interval_s=1.0)
        assert recorder.max_bytes == telemetry.DEFAULT_MAX_BYTES
