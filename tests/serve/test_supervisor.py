"""Crash supervision: restart policy units and a live recovery drill.

The unit tests drive :class:`repro.serve.supervisor.Supervisor` with
scripted children and a fake clock, so the backoff schedule and the
crash-loop breaker are asserted deterministically.  The smoke test at
the bottom (marked ``slow``) supervises a real ``repro serve`` child,
SIGKILLs it, and proves the replacement comes back warm.
"""

import os
import signal
import sys
import threading
import time

import pytest

from repro.serve.client import ServeClient, connect_with_retry
from repro.serve.supervisor import (BREAKER_EXIT_CODE, Supervisor,
                                    serve_child_command)
from repro.workloads import suite

NAME = "db_vortex"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def scripted(script, port_file=None, **kwargs):
    """A supervisor whose children live and die per ``script``.

    ``script`` is a list of ``(lifetime_s, returncode)`` pairs; each
    spawn consumes the next entry, advancing the fake clock by the
    lifetime when the child is waited on.  Returns the supervisor,
    the recorded backoff naps, and the spawn log.
    """
    clock = FakeClock()
    naps = []
    children = iter(script)
    spawn_log = []

    class FakeChild:
        def __init__(self, lifetime, code):
            self._lifetime = lifetime
            self._code = code

        def wait(self):
            clock.now += self._lifetime
            return self._code

        def poll(self):
            return self._code

        def terminate(self):
            pass

    def spawn(command):
        spawn_log.append(list(command))
        lifetime, code = next(children)
        return FakeChild(lifetime, code)

    supervisor = Supervisor(["daemon", "--flag"], port_file=port_file,
                            spawn=spawn, clock=clock,
                            sleep=naps.append, **kwargs)
    return supervisor, naps, spawn_log


class TestRestartPolicy:
    def test_clean_exit_ends_supervision(self):
        supervisor, naps, spawn_log = scripted([(1.0, 0)])
        assert supervisor.run() == 0
        assert supervisor.restarts == 0
        assert naps == []
        assert spawn_log == [["daemon", "--flag"]]

    def test_crash_restarts_until_clean_exit(self):
        supervisor, naps, spawn_log = scripted(
            [(10.0, 1), (10.0, 137), (10.0, 0)])
        assert supervisor.run() == 0
        assert supervisor.restarts == 2
        assert len(naps) == 2
        assert len(spawn_log) == 3

    def test_slow_crashes_never_trip_the_breaker(self):
        # Children that outlive the rapid window did real work; the
        # rapid-failure count must not accumulate across them.
        script = [(10.0, 1)] * 6 + [(10.0, 0)]
        supervisor, _, spawn_log = scripted(script, rapid_window_s=5.0,
                                            breaker_threshold=3)
        assert supervisor.run() == 0
        assert len(spawn_log) == 7

    def test_breaker_opens_after_consecutive_rapid_failures(self):
        supervisor, naps, spawn_log = scripted(
            [(0.1, 1)] * 5, rapid_window_s=5.0, breaker_threshold=3)
        assert supervisor.run() == BREAKER_EXIT_CODE
        assert len(spawn_log) == 3      # third strike opens it
        assert len(naps) == 2           # no nap after the last strike
        assert supervisor.rapid_failures == 3

    def test_good_run_resets_the_rapid_count(self):
        # rapid, rapid, slow, rapid, rapid, clean: the slow crash
        # resets the streak (to 1 - it is still a failure), so the
        # breaker (threshold 3) never opens.
        script = [(0.1, 1), (0.1, 1), (10.0, 1), (0.1, 1), (10.0, 0)]
        supervisor, _, spawn_log = scripted(script, rapid_window_s=5.0,
                                            breaker_threshold=3)
        assert supervisor.run() == 0
        assert len(spawn_log) == 5

    def test_backoff_escalates_with_rapid_failures(self):
        supervisor, naps, _ = scripted(
            [(0.1, 1)] * 4, rapid_window_s=5.0, breaker_threshold=4,
            backoff_s=0.5, backoff_cap_s=30.0)
        supervisor.run()
        # Jitter keeps each delay in [0.5, 1.0) of the nominal value,
        # so successive exponents cannot overlap.
        assert len(naps) == 3
        assert naps[0] < naps[1] < naps[2]
        assert naps[0] < 0.5 <= naps[1] < 1.0 <= naps[2]

    def test_backoff_is_capped(self):
        supervisor, naps, _ = scripted(
            [(0.1, 1)] * 8, rapid_window_s=5.0, breaker_threshold=8,
            backoff_s=0.5, backoff_cap_s=2.0)
        supervisor.run()
        assert max(naps) <= 2.0

    def test_unspawnable_command_exits_nonzero(self):
        def spawn(_command):
            raise OSError("no such executable")

        supervisor = Supervisor(["missing"], spawn=spawn,
                                sleep=lambda _s: None)
        assert supervisor.run() == 1

    def test_breaker_threshold_validated(self):
        with pytest.raises(ValueError):
            Supervisor(["daemon"], breaker_threshold=0)


class TestPortFileHygiene:
    def test_stale_port_file_removed_before_every_spawn(self, tmp_path):
        port_file = tmp_path / "port"
        port_file.write_text("7907\n")      # a dead incarnation's port
        observed = []

        clock = FakeClock()
        children = iter([(0.1, 1), (0.1, 0)])

        class FakeChild:
            def __init__(self, lifetime, code):
                self._lifetime, self._code = lifetime, code

            def wait(self):
                clock.now += self._lifetime
                # The child would write the port file once serving.
                port_file.write_text("8001\n")
                return self._code

            def poll(self):
                return self._code

            def terminate(self):
                pass

        def spawn(command):
            observed.append(port_file.exists())
            return FakeChild(*next(children))

        supervisor = Supervisor(["daemon"], port_file=port_file,
                                spawn=spawn, clock=clock,
                                sleep=lambda _s: None,
                                breaker_threshold=5)
        assert supervisor.run() == 0
        assert observed == [False, False]   # swept before each spawn
        assert not port_file.exists()       # and after the clean exit

    def test_port_file_removed_when_breaker_opens(self, tmp_path):
        port_file = tmp_path / "port"
        port_file.write_text("7907\n")
        supervisor, _, _ = scripted([(0.1, 1)] * 3, port_file=port_file,
                                    rapid_window_s=5.0,
                                    breaker_threshold=3)
        assert supervisor.run() == BREAKER_EXIT_CODE
        assert not port_file.exists()


class TestChildCommand:
    def test_reuses_the_current_interpreter_and_cli(self):
        command = serve_child_command(["--port", "0", "--warm", NAME])
        assert command[:4] == [sys.executable, "-m", "repro", "serve"]
        assert command[4:] == ["--port", "0", "--warm", NAME]


class TestRealProcessSupervision:
    def test_breaker_on_instantly_dying_child(self):
        # A real child process that cannot boot: the breaker gives up
        # instead of hot-looping.
        command = [sys.executable, "-c", "import sys; sys.exit(3)"]
        supervisor = Supervisor(command, backoff_s=0.01,
                                rapid_window_s=5.0, breaker_threshold=3,
                                log=lambda _line: None)
        assert supervisor.run() == BREAKER_EXIT_CODE
        assert supervisor.rapid_failures == 3


def _read_port(port_file, deadline_s=90.0):
    """Poll until the daemon writes its port file; returns the port."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            text = port_file.read_text().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.1)
    raise AssertionError("daemon never wrote its port file")


@pytest.mark.slow
class TestSupervisedRecoverySmoke:
    """The acceptance drill: SIGKILL the daemon, get it back warm."""

    def test_sigkill_recovers_warm_and_clean_shutdown_ends(self,
                                                           tmp_path):
        port_file = tmp_path / "port"
        manifest = tmp_path / "warm.json"
        argv = ["--port", "0", "--port-file", str(port_file),
                "--warm", f"{NAME}@0.05",
                "--warm-manifest", str(manifest),
                "--max-resident", "4"]
        supervisor = Supervisor(serve_child_command(argv),
                                port_file=port_file, backoff_s=0.1,
                                rapid_window_s=0.2, breaker_threshold=5,
                                log=lambda _line: None)
        box = {}
        thread = threading.Thread(
            target=lambda: box.update(code=supervisor.run()),
            daemon=True)
        thread.start()
        try:
            port = _read_port(port_file)
            client = connect_with_retry(("127.0.0.1", port),
                                        deadline_s=30.0)
            health = client.health()
            first_pid = health["pid"]
            assert health["status"] == "ok"
            assert [NAME, 0.05] in health["warmed"]
            # Grow the working set so the manifest holds something the
            # restart command line does not: scale 0.06 can only come
            # back via the manifest.
            client.result("regions", names=[NAME], scale=0.06)
            client.close()

            os.kill(first_pid, signal.SIGKILL)

            deadline = time.monotonic() + 90.0
            client = None
            while time.monotonic() < deadline:
                try:
                    port = _read_port(port_file, deadline_s=60.0)
                    client = ServeClient(("127.0.0.1", port),
                                         timeout=30.0)
                    health = client.health()
                    if health["pid"] != first_pid:
                        break
                    client.close()
                    client = None
                except OSError:
                    if client is not None:
                        client.close()
                        client = None
                time.sleep(0.2)
            assert client is not None, "daemon never came back"
            assert health["status"] == "ok"
            assert [NAME, 0.05] in health["warmed"]
            assert [NAME, 0.06] in health["warmed"], \
                "manifest warm set not restored"
            client.shutdown()
            client.close()
            thread.join(60.0)
            assert not thread.is_alive()
            assert box["code"] == 0
            assert not port_file.exists()
        finally:
            supervisor.stop()
            thread.join(30.0)
            suite.clear_caches()


class TestIncarnationStamping:
    def test_each_spawn_gets_a_unique_incarnation(self):
        from repro.obs.spans import INCARNATION_ENV_VAR

        clock = FakeClock()
        children = iter([(10.0, 1), (10.0, 137), (10.0, 0)])
        stamped = []

        class FakeChild:
            def __init__(self, lifetime, code):
                self._lifetime, self._code = lifetime, code

            def wait(self):
                clock.now += self._lifetime
                return self._code

            def poll(self):
                return self._code

            def terminate(self):
                pass

        def spawn(command):
            # What a real child would inherit through its environment.
            stamped.append(os.environ.get(INCARNATION_ENV_VAR))
            return FakeChild(*next(children))

        supervisor = Supervisor(["daemon"], spawn=spawn, clock=clock,
                                sleep=lambda _s: None,
                                breaker_threshold=5)
        assert supervisor.run() == 0
        assert stamped == supervisor.incarnations
        assert len(set(stamped)) == 3
        base = supervisor._incarnation_base
        assert stamped == [f"{base}.0", f"{base}.1", f"{base}.2"]

    def test_bases_differ_across_supervisors(self):
        first = Supervisor(["daemon"], spawn=lambda c: None)
        second = Supervisor(["daemon"], spawn=lambda c: None)
        # Same pid, so uniqueness rides on the millisecond timestamp;
        # equal bases would still diverge per spawn counter, but two
        # supervisors in one test run are overwhelmingly distinct.
        assert first._incarnation_base.startswith("s")
        assert second._incarnation_base.startswith("s")


@pytest.mark.slow
class TestCrossIncarnationTimeline:
    """The PR acceptance drill: one client request_id, attempt 0 dies
    with its incarnation (SIGKILL mid-request), the retry lands on the
    supervised successor, and ``repro profile --request`` merges both
    incarnations' journals into a single timeline."""

    REQUEST_ID = "chaos-req-1"

    def _wait_for_journal(self, journal, needle, deadline_s=120.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            try:
                if needle in journal.read_text(encoding="utf-8"):
                    return
            except OSError:
                pass
            time.sleep(0.05)
        raise AssertionError(f"{needle!r} never reached {journal}")

    def test_sigkill_mid_request_reconstructs_one_timeline(self,
                                                           tmp_path):
        from repro.obs import profile as obs_profile
        from repro.obs.spans import JOURNAL

        sock = str(tmp_path / "serve.sock")
        trace_dir = tmp_path / "trace"
        # The stall (fires once per process, on the first regions
        # request) holds attempt 0 open long enough to SIGKILL the
        # daemon deterministically mid-request; the successor's stall
        # just slows the retry down.
        argv = ["--unix-socket", sock, "--warm", f"{NAME}@0.05",
                "--max-resident", "4", "--trace-spans", str(trace_dir),
                "--inject-fault",
                "serve:stall,op=regions,seconds=3,times=1"]
        supervisor = Supervisor(serve_child_command(argv),
                                backoff_s=0.1, rapid_window_s=0.2,
                                breaker_threshold=5,
                                log=lambda _line: None)
        box = {}
        runner = threading.Thread(
            target=lambda: box.update(code=supervisor.run()),
            daemon=True)
        runner.start()
        call_box = {}
        caller = None
        try:
            probe = connect_with_retry(sock, deadline_s=120.0,
                                       timeout=30.0)
            health = probe.health()
            first_pid = health["pid"]
            first_incarnation = health["incarnation"]
            probe.close()
            assert first_incarnation.endswith(".0")

            def chaos_call():
                try:
                    client = ServeClient(sock, timeout=60.0,
                                         retries=20, backoff_s=0.5)
                    call_box["response"] = client.call(
                        "regions", names=[NAME], scale=0.05,
                        request_id=self.REQUEST_ID)
                    client.close()
                except BaseException as exc:
                    call_box["error"] = exc

            caller = threading.Thread(target=chaos_call, daemon=True)
            caller.start()
            # The serve:request:start event flushes before the
            # injected stall, so once it is journalled the request is
            # provably in flight - kill the daemon under it.
            self._wait_for_journal(trace_dir / JOURNAL,
                                   self.REQUEST_ID)
            os.kill(first_pid, signal.SIGKILL)

            caller.join(180.0)
            assert not caller.is_alive(), "retrying call never ended"
            assert "error" not in call_box, \
                f"call failed: {call_box.get('error')!r}"
            response = call_box["response"]
            assert response["ok"]
            assert response["request_id"] == self.REQUEST_ID
            assert response["attempt"] >= 1
            second_incarnation = response["incarnation"]
            assert second_incarnation != first_incarnation

            closer = connect_with_retry(sock, deadline_s=60.0,
                                        timeout=30.0)
            closer.shutdown()
            closer.close()
            runner.join(60.0)
            assert not runner.is_alive()
            assert box["code"] == 0
        finally:
            supervisor.stop()
            runner.join(30.0)
            suite.clear_caches()

        # One merged timeline across both incarnations' spans.
        runs = obs_profile.load_runs([trace_dir])
        timeline = obs_profile.request_timeline(runs, self.REQUEST_ID)
        assert timeline.incarnations == [first_incarnation,
                                         second_incarnation]
        attempts = timeline.attempts
        assert attempts[0]["attempt"] == 0
        assert attempts[0]["outcome"] == "started, never completed"
        assert attempts[0]["incarnations"] == [first_incarnation]
        assert attempts[-1]["outcome"] == "completed status 200"
        assert attempts[-1]["incarnations"] == [second_incarnation]
        text = obs_profile.render_request_timeline(timeline)
        assert first_incarnation in text
        assert second_incarnation in text
        assert "started, never completed" in text
