"""Serve-layer chaos drills: ``serve:*`` fault directives in anger.

The contract under injected faults is deterministic degradation:
every answered request is byte-identical to the fault-free answer, or
a *typed* error status (503 with a retry hint, 504 with stage
timings, 500 with the exception type) - never a silently-wrong
payload, and never a wedged daemon.  ``pytest-timeout`` is not
available in this environment, so anything that could hang runs
under the ``finishes_within`` thread-join guard.
"""

import json
import threading
import time

import pytest

from repro import api
from repro.serve.admission import AdmissionController
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.testing import faults as fi
from repro.workloads import suite

NAME = "db_vortex"
SCALE = 0.2


def finishes_within(budget_s, fn, *args, **kwargs):
    """Run ``fn`` on a thread; fail the test if it outlives the budget.

    Returns ``fn``'s result.  Substitute for pytest-timeout: a
    deadlocked drain fails the assertion instead of hanging the run.
    """
    box = {}

    def runner():
        try:
            box["result"] = fn(*args, **kwargs)
        except BaseException as exc:     # propagate to the test thread
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(budget_s)
    assert not thread.is_alive(), \
        f"{fn.__name__} still running after {budget_s}s"
    if "error" in box:
        raise box["error"]
    return box.get("result")


def canonical(response):
    """The response payload in comparison form (timings vary)."""
    return json.dumps(response["result"], sort_keys=True)


@pytest.fixture(autouse=True)
def _no_faults(monkeypatch):
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    fi.install(None)
    yield
    fi.install(None)


@pytest.fixture(scope="module")
def warm_server():
    """One warmed daemon shared by the fault drills in this module."""
    session = api.Session(resident=True)
    session.warm([(NAME, SCALE)])
    server = ReproServer(session, port=0, debug_ops=True)
    address = server.start()
    yield server, address
    server.shutdown(drain=True)
    suite.clear_caches()


class TestByteIdentityUnderFaults:
    """Each fault mode either leaves the answer byte-identical or is
    absorbed by bounded client retries - the fault is invisible at
    the payload level."""

    def _baseline(self, address):
        with ServeClient(address) as client:
            response = client.call("predict", names=[NAME], scale=SCALE)
        assert response["ok"]
        return canonical(response)

    def test_drop_is_absorbed_by_retry(self, warm_server):
        _, address = warm_server
        baseline = self._baseline(address)
        fi.install("serve:drop,op=predict,times=1")
        with ServeClient(address, retries=2) as client:
            response = client.call("predict", names=[NAME], scale=SCALE)
        assert response["ok"]
        assert canonical(response) == baseline

    def test_stall_delays_but_does_not_change_the_answer(self,
                                                         warm_server):
        _, address = warm_server
        baseline = self._baseline(address)
        fi.install("serve:stall,op=predict,seconds=0.2,times=1")
        with ServeClient(address) as client:
            started = time.monotonic()
            response = client.call("predict", names=[NAME], scale=SCALE)
            elapsed = time.monotonic() - started
        assert response["ok"]
        assert canonical(response) == baseline
        assert elapsed >= 0.2

    def test_corrupt_response_is_retried_to_identical_bytes(
            self, warm_server):
        _, address = warm_server
        baseline = self._baseline(address)
        fi.install("serve:corrupt-response,op=predict,times=1,seed=7")
        with ServeClient(address, retries=2) as client:
            response = client.call("predict", names=[NAME], scale=SCALE)
        assert response["ok"]
        assert canonical(response) == baseline
        assert client.retry_total >= 1

    def test_oom_evict_recomputes_identical_bytes(self, warm_server):
        server, address = warm_server
        baseline = self._baseline(address)
        fi.install("serve:oom-evict,op=predict,times=1,seed=1")
        with ServeClient(address) as client:
            response = client.call("predict", names=[NAME], scale=SCALE)
        assert response["ok"]
        assert canonical(response) == baseline

    def test_fault_fires_are_counted(self, warm_server):
        _, address = warm_server
        fi.install("serve:stall,op=health,seconds=0.01,times=1;"
                   "serve:drop,op=sleep,times=1")
        with ServeClient(address) as client:
            client.health()
            metrics = client.stats()["metrics"]
        assert metrics["serve.faults.stall"]["value"] >= 1


class TestTypedErrorStatuses:
    """Faults the client cannot be shielded from surface as *typed*
    statuses, never malformed or missing answers."""

    def test_stall_past_deadline_is_504_with_stage_timings(
            self, warm_server):
        _, address = warm_server
        fi.install("serve:stall,op=predict,seconds=0.4,times=1,seed=2")
        with ServeClient(address) as client:
            response = client.call("predict", timeout_ms=100,
                                   names=[NAME], scale=SCALE)
        assert response["ok"] is False
        assert response["status"] == 504
        assert response["deadline_ms"] == 100
        assert isinstance(response["stages"], list)

    def test_internal_error_is_typed_500(self, warm_server,
                                         monkeypatch):
        server, address = warm_server

        def explode(_request):
            raise RuntimeError("simulated session failure")

        monkeypatch.setattr(server.session, "predict", explode)
        with ServeClient(address) as client:
            response = client.call("predict", names=[NAME], scale=SCALE)
        assert response["ok"] is False
        assert response["status"] == 500
        assert "RuntimeError" in response["error"]

    def test_eviction_storm_sheds_expensive_with_retry_hint(self):
        # oom-evict on every request turns the session into a
        # permanent cold-cache thrash; the admission controller must
        # answer expensive requests with 503 + retry_after_ms while
        # staying observable.
        # Threshold of 3 evictions over the window: the storm trips
        # it within a handful of requests.
        admission = AdmissionController(thrash_evictions_per_s=0.1,
                                        window_s=30.0)
        session = api.Session(resident=True)
        session.warm([(NAME, SCALE)])
        server = ReproServer(session, port=0, admission=admission)
        address = server.start()
        fi.install("serve:oom-evict,op=regions,times=50,seed=3")
        try:
            with ServeClient(address) as client:
                shed = None
                for index in range(8):
                    response = client.call(
                        "regions", names=[NAME],
                        scale=round(0.03 + 0.001 * index, 6))
                    if response["status"] == 503:
                        shed = response
                        break
                assert shed is not None, "thrash never shed"
                assert shed["retry_after_ms"] > 0
                assert client.health()["status"] == "degraded"
        finally:
            server.shutdown(drain=True)
            suite.clear_caches()


class TestDrainNeverDeadlocks:
    def test_drain_with_stalled_inflight_request_completes(self):
        # A request stalled past its deadline is in flight when drain
        # begins: the drain must flush its 504 and return, not wait
        # for work nobody wants.
        session = api.Session(resident=True)
        session.warm([(NAME, SCALE)])
        server = ReproServer(session, port=0, debug_ops=True)
        address = server.start()
        fi.install("serve:stall,op=predict,seconds=0.4,times=1,seed=4")
        box = {}

        def doomed_request():
            with ServeClient(address) as client:
                box["response"] = client.call(
                    "predict", timeout_ms=100, names=[NAME],
                    scale=SCALE)

        thread = threading.Thread(target=doomed_request, daemon=True)
        thread.start()
        time.sleep(0.1)     # let the request reach the stall
        try:
            finishes_within(10.0, server.shutdown, drain=True)
            thread.join(5.0)
            assert not thread.is_alive()
            assert box["response"]["status"] == 504
        finally:
            server.shutdown(drain=False)
            suite.clear_caches()
