"""Serving-path resilience: deadlines, shedding, retries, breakers.

Deadlock-sensitive assertions run the operation under test on a
helper thread and fail if it does not finish inside a hard budget
(the stdlib stand-in for pytest-timeout, which this environment does
not ship).
"""

import json
import socket
import threading
import time

import pytest

from repro import api
from repro.serve.admission import (AdmissionController, STATE_DEGRADED,
                                   STATE_OK, STATE_OVERLOADED)
from repro.serve.client import (CircuitOpenError, ServeClient,
                                connect_with_retry)
from repro.serve.server import (ENV_DEADLINE_MS, ReproServer,
                                read_warm_manifest)
from repro.testing import faults as fi
from repro.workloads import suite

SCALE = 0.2
NAME = "db_vortex"


@pytest.fixture(autouse=True)
def _no_faults(monkeypatch):
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    fi.install(None)
    yield
    fi.install(None)


def finishes_within(budget_s, fn, *args, **kwargs):
    """Run ``fn`` on a thread; fail the test if it outlives budget."""
    box = {}

    def runner():
        try:
            box["result"] = fn(*args, **kwargs)
        except Exception as exc:        # surfaced below
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(budget_s)
    assert not thread.is_alive(), \
        f"{fn} did not finish within {budget_s}s (deadlock?)"
    if "error" in box:
        raise box["error"]
    return box.get("result")


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- deadline plumbing (session layer) ----------------------------------

class TestDeadlineScope:
    def test_no_scope_is_a_noop(self):
        api.check_deadline("anything")      # must not raise

    def test_none_timeout_disables(self):
        with api.deadline_scope(None):
            assert api.current_deadline() is None
            api.check_deadline("stage")

    def test_expiry_raises_with_stage_attribution(self):
        with api.deadline_scope(20):
            api.check_deadline("stage-a")
            time.sleep(0.05)
            with pytest.raises(api.DeadlineExceeded) as excinfo:
                api.check_deadline("stage-b")
        exc = excinfo.value
        assert exc.deadline_ms == 20
        # The elapsed time was attributed to the stage that ran.
        labels = [label for label, _ in exc.stages]
        assert labels == ["stage-a"]
        assert exc.stages[0][1] >= 40
        assert exc.stage == "stage-b"

    def test_scopes_nest_and_restore(self):
        with api.deadline_scope(10_000):
            outer = api.current_deadline()
            with api.deadline_scope(5_000):
                assert api.current_deadline() is not outer
            assert api.current_deadline() is outer
        assert api.current_deadline() is None

    def test_anchor_backdates_the_budget(self):
        anchor = time.monotonic() - 1.0     # already spent
        with api.deadline_scope(500, anchor=anchor):
            with pytest.raises(api.DeadlineExceeded):
                api.check_deadline("immediate")

    def test_session_op_honours_deadline(self):
        session = api.Session(resident=True)
        with api.deadline_scope(0.001):
            time.sleep(0.01)
            with pytest.raises(api.DeadlineExceeded):
                session.regions(api.RegionsRequest(names=(NAME,),
                                                   scale=SCALE))
        suite.clear_caches()


# -- admission controller ----------------------------------------------

class TestAdmissionController:
    def test_healthy_allows(self):
        controller = AdmissionController(max_inflight=2, queue_depth=2)
        decision = controller.admit("predict", cheap=False)
        assert decision.allowed
        assert controller.state() == STATE_OK
        controller.release()

    def test_hard_bound_busies_everyone(self):
        controller = AdmissionController(max_inflight=1, queue_depth=0)
        assert controller.admit("predict", cheap=True).allowed
        decision = controller.admit("predict", cheap=True)
        assert decision.verdict == "busy"
        assert decision.retry_after_ms is not None
        assert controller.state() == STATE_OVERLOADED
        controller.release()
        assert controller.state() == STATE_OK

    def test_eviction_churn_degrades_and_sheds_expensive(self):
        clock = FakeClock()
        controller = AdmissionController(window_s=10.0,
                                         thrash_evictions_per_s=1.0,
                                         clock=clock)
        for _ in range(12):
            controller.note_trace_event("evict")
            clock.advance(0.1)
        assert controller.thrashing()
        assert controller.state() == STATE_DEGRADED
        shed = controller.admit("experiment", cheap=False)
        assert shed.verdict == "shed"
        assert shed.retry_after_ms == controller.shed_retry_after_ms
        # Cheap (memoised) traffic keeps flowing.
        assert controller.admit("predict", cheap=True).allowed
        controller.release()

    def test_window_expires_and_recovers_after_the_hold(self):
        clock = FakeClock()
        controller = AdmissionController(window_s=10.0,
                                         degraded_hold_s=15.0,
                                         clock=clock)
        for _ in range(20):
            controller.note_trace_event("evict")
        assert controller.state() == STATE_DEGRADED
        # The eviction window has drained, but the degraded state
        # latches: shedding silences the signal, so recovery waits
        # for the hold rather than flapping.
        clock.advance(11.0)
        assert controller.state() == STATE_DEGRADED
        clock.advance(15.0)
        assert controller.state() == STATE_OK
        assert controller.admit("experiment", cheap=False).allowed
        controller.release()

    def test_low_hit_rate_degrades_once_window_fills(self):
        clock = FakeClock()
        controller = AdmissionController(window_s=10.0,
                                         min_hit_rate=0.5,
                                         min_window_events=16,
                                         clock=clock)
        for _ in range(8):
            controller.note_trace_event("miss")
        assert not controller.thrashing()   # too few samples yet
        for _ in range(8):
            controller.note_trace_event("miss")
        assert controller.thrashing()

    def test_snapshot_shape(self):
        controller = AdmissionController()
        snapshot = controller.snapshot()
        assert snapshot["state"] == STATE_OK
        assert snapshot["window"]["hit_rate"] is None
        assert snapshot["shed_total"] == 0
        assert snapshot["busy_total"] == 0


# -- server deadline integration ----------------------------------------

class TestServerDeadlines:
    def _server(self, **kwargs):
        kwargs.setdefault("debug_ops", True)
        server = ReproServer(api.Session(resident=True), port=0,
                             **kwargs)
        return server, server.start()

    def test_per_request_timeout_ms_times_out_with_504(self):
        server, address = self._server()
        try:
            with ServeClient(address) as client:
                response = client.call("sleep", timeout_ms=80,
                                       seconds=2.0)
            assert response["status"] == 504
            assert response["ok"] is False
            assert response["deadline_ms"] == 80
            assert isinstance(response["stages"], list)
        finally:
            server.shutdown(drain=True)

    def test_server_default_deadline_applies(self):
        server, address = self._server(deadline_ms=80)
        try:
            with ServeClient(address) as client:
                response = client.call("sleep", seconds=2.0)
            assert response["status"] == 504
        finally:
            server.shutdown(drain=True)

    def test_env_default_deadline(self, monkeypatch):
        monkeypatch.setenv(ENV_DEADLINE_MS, "80")
        server, address = self._server()
        try:
            assert server.deadline_ms == 80
            with ServeClient(address) as client:
                response = client.call("sleep", seconds=2.0)
            assert response["status"] == 504
        finally:
            server.shutdown(drain=True)

    def test_zero_deadline_disables(self):
        server, address = self._server(deadline_ms=0)
        try:
            with ServeClient(address) as client:
                response = client.call("sleep", seconds=0.05)
            assert response["status"] == 200
        finally:
            server.shutdown(drain=True)

    def test_timeouts_are_counted(self):
        server, address = self._server()
        try:
            with ServeClient(address) as client:
                client.call("sleep", timeout_ms=50, seconds=1.0)
                stats = client.stats()
            assert stats["metrics"]["serve.deadline_expired"]["value"] \
                == 1
            assert stats["metrics"]["serve.status.504"]["value"] == 1
        finally:
            server.shutdown(drain=True)

    def test_drain_races_inflight_deadline_expiry(self):
        """A request past its deadline during drain gets its 504 -
        the drain completes instead of hanging on doomed work."""
        server, address = self._server()
        client = ServeClient(address)
        box = {}

        def doomed():
            box["response"] = client.call("sleep", timeout_ms=300,
                                          seconds=30.0)

        requester = threading.Thread(target=doomed, daemon=True)
        requester.start()
        time.sleep(0.1)     # the sleep op is now in flight
        finishes_within(10.0, server.shutdown, drain=True)
        requester.join(5.0)
        assert not requester.is_alive()
        assert box["response"]["status"] == 504
        client.close()

    def test_expired_in_queue_rejected_before_execution(self):
        """A queued request whose budget dies waiting 504s on arrival
        at the worker slot, without running the handler."""
        server, address = self._server(max_inflight=1, queue_depth=4)
        try:
            holder = ServeClient(address)
            box = {}

            def hold():
                box["hold"] = holder.call("sleep", seconds=1.0)

            holding = threading.Thread(target=hold, daemon=True)
            holding.start()
            time.sleep(0.2)     # the only slot is now busy
            with ServeClient(address) as client:
                t0 = time.perf_counter()
                response = client.call("sleep", timeout_ms=100,
                                       seconds=30.0)
                elapsed = time.perf_counter() - t0
            assert response["status"] == 504
            # It expired in the queue and never slept 30s.
            assert elapsed < 5.0
            holding.join(10.0)
            assert box["hold"]["status"] == 200
            holder.close()
        finally:
            server.shutdown(drain=True)


# -- load shedding end to end -------------------------------------------

class TestLoadShedding:
    def test_thrash_sheds_cold_keeps_memoised(self):
        admission = AdmissionController(thrash_evictions_per_s=0.5,
                                        window_s=30.0)
        session = api.Session(resident=True, max_resident_traces=1)
        server = ReproServer(session, port=0, admission=admission)
        address = server.start()
        try:
            with ServeClient(address) as client:
                # Memoise one cheap request while healthy.
                warm = client.call("regions", names=[NAME], scale=SCALE)
                assert warm["status"] == 200
                # Churn the 1-entry LRU with distinct cold scales.
                for index in range(20):
                    scale = 0.03 + 0.001 * index
                    response = client.call("regions", names=[NAME],
                                           scale=scale)
                    if response["status"] == 503:
                        break
                else:
                    pytest.fail("cold requests were never shed")
                assert response["retry_after_ms"] is not None
                assert "thrash" in response["error"]
                # The memoised request still flows, byte-identically.
                again = client.call("regions", names=[NAME],
                                    scale=SCALE)
                assert again["status"] == 200
                assert again["result"] == warm["result"]
                health = client.health()
                assert health["status"] == "degraded"
                assert health["admission"]["shed_total"] >= 1
                stats = client.stats()
                assert stats["metrics"]["serve.shed"]["value"] >= 1
        finally:
            server.shutdown(drain=True)
            suite.clear_caches()


# -- client retry / circuit breaker -------------------------------------

class TestClientResilience:
    def _server(self, **kwargs):
        server = ReproServer(api.Session(resident=True), port=0,
                             debug_ops=True, **kwargs)
        return server, server.start()

    def test_retries_reconnect_through_drops(self):
        server, address = self._server()
        try:
            fi.install("serve:drop,times=2")
            client = ServeClient(address, retries=3, backoff_s=0.01)
            response = client.call("sleep", seconds=0.0)
            assert response["status"] == 200
            assert client.retry_total == 2
            client.close()
        finally:
            server.shutdown(drain=True)

    def test_no_retries_propagates_drop(self):
        server, address = self._server()
        try:
            fi.install("serve:drop")
            with ServeClient(address) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.call("sleep", seconds=0.0)
        finally:
            server.shutdown(drain=True)

    def test_corrupt_response_retried_to_identical_payload(self):
        server, address = self._server()
        try:
            with ServeClient(address) as baseline_client:
                baseline = baseline_client.result(
                    "regions", names=[NAME], scale=SCALE)
            fi.install("serve:corrupt-response,times=1")
            client = ServeClient(address, retries=2, backoff_s=0.01)
            result = client.result("regions", names=[NAME], scale=SCALE)
            assert result == baseline
            assert client.retry_total == 1
            client.close()
        finally:
            server.shutdown(drain=True)
            suite.clear_caches()

    def test_definitive_statuses_never_retry(self):
        server, address = self._server()
        try:
            client = ServeClient(address, retries=5, backoff_s=0.01)
            response = client.call("nonsense-op")
            assert response["status"] == 404
            assert client.retry_total == 0
            client.close()
        finally:
            server.shutdown(drain=True)

    def test_breaker_opens_and_recovers_half_open(self):
        server, address = self._server()
        clock = FakeClock()
        naps = []
        try:
            client = ServeClient(address, retries=1, backoff_s=0.01,
                                 breaker_threshold=2,
                                 breaker_reset_s=5.0, clock=clock,
                                 sleep=naps.append)
            # Two consecutive exhausted calls trip the breaker.
            fi.install("serve:drop,times=10")
            for _ in range(2):
                with pytest.raises((ConnectionError, OSError)):
                    client.call("sleep", seconds=0.0)
            with pytest.raises(CircuitOpenError) as excinfo:
                client.call("sleep", seconds=0.0)
            assert excinfo.value.retry_after_s > 0
            # After the reset window a half-open trial goes through.
            fi.install(None)
            clock.advance(6.0)
            response = client.call("sleep", seconds=0.0)
            assert response["status"] == 200
            # Success closed the circuit.
            assert client.call("sleep", seconds=0.0)["status"] == 200
            assert naps      # retries actually backed off
            client.close()
        finally:
            server.shutdown(drain=True)

    def test_connect_with_retry_reaches_late_server(self, tmp_path):
        path = str(tmp_path / "late.sock")
        server = ReproServer(api.Session(resident=True),
                             unix_socket=path, debug_ops=True)

        def late_start():
            time.sleep(0.3)
            server.start()

        threading.Thread(target=late_start, daemon=True).start()
        try:
            client = connect_with_retry(path, deadline_s=10.0)
            assert client.health()["status"] == "ok"
            client.close()
        finally:
            server.shutdown(drain=True)

    def test_connect_with_retry_gives_up(self):
        with pytest.raises(OSError):
            connect_with_retry(("127.0.0.1", 1), deadline_s=0.3,
                               poll_s=0.1)


# -- socket hygiene -----------------------------------------------------

class TestSocketTimeouts:
    def test_slow_loris_partial_line_dropped_and_counted(self):
        server = ReproServer(api.Session(resident=True), port=0,
                             idle_timeout_s=0.5)
        address = server.start()
        try:
            loris = socket.create_connection(address, timeout=10)
            loris.sendall(b'{"op": "heal')      # never finishes the line
            deadline = time.monotonic() + 10
            dropped = False
            while time.monotonic() < deadline:
                try:
                    if loris.recv(1024) == b"":
                        dropped = True
                        break
                except socket.timeout:
                    break
            assert dropped, "slow-loris connection was not dropped"
            loris.close()
            with ServeClient(address) as client:
                stats = client.stats()
            assert stats["metrics"]["serve.idle_drops"]["value"] == 1
        finally:
            server.shutdown(drain=True)

    def test_idle_keepalive_connection_survives(self):
        server = ReproServer(api.Session(resident=True), port=0,
                             idle_timeout_s=0.3, debug_ops=True)
        address = server.start()
        try:
            with ServeClient(address) as client:
                assert client.call("sleep", seconds=0.0)["status"] == 200
                time.sleep(0.8)     # idle but with no partial line
                assert client.call("sleep", seconds=0.0)["status"] == 200
        finally:
            server.shutdown(drain=True)


# -- warm-set manifest --------------------------------------------------

class TestWarmManifest:
    def test_manifest_written_and_read_back(self, tmp_path):
        manifest = tmp_path / "warm.json"
        session = api.Session(resident=True)
        server = ReproServer(session, port=0, warm_manifest=manifest)
        address = server.start()
        try:
            with ServeClient(address) as client:
                client.result("regions", names=[NAME], scale=SCALE)
            assert read_warm_manifest(manifest) == [(NAME, SCALE)]
            document = json.loads(manifest.read_text())
            assert document["version"] == 1
        finally:
            server.shutdown(drain=True)
            suite.clear_caches()

    def test_missing_or_corrupt_manifest_reads_empty(self, tmp_path):
        assert read_warm_manifest(tmp_path / "absent.json") == []
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert read_warm_manifest(bad) == []
        wrong_shape = tmp_path / "wrong.json"
        wrong_shape.write_text('{"version": 1, "pairs": "nope"}')
        assert read_warm_manifest(wrong_shape) == []
