"""Tests for the cache hierarchy and port arbitration."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import Hierarchy, PortManager
from repro.cache.lvc import lvc_size_sweep, stack_cache_hit_rate
from repro.trace.records import (OC_LOAD, REGION_DATA, REGION_STACK, Trace,
                                 TraceRecord)

BASE = 0x10000000


def tiny_hierarchy():
    l1 = Cache(CacheConfig("L1", 2 * 32, 1, 32, latency=2))
    l2 = Cache(CacheConfig("L2", 8 * 32, 2, 32, latency=12))
    return Hierarchy(l1, l2, memory_latency=50)


class TestHierarchyLatency:
    def test_l1_hit_latency(self):
        h = tiny_hierarchy()
        h.access(BASE)
        result = h.access(BASE)
        assert result.l1_hit
        assert result.latency == 2

    def test_l2_hit_latency(self):
        h = tiny_hierarchy()
        h.access(BASE)              # fills L1 and L2
        h.access(BASE + 64)         # evicts BASE from 2-line L1 set 0...
        h.access(BASE + 128)
        result = h.access(BASE)
        if not result.l1_hit and result.l2_hit:
            assert result.latency == 2 + 12

    def test_memory_latency(self):
        h = tiny_hierarchy()
        result = h.access(BASE)
        assert not result.l1_hit
        assert not result.l2_hit
        assert result.latency == 2 + 12 + 50

    def test_inclusion_like_refill(self):
        h = tiny_hierarchy()
        h.access(BASE)
        assert h.l1.lookup(BASE)
        assert h.l2.lookup(BASE)


class TestPortManager:
    def test_grants_up_to_port_count(self):
        ports = PortManager(2)
        assert ports.try_acquire(0)
        assert ports.try_acquire(0)
        assert not ports.try_acquire(0)

    def test_resets_each_cycle(self):
        ports = PortManager(1)
        assert ports.try_acquire(0)
        assert not ports.try_acquire(0)
        assert ports.try_acquire(1)

    def test_counters(self):
        ports = PortManager(1)
        ports.try_acquire(0)
        ports.try_acquire(0)
        assert ports.grants == 1
        assert ports.conflicts == 1

    def test_available(self):
        ports = PortManager(3)
        assert ports.available(5) == 3
        ports.try_acquire(5)
        assert ports.available(5) == 2

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            PortManager(0)


class TestStackCacheExperiment:
    def _trace(self, addresses, region=REGION_STACK):
        records = [TraceRecord(0, OC_LOAD, addr=a, region=region)
                   for a in addresses]
        return Trace("t", records)

    def test_only_stack_references_counted(self):
        records = [
            TraceRecord(0, OC_LOAD, addr=0x7FFF0000, region=REGION_STACK),
            TraceRecord(0, OC_LOAD, addr=BASE, region=REGION_DATA),
        ]
        result = stack_cache_hit_rate(Trace("t", records))
        assert result.stack_accesses == 1

    def test_hot_frame_hits(self):
        addresses = [0x7FFF0000 + (i % 8) * 8 for i in range(100)]
        result = stack_cache_hit_rate(self._trace(addresses))
        assert result.hit_rate > 0.9

    def test_size_sweep_monotone_for_nested_working_sets(self):
        # Working set of 8 KB: a 16 KB LVC must do at least as well as
        # 1 KB on re-walks.
        walk = [0x7FFF0000 + i * 8 for i in range(1024)]
        trace = self._trace(walk * 4)
        results = lvc_size_sweep(trace, sizes=(1024, 16384))
        assert results[1].hit_rate >= results[0].hit_rate
