"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import (Cache, CacheConfig, l1_data_cache, l2_cache,
                               local_variable_cache)

BASE = 0x10000000


def small_cache(assoc=2, sets=4, line=32):
    return Cache(CacheConfig("test", assoc * sets * line, assoc, line))


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 2, 32)     # not divisible
        with pytest.raises(ValueError):
            CacheConfig("bad", 96 * 3, 3, 32)   # 3 sets: not power of two
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, 1, 32)

    def test_n_sets(self):
        config = CacheConfig("c", 64 * 1024, 2, 32)
        assert config.n_sets == 1024

    def test_paper_configurations(self):
        assert l1_data_cache().config.size_bytes == 64 * 1024
        assert l1_data_cache().config.assoc == 2
        assert l2_cache().config.size_bytes == 512 * 1024
        lvc = local_variable_cache()
        assert lvc.config.size_bytes == 4 * 1024
        assert lvc.config.assoc == 1


class TestHitMissBehavior:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(BASE) is False
        assert cache.access(BASE) is True

    def test_same_line_different_words_hit(self):
        cache = small_cache(line=32)
        cache.access(BASE)
        assert cache.access(BASE + 24) is True

    def test_adjacent_lines_are_separate(self):
        cache = small_cache(line=32)
        cache.access(BASE)
        assert cache.access(BASE + 32) is False

    def test_lru_eviction(self):
        cache = small_cache(assoc=2, sets=1)
        a, b, c = BASE, BASE + 32, BASE + 64
        cache.access(a)
        cache.access(b)
        cache.access(c)              # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_lru_promotion_on_hit(self):
        cache = small_cache(assoc=2, sets=1)
        a, b, c = BASE, BASE + 32, BASE + 64
        cache.access(a)
        cache.access(b)
        cache.access(a)              # a becomes MRU
        cache.access(c)              # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(BASE, is_write=True)
        cache.access(BASE + 32)
        assert cache.stats.writebacks == 1
        cache.access(BASE + 64)
        assert cache.stats.writebacks == 1   # clean line: no writeback

    def test_write_hit_marks_dirty(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(BASE)                  # clean fill
        cache.access(BASE, is_write=True)   # dirtied by hit
        cache.access(BASE + 32)
        assert cache.stats.writebacks == 1

    def test_lookup_does_not_mutate(self):
        cache = small_cache()
        assert cache.lookup(BASE) is False
        assert cache.stats.accesses == 0
        cache.access(BASE)
        assert cache.lookup(BASE) is True
        assert cache.stats.accesses == 1

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(BASE)
        cache.invalidate_all()
        assert cache.access(BASE) is False

    def test_stats_rates(self):
        cache = small_cache()
        cache.access(BASE)
        cache.access(BASE)
        cache.access(BASE)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=300))
    def test_resident_lines_bounded_by_capacity(self, line_indexes):
        cache = small_cache(assoc=2, sets=4)
        for index in line_indexes:
            cache.access(BASE + index * 32)
        assert cache.resident_lines <= 8

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    def test_working_set_within_capacity_never_re_misses(self, accesses):
        # 32 distinct lines fit exactly in a 32-line fully-used cache.
        cache = Cache(CacheConfig("c", 32 * 32, 4, 32))
        seen = set()
        for index in accesses:
            hit = cache.access(BASE + index * 32)
            assert hit == (index in seen)
            seen.add(index)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.booleans()), max_size=200))
    def test_hits_plus_misses_equals_accesses(self, ops):
        cache = small_cache()
        for index, is_write in ops:
            cache.access(BASE + index * 32, is_write)
        assert cache.stats.hits + cache.stats.misses == len(ops)
