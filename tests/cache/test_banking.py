"""Tests for interleaved-bank arbitration."""

import pytest

from repro.cache.hierarchy import BankManager


class TestBankManager:
    def test_distinct_banks_grant_in_parallel(self):
        banks = BankManager(4, line_size=32)
        # Lines 0..3 map to banks 0..3.
        for i in range(4):
            assert banks.try_acquire(0, 0x10000000 + i * 32)

    def test_same_bank_conflicts(self):
        banks = BankManager(4, line_size=32)
        assert banks.try_acquire(0, 0x10000000)
        # Same line (hence same bank) in the same cycle conflicts.
        assert not banks.try_acquire(0, 0x10000000)
        # Four banks apart -> same bank again.
        assert not banks.try_acquire(0, 0x10000000 + 4 * 32)

    def test_conflicts_clear_each_cycle(self):
        banks = BankManager(2, line_size=32)
        assert banks.try_acquire(0, 0x10000000)
        assert not banks.try_acquire(0, 0x10000000)
        assert banks.try_acquire(1, 0x10000000)

    def test_same_line_words_share_bank(self):
        banks = BankManager(8, line_size=32)
        assert banks.try_acquire(0, 0x10000000)
        assert not banks.try_acquire(0, 0x10000018)   # same 32B line

    def test_counters(self):
        banks = BankManager(2, line_size=32)
        banks.try_acquire(0, 0x10000000)
        banks.try_acquire(0, 0x10000000)
        assert banks.grants == 1
        assert banks.conflicts == 1

    def test_available(self):
        banks = BankManager(4, line_size=32)
        assert banks.available(0) == 4
        banks.try_acquire(0, 0x10000000)
        assert banks.available(0) == 3

    def test_available_with_addr_is_exact(self):
        """Regression: the addressless count is only an upper bound - a
        same-bank requester cannot use any of the "free" slots.  The
        address-aware form must answer for that specific requester."""
        banks = BankManager(4, line_size=32)
        addr = 0x10000000
        assert banks.try_acquire(0, addr)
        # Three banks remain free in aggregate...
        assert banks.available(0) == 3
        # ...but none is usable by a same-bank requester.
        assert banks.available(0, addr) == 0
        assert banks.available(0, addr + 4 * 32) == 0    # same bank
        assert banks.available(0, addr + 32) == 1        # next bank
        # A fresh cycle clears the conflict.
        assert banks.available(1, addr) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BankManager(0)
        with pytest.raises(ValueError):
            BankManager(4, line_size=33)


class TestBankedTiming:
    def test_banked_never_beats_ported(self):
        from repro.timing.config import conventional_config
        from repro.timing.machine import simulate
        from repro.trace.records import (MODE_GLOBAL, OC_LOAD, REGION_DATA,
                                         Trace, TraceRecord)
        # Pathological case: every access in the same bank.
        records = [TraceRecord(0x400100, OC_LOAD, dst=0, src1=8,
                               addr=0x10000000 + (i % 4) * 4 * 32,
                               mode=MODE_GLOBAL, region=REGION_DATA)
                   for i in range(200)]
        trace = Trace("t", records)
        ported = simulate(trace, conventional_config(4, l1_latency=2))
        banked = simulate(trace, conventional_config(
            4, l1_latency=2, port_policy="banks"))
        assert banked.cycles >= ported.cycles

    def test_bank_spread_traffic_matches_ported(self):
        from repro.timing.config import conventional_config
        from repro.timing.machine import simulate
        from repro.trace.records import (MODE_GLOBAL, OC_LOAD, REGION_DATA,
                                         Trace, TraceRecord)
        # Perfectly interleaved traffic: banking costs (almost) nothing.
        records = [TraceRecord(0x400100, OC_LOAD, dst=0, src1=8,
                               addr=0x10000000 + (i % 4) * 32,
                               mode=MODE_GLOBAL, region=REGION_DATA)
                   for i in range(200)]
        trace = Trace("t", records)
        ported = simulate(trace, conventional_config(4, l1_latency=2))
        banked = simulate(trace, conventional_config(
            4, l1_latency=2, port_policy="banks"))
        assert banked.cycles <= ported.cycles * 1.3

    def test_policy_validation(self):
        from repro.timing.config import MachineConfig
        with pytest.raises(ValueError):
            MachineConfig(l1_port_policy="quantum").validate()
