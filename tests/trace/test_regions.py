"""Tests for the Figure-2 region classifier."""

from repro.trace.records import (OC_LOAD, OC_STORE, REGION_DATA,
                                 REGION_HEAP, REGION_STACK, Trace,
                                 TraceRecord)
from repro.trace.regions import (MULTI_REGION_CLASSES, REGION_CLASSES,
                                 RegionClassifier, region_breakdown)


def mem(pc, region, load=True):
    return TraceRecord(pc, OC_LOAD if load else OC_STORE, addr=0x10000000,
                       region=region)


def non_mem(pc):
    return TraceRecord(pc, 0)


class TestRegionClassifier:
    def test_single_region_classes(self):
        classifier = RegionClassifier()
        classifier.observe(mem(8, REGION_DATA))
        classifier.observe(mem(16, REGION_HEAP))
        classifier.observe(mem(24, REGION_STACK))
        assert classifier.class_of_pc(8) == "D"
        assert classifier.class_of_pc(16) == "H"
        assert classifier.class_of_pc(24) == "S"

    def test_multi_region_class_accumulates(self):
        classifier = RegionClassifier()
        classifier.observe(mem(8, REGION_DATA))
        classifier.observe(mem(8, REGION_STACK))
        assert classifier.class_of_pc(8) == "D/S"
        classifier.observe(mem(8, REGION_HEAP))
        assert classifier.class_of_pc(8) == "D/H/S"

    def test_non_memory_records_ignored(self):
        classifier = RegionClassifier()
        classifier.observe(non_mem(8))
        assert classifier.breakdown().total_static == 0

    def test_breakdown_counts(self):
        records = [mem(8, REGION_DATA)] * 5 + [mem(16, REGION_STACK)] * 3
        records.append(mem(16, REGION_DATA))
        breakdown = region_breakdown(Trace("t", records))
        assert breakdown.static_counts["D"] == 1
        assert breakdown.static_counts["D/S"] == 1
        assert breakdown.dynamic_counts["D"] == 5
        assert breakdown.dynamic_counts["D/S"] == 4

    def test_fractions_sum_to_one(self):
        records = [mem(8, REGION_DATA), mem(16, REGION_HEAP),
                   mem(24, REGION_STACK), mem(24, REGION_HEAP)]
        breakdown = region_breakdown(Trace("t", records))
        static_total = sum(breakdown.static_fraction(c)
                           for c in REGION_CLASSES)
        dynamic_total = sum(breakdown.dynamic_fraction(c)
                            for c in REGION_CLASSES)
        assert abs(static_total - 1.0) < 1e-12
        assert abs(dynamic_total - 1.0) < 1e-12

    def test_multi_region_fraction(self):
        records = [mem(8, REGION_DATA), mem(8, REGION_STACK),
                   mem(16, REGION_HEAP)]
        breakdown = region_breakdown(Trace("t", records))
        assert abs(breakdown.multi_region_static_fraction - 0.5) < 1e-12

    def test_single_region_pcs_for_hints(self):
        classifier = RegionClassifier()
        classifier.observe(mem(8, REGION_DATA))
        classifier.observe(mem(16, REGION_STACK))
        classifier.observe(mem(24, REGION_DATA))
        classifier.observe(mem(24, REGION_STACK))   # multi -> excluded
        tags = classifier.single_region_pcs()
        assert tags == {8: False, 16: True}

    def test_class_constants_consistent(self):
        assert set(MULTI_REGION_CLASSES) < set(REGION_CLASSES)
        assert len(REGION_CLASSES) == 7
