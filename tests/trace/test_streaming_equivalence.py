"""Shard-streamed reductions vs. the in-RAM columnar path.

Every analysis that accepts a :class:`ShardedTrace` - the Figure 2
region breakdown, single-region PC hints, Table 2 window statistics,
and the full predictor replay - must produce results *identical* to
the monolithic in-RAM computation at any shard size, including shard
boundaries that split a region run, a sliding window, or an ARPT
entry's counter history.  Fixed seeds pin the carry-state contracts;
hypothesis hunts boundary cases (empty traces, shards smaller than
the window, single-element shards).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictor.evaluate import (evaluate_scheme,
                                      occupancy_by_context)
from repro.predictor.hints import hints_from_trace
from repro.predictor.schemes import ALL_SCHEMES
from repro.trace.records import (OC_BRANCH, OC_IALU, OC_LOAD, OC_STORE,
                                 REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)
from repro.trace.regions import (region_breakdown, single_region_pcs)
from repro.trace.shards import shard_trace
from repro.trace.windows import window_stats

_REGIONS = (REGION_DATA, REGION_HEAP, REGION_STACK)

#: Shard sizes chosen to split runs/windows every way: single-element
#: shards, a prime, one bigger than most test traces.
SHARD_SIZES = (1, 7, 100, 10_000)


def _random_trace(seed: int, n: int = 600) -> Trace:
    """Mixed trace with few PCs and clustered regions, so region runs
    and ARPT entries actually straddle shard boundaries."""
    rng = random.Random(seed)
    records = []
    region = rng.choice(_REGIONS)
    for _ in range(n):
        draw = rng.random()
        if draw < 0.12:
            records.append(TraceRecord(0x400800 + 8 * rng.randrange(4),
                                       OC_BRANCH,
                                       taken=rng.random() < 0.5))
        elif draw < 0.24:
            records.append(TraceRecord(0x400000 + 8 * rng.randrange(8),
                                       OC_IALU, dst=rng.randrange(32),
                                       value=rng.randrange(-50, 50)))
        else:
            if rng.random() < 0.1:   # sticky region -> long runs
                region = rng.choice(_REGIONS)
            records.append(TraceRecord(
                0x400100 + 8 * rng.randrange(6),
                OC_LOAD if rng.random() < 0.7 else OC_STORE,
                addr=0x10000000 + 8 * rng.randrange(64),
                mode=rng.choice((0, 1, 2, 3, 3)),
                region=region,
                ra=0x400008 + 8 * rng.randrange(3)))
    return Trace(f"stream{seed}", records)


class TestRegionStreaming:
    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    @pytest.mark.parametrize("seed", range(3))
    def test_breakdown_identical(self, seed, shard_rows):
        trace = _random_trace(seed)
        assert region_breakdown(shard_trace(trace, shard_rows)) \
            == region_breakdown(trace)

    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    def test_single_region_pcs_identical(self, shard_rows):
        trace = _random_trace(11)
        assert single_region_pcs(shard_trace(trace, shard_rows)) \
            == single_region_pcs(trace)

    @settings(max_examples=20, deadline=None)
    @given(regions=st.lists(st.sampled_from((-1,) + _REGIONS),
                            max_size=60),
           shard_rows=st.integers(min_value=1, max_value=20))
    def test_property_breakdown(self, regions, shard_rows):
        records = [
            TraceRecord(0x400000, OC_IALU) if region < 0
            else TraceRecord(0x400100, OC_LOAD, addr=0x10000000,
                             mode=3, region=region)
            for region in regions]
        trace = Trace("prop", records)
        sharded = shard_trace(trace, shard_rows)
        assert region_breakdown(sharded) == region_breakdown(trace)
        assert single_region_pcs(sharded) == single_region_pcs(trace)


class TestWindowStreaming:
    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    @pytest.mark.parametrize("window", (1, 4, 32, 64))
    def test_window_stats_identical(self, shard_rows, window):
        trace = _random_trace(21)
        assert window_stats(shard_trace(trace, shard_rows), window) \
            == window_stats(trace, window)

    def test_shards_smaller_than_window(self):
        # Every shard (1 row) is smaller than the window: all windows
        # straddle boundaries and come from carry reconstruction.
        trace = _random_trace(22, n=200)
        assert window_stats(shard_trace(trace, 1), 64) \
            == window_stats(trace, 64)

    @settings(max_examples=20, deadline=None)
    @given(regions=st.lists(st.sampled_from((-1,) + _REGIONS),
                            max_size=50),
           window=st.integers(min_value=1, max_value=12),
           shard_rows=st.integers(min_value=1, max_value=15))
    def test_property_windows(self, regions, window, shard_rows):
        records = [
            TraceRecord(0x400000, OC_IALU) if region < 0
            else TraceRecord(0x400100, OC_LOAD, addr=0x10000000,
                             mode=1, region=region)
            for region in regions]
        trace = Trace("prop", records)
        assert window_stats(shard_trace(trace, shard_rows), window) \
            == window_stats(trace, window)


class TestPredictorStreaming:
    @pytest.mark.parametrize("shard_rows", SHARD_SIZES)
    @pytest.mark.parametrize("scheme",
                             sorted(s.name for s in ALL_SCHEMES))
    def test_every_scheme_identical(self, scheme, shard_rows):
        trace = _random_trace(31)
        assert evaluate_scheme(shard_trace(trace, shard_rows), scheme) \
            == evaluate_scheme(trace, scheme)

    @pytest.mark.parametrize("shard_rows", (1, 7, 100))
    def test_finite_table_identical(self, shard_rows):
        # Finite capacity makes entry evictions interact with the
        # cross-shard ARPT state handoff.
        trace = _random_trace(32)
        for scheme in ("1bit-hybrid", "2bit-hybrid"):
            assert evaluate_scheme(shard_trace(trace, shard_rows),
                                   scheme, table_size=16) \
                == evaluate_scheme(trace, scheme, table_size=16)

    @pytest.mark.parametrize("shard_rows", (1, 13, 500))
    def test_hints_and_occupancy_identical(self, shard_rows):
        trace = _random_trace(33)
        sharded = shard_trace(trace, shard_rows)
        hints = hints_from_trace(trace)
        assert evaluate_scheme(sharded, "1bit-hybrid", hints=hints) \
            == evaluate_scheme(trace, "1bit-hybrid", hints=hints)
        assert occupancy_by_context(sharded) \
            == occupancy_by_context(trace)

    @pytest.mark.parametrize("gbh_bits,cid_bits",
                             ((0, 0), (3, 4), (8, 24)))
    def test_context_splits_identical(self, gbh_bits, cid_bits):
        # GBH carry handoff: shards with zero in-chunk branches must
        # still thread the outcome history forward.
        trace = _random_trace(34)
        for shard_rows in (1, 7, 997):
            assert evaluate_scheme(shard_trace(trace, shard_rows),
                                   "1bit-hybrid", gbh_bits=gbh_bits,
                                   cid_bits=cid_bits) \
                == evaluate_scheme(trace, "1bit-hybrid",
                                   gbh_bits=gbh_bits,
                                   cid_bits=cid_bits)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           shard_rows=st.integers(min_value=1, max_value=25))
    def test_property_replay(self, seed, shard_rows):
        trace = _random_trace(seed, n=120)
        sharded = shard_trace(trace, shard_rows)
        for scheme in ("2bit-hybrid", "1bit-gbh"):
            assert evaluate_scheme(sharded, scheme) \
                == evaluate_scheme(trace, scheme)
