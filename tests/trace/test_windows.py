"""Tests for the sliding-window bandwidth profiler (Table 2)."""

import math

from hypothesis import given, strategies as st

from repro.trace.records import (OC_IALU, OC_LOAD, REGION_DATA, REGION_HEAP,
                                 REGION_STACK, Trace, TraceRecord)
from repro.trace.windows import SlidingWindowProfiler, window_stats


def mem(region):
    return TraceRecord(0, OC_LOAD, addr=0x10000000, region=region)


def alu():
    return TraceRecord(0, OC_IALU)


def brute_force(records, window, region):
    """Reference implementation: recount every window from scratch."""
    counts = []
    for end in range(window, len(records) + 1):
        chunk = records[end - window:end]
        counts.append(sum(1 for r in chunk
                          if r.is_mem and r.region == region))
    if not counts:
        return 0.0, 0.0
    mean = sum(counts) / len(counts)
    var = sum((c - mean) ** 2 for c in counts) / len(counts)
    return mean, math.sqrt(var)


class TestSlidingWindow:
    def test_all_memory_single_region(self):
        records = [mem(REGION_DATA) for _ in range(64)]
        stats = window_stats(Trace("t", records), 32)
        assert stats.data.mean == 32.0
        assert stats.data.std == 0.0
        assert stats.heap.mean == 0.0

    def test_no_samples_before_window_fills(self):
        records = [mem(REGION_DATA) for _ in range(10)]
        stats = window_stats(Trace("t", records), 32)
        assert stats.data.samples == 0
        assert stats.data.mean == 0.0

    def test_alternating_pattern(self):
        records = []
        for _ in range(50):
            records.append(mem(REGION_STACK))
            records.append(alu())
        stats = window_stats(Trace("t", records), 10)
        assert abs(stats.stack.mean - 5.0) < 1e-9

    def test_strictly_bursty_criterion(self):
        # A long quiet stretch followed by a dense burst -> std > mean.
        records = [alu()] * 300 + [mem(REGION_HEAP)] * 20 + [alu()] * 300
        stats = window_stats(Trace("t", records), 32)
        assert stats.heap.strictly_bursty

    def test_steady_stream_not_bursty(self):
        records = [mem(REGION_DATA), alu()] * 200
        stats = window_stats(Trace("t", records), 32)
        assert not stats.data.strictly_bursty

    def test_window_must_be_positive(self):
        import pytest
        with pytest.raises(ValueError):
            SlidingWindowProfiler(0)

    @given(st.lists(st.sampled_from([REGION_DATA, REGION_HEAP,
                                     REGION_STACK, -1]),
                    min_size=0, max_size=200),
           st.sampled_from([4, 8, 32]))
    def test_matches_brute_force(self, pattern, window):
        records = [mem(code) if code >= 0 else alu() for code in pattern]
        stats = window_stats(Trace("t", records), window)
        for region, got in ((REGION_DATA, stats.data),
                            (REGION_HEAP, stats.heap),
                            (REGION_STACK, stats.stack)):
            mean, std = brute_force(records, window, region)
            assert abs(got.mean - mean) < 1e-9
            assert abs(got.std - std) < 1e-9
