"""Vectorised profiler paths vs. the retained scalar references.

The Figure 2 breakdown and Table 2 window statistics are computed with
NumPy reductions over the columnar view; ``RegionClassifier`` and
``SlidingWindowProfiler`` remain the record-at-a-time ground truth.
These tests pin the fast paths to the references on random traces
(hypothesis plus fixed seeds) and on a real compiled workload.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import run_source
from repro.trace.records import (MODE_OTHER, MODE_STACK, OC_BRANCH,
                                 OC_IALU, OC_LOAD, OC_STORE, REGION_DATA,
                                 REGION_HEAP, REGION_STACK, Trace,
                                 TraceRecord)
from repro.trace.regions import (RegionClassifier, region_breakdown,
                                 single_region_pcs)
from repro.trace.windows import (SlidingWindowProfiler, window_stats)

_REGIONS = (REGION_DATA, REGION_HEAP, REGION_STACK)


def _random_trace(seed: int, n: int = 300) -> Trace:
    """A mixed trace with deliberately few distinct PCs, so multiple
    region classes and PC collisions actually occur."""
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        draw = rng.random()
        if draw < 0.15:
            records.append(TraceRecord(0x400800 + 8 * rng.randrange(4),
                                       OC_BRANCH,
                                       taken=rng.random() < 0.5))
        elif draw < 0.3:
            records.append(TraceRecord(0x400000 + 8 * rng.randrange(8),
                                       OC_IALU, dst=rng.randrange(32),
                                       value=rng.randrange(-50, 50)))
        else:
            records.append(TraceRecord(
                0x400100 + 8 * rng.randrange(6),
                OC_LOAD if rng.random() < 0.7 else OC_STORE,
                addr=0x10000000 + 8 * rng.randrange(64),
                mode=rng.choice((0, 1, 2, 3, 3)),
                region=rng.choice(_REGIONS),
                ra=0x400008 + 8 * rng.randrange(3)))
    return Trace(f"rand{seed}", records)


@pytest.fixture(scope="module")
def real_trace():
    return run_source("""
        int g[32];
        int helper(int* p, int i) { return p[i] + i; }
        int main() {
          int* h = (int*) malloc(16);
          int local[4];
          int t = 0;
          for (int i = 0; i < 32; i += 1) {
            g[i] = i;
            if (i < 16) h[i] = i * 3;
            local[i % 4] = i;
            t += helper(g, i) + local[i % 4];
          }
          print_int(t);
          free(h);
          return 0;
        }
    """, "vec-equiv-real")


def _reference_breakdown(trace):
    classifier = RegionClassifier()
    classifier.observe_trace(trace.records)
    return classifier


class TestRegionBreakdownEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_fixed_seed_traces(self, seed):
        trace = _random_trace(seed)
        reference = _reference_breakdown(trace).breakdown(trace.name)
        assert region_breakdown(trace) == reference

    def test_real_trace(self, real_trace):
        reference = _reference_breakdown(real_trace)\
            .breakdown(real_trace.name)
        assert region_breakdown(real_trace) == reference

    def test_empty_trace(self):
        assert region_breakdown(Trace("empty")).total_dynamic == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_single_region_pcs(self, seed):
        trace = _random_trace(seed)
        assert single_region_pcs(trace) \
            == _reference_breakdown(trace).single_region_pcs()

    def test_single_region_pcs_real(self, real_trace):
        assert single_region_pcs(real_trace) \
            == _reference_breakdown(real_trace).single_region_pcs()

    @settings(max_examples=25, deadline=None)
    @given(choices=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.sampled_from(_REGIONS),
                  st.booleans()), max_size=60))
    def test_property_random_mem_traces(self, choices):
        records = [TraceRecord(0x400100 + 8 * pc_slot,
                               OC_LOAD if is_load else OC_STORE,
                               addr=0x10000000, mode=MODE_OTHER,
                               region=region)
                   for pc_slot, region, is_load in choices]
        trace = Trace("prop", records)
        reference = _reference_breakdown(trace)
        assert region_breakdown(trace) == reference.breakdown("prop")
        assert single_region_pcs(trace) == reference.single_region_pcs()


def _reference_windows(trace, window):
    profiler = SlidingWindowProfiler(window)
    profiler.observe_trace(trace.records)
    return profiler.result(trace.name)


class TestWindowStatsEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("window", (1, 4, 32))
    def test_fixed_seed_traces(self, seed, window):
        trace = _random_trace(seed)
        assert window_stats(trace, window) \
            == _reference_windows(trace, window)

    @pytest.mark.parametrize("window", (1, 16, 64, 128))
    def test_real_trace(self, real_trace, window):
        assert window_stats(real_trace, window) \
            == _reference_windows(real_trace, window)

    def test_window_larger_than_trace(self):
        trace = _random_trace(0, n=10)
        result = window_stats(trace, 64)
        assert result == _reference_windows(trace, 64)
        assert result.data.samples == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            window_stats(_random_trace(0, n=4), 0)

    @settings(max_examples=25, deadline=None)
    @given(regions=st.lists(st.sampled_from((-1,) + _REGIONS),
                            max_size=80),
           window=st.integers(min_value=1, max_value=12))
    def test_property_random_sequences(self, regions, window):
        records = []
        for region in regions:
            if region < 0:
                records.append(TraceRecord(0x400000, OC_IALU))
            else:
                records.append(TraceRecord(0x400100, OC_LOAD,
                                           addr=0x10000000,
                                           mode=MODE_STACK,
                                           region=region))
        trace = Trace("prop", records)
        assert window_stats(trace, window) \
            == _reference_windows(trace, window)
