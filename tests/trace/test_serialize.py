"""Tests for trace persistence."""

import pytest

from repro.cpu import run_source
from repro.predictor import evaluate_scheme
from repro.trace.serialize import load_trace, save_trace


@pytest.fixture(scope="module")
def trace():
    return run_source("""
        int g[16];
        int main() {
          int* h = (int*) malloc(8);
          float f = 1.5;
          int t = 0;
          for (int i = 0; i < 16; i += 1) {
            g[i] = i;
            if (i < 8) h[i] = i * 2;
            t += g[i];
          }
          print_int(t);
          print_float(f);
          free(h);
          return 0;
        }
    """, "serialize-me")


class TestRoundTrip:
    def test_records_identical(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for before, after in zip(trace.records, loaded.records):
            for field in ("pc", "op_class", "dst", "src1", "src2",
                          "addr", "mode", "region", "taken", "ra",
                          "value"):
                assert getattr(before, field) == getattr(after, field), \
                    field

    def test_metadata_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.output == trace.output
        assert loaded.exit_code == trace.exit_code

    def test_loaded_trace_usable_by_predictor(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = evaluate_scheme(trace, "1bit-hybrid")
        replayed = evaluate_scheme(loaded, "1bit-hybrid")
        assert original.accuracy == replayed.accuracy
        assert original.occupancy == replayed.occupancy

    def test_compression_is_effective(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        # ~50 bytes of columns per record before compression; the file
        # should be far smaller than that.
        assert path.stat().st_size < len(trace) * 25

    def test_version_check(self, trace, tmp_path):
        import json

        import numpy as np
        path = tmp_path / "bad.npz"
        meta = json.dumps({"version": 99, "name": "x", "output": [],
                           "exit_code": 0})
        np.savez_compressed(
            str(path),
            meta=np.frombuffer(meta.encode(), dtype=np.uint8))
        with pytest.raises(ValueError):
            load_trace(path)
