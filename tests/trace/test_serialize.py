"""Tests for trace persistence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import run_source
from repro.predictor import evaluate_scheme
from repro.trace.records import (OC_BRANCH, OC_IALU, OC_LOAD, Trace,
                                 TraceRecord)
from repro.trace.serialize import (_NO_VALUE, TraceIntegrityError,
                                   load_trace, save_trace)

_FIELDS = ("pc", "op_class", "dst", "src1", "src2", "addr", "mode",
           "region", "taken", "ra", "value")


def _assert_same_trace(before, after):
    assert after.name == before.name
    assert after.output == before.output
    assert after.exit_code == before.exit_code
    assert len(after) == len(before)
    for b, a in zip(before.records, after.records):
        for field in _FIELDS:
            assert getattr(b, field) == getattr(a, field), field


@pytest.fixture(scope="module")
def trace():
    return run_source("""
        int g[16];
        int main() {
          int* h = (int*) malloc(8);
          float f = 1.5;
          int t = 0;
          for (int i = 0; i < 16; i += 1) {
            g[i] = i;
            if (i < 8) h[i] = i * 2;
            t += g[i];
          }
          print_int(t);
          print_float(f);
          free(h);
          return 0;
        }
    """, "serialize-me")


class TestRoundTrip:
    def test_records_identical(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for before, after in zip(trace.records, loaded.records):
            for field in ("pc", "op_class", "dst", "src1", "src2",
                          "addr", "mode", "region", "taken", "ra",
                          "value"):
                assert getattr(before, field) == getattr(after, field), \
                    field

    def test_metadata_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.output == trace.output
        assert loaded.exit_code == trace.exit_code

    def test_loaded_trace_usable_by_predictor(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = evaluate_scheme(trace, "1bit-hybrid")
        replayed = evaluate_scheme(loaded, "1bit-hybrid")
        assert original.accuracy == replayed.accuracy
        assert original.occupancy == replayed.occupancy

    def test_compression_is_effective(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        # ~50 bytes of columns per record before compression; the file
        # should be far smaller than that.
        assert path.stat().st_size < len(trace) * 25

    def test_unsuffixed_path_round_trips(self, trace, tmp_path):
        """Regression: ``np.savez_compressed`` used to append ``.npz``
        to suffixless names, so loading the caller's exact path raised
        FileNotFoundError."""
        path = tmp_path / "trace-without-extension"
        save_trace(trace, path)
        assert path.exists()
        assert not (tmp_path / "trace-without-extension.npz").exists()
        _assert_same_trace(trace, load_trace(path))

    def test_unusual_suffix_round_trips(self, trace, tmp_path):
        path = tmp_path / "trace.bin"
        save_trace(trace, path)
        assert path.exists()
        _assert_same_trace(trace, load_trace(path))

    def test_version_check(self, trace, tmp_path):
        import json

        import numpy as np
        path = tmp_path / "bad.npz"
        meta = json.dumps({"version": 99, "name": "x", "output": [],
                           "exit_code": 0})
        np.savez_compressed(
            str(path),
            meta=np.frombuffer(meta.encode(), dtype=np.uint8))
        with pytest.raises(TraceIntegrityError):
            load_trace(path)


def _rewrite(path, mutate):
    """Round-trip the raw npz payload through ``mutate`` - simulating
    on-disk corruption that still unzips cleanly."""
    import json

    import numpy as np
    with np.load(str(path)) as data:
        payload = {key: data[key] for key in data.files}
    meta = json.loads(bytes(payload.pop("meta")).decode("utf-8"))
    mutate(meta, payload)
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **payload)


class TestIntegrity:
    """The embedded CRC-32 catches corruption that still deserialises."""

    def test_integrity_error_is_a_value_error(self):
        assert issubclass(TraceIntegrityError, ValueError)

    def test_intact_file_loads(self, trace, tmp_path):
        path = tmp_path / "ok.npz"
        save_trace(trace, path)
        _rewrite(path, lambda meta, payload: None)   # no-op rewrite
        _assert_same_trace(trace, load_trace(path))

    def test_tampered_column_detected(self, trace, tmp_path):
        path = tmp_path / "bitrot.npz"
        save_trace(trace, path)

        def flip(meta, payload):
            payload["addr"] = payload["addr"].copy()
            payload["addr"][0] ^= 1

        _rewrite(path, flip)
        with pytest.raises(TraceIntegrityError, match="checksum"):
            load_trace(path)

    def test_tampered_identity_detected(self, trace, tmp_path):
        path = tmp_path / "renamed.npz"
        save_trace(trace, path)
        _rewrite(path, lambda meta, payload:
                 meta.__setitem__("name", "impostor"))
        with pytest.raises(TraceIntegrityError, match="checksum"):
            load_trace(path)

    def test_missing_checksum_detected(self, trace, tmp_path):
        path = tmp_path / "unchecked.npz"
        save_trace(trace, path)
        _rewrite(path, lambda meta, payload: meta.pop("checksum"))
        with pytest.raises(TraceIntegrityError, match="checksum"):
            load_trace(path)


def _record(value=None, **overrides):
    defaults = dict(pc=0x400100, op_class=OC_IALU, dst=3, src1=4,
                    src2=5, addr=0, mode=-1, region=-1, taken=False,
                    ra=0, value=value)
    defaults.update(overrides)
    return TraceRecord(**defaults)


class TestSentinelHandling:
    """Regression: result values near the None sentinel must survive a
    round-trip, and None must stay None."""

    def test_values_near_sentinel_round_trip(self, tmp_path):
        sentinel = int(_NO_VALUE)
        values = [sentinel + 1, sentinel + 2, -1, 0, 1, None,
                  -(2 ** 63), 2 ** 63 - 1]
        trace = Trace("near-sentinel", [_record(value=v) for v in values])
        path = tmp_path / "near.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [r.value for r in loaded.records] == values

    def test_none_round_trips_as_none(self, tmp_path):
        trace = Trace("none", [_record(value=None), _record(value=7)])
        path = tmp_path / "none.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records[0].value is None
        assert loaded.records[1].value == 7

    def test_sentinel_valued_record_rejected_at_save(self, tmp_path):
        trace = Trace("collide", [_record(value=int(_NO_VALUE))])
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "collide.npz")

    def test_empty_trace_round_trips(self, tmp_path):
        trace = Trace("empty", [], output=[1, 2.5, 3], exit_code=9)
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"
        assert loaded.output == [1, 2.5, 3]
        assert loaded.exit_code == 9


_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_RECORDS = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=2 ** 62),
    op_class=st.sampled_from((OC_IALU, OC_LOAD, OC_BRANCH)),
    dst=st.integers(min_value=-1, max_value=63),
    src1=st.integers(min_value=-1, max_value=63),
    src2=st.integers(min_value=-1, max_value=63),
    addr=st.integers(min_value=0, max_value=2 ** 62),
    mode=st.integers(min_value=-1, max_value=3),
    region=st.integers(min_value=-1, max_value=2),
    taken=st.booleans(),
    ra=st.integers(min_value=0, max_value=2 ** 62),
    value=st.one_of(
        st.none(),
        _INT64.filter(lambda v: v != int(_NO_VALUE))),
)


class TestRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(_RECORDS, max_size=40),
           exit_code=st.integers(min_value=0, max_value=255))
    def test_random_traces_round_trip(self, records, exit_code,
                                      tmp_path_factory):
        trace = Trace("prop", records, output=[len(records)],
                      exit_code=exit_code)
        path = tmp_path_factory.mktemp("ser") / "prop.npz"
        save_trace(trace, path)
        _assert_same_trace(trace, load_trace(path))
