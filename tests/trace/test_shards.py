"""Sharded trace storage: roundtrip, knobs, integrity, cache bounds.

Covers the shard writer/manifest/iterator layer itself plus its trace
cache integration: per-shard CRC verification quarantining the whole
entry (shards are only valid together), regeneration after corruption,
and the ``REPRO_TRACE_CACHE_MAX_BYTES`` LRU bound evicting whole shard
sets atomically.
"""

import json
import random

import numpy as np
import pytest

from repro.trace import cache as cache_mod
from repro.trace import shards
from repro.trace.cache import TraceCache
from repro.trace.records import (OC_BRANCH, OC_IALU, OC_LOAD, OC_STORE,
                                 REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)
from repro.trace.serialize import TraceIntegrityError
from repro.trace.shards import (MemoryShardWriter, ShardedTrace,
                                ShardWriter, load_sharded, shard_trace)

_REGIONS = (REGION_DATA, REGION_HEAP, REGION_STACK)


def _random_trace(seed: int, n: int = 400) -> Trace:
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        draw = rng.random()
        if draw < 0.15:
            records.append(TraceRecord(0x400800 + 8 * rng.randrange(4),
                                       OC_BRANCH,
                                       taken=rng.random() < 0.5))
        elif draw < 0.3:
            records.append(TraceRecord(0x400000 + 8 * rng.randrange(8),
                                       OC_IALU, dst=rng.randrange(32),
                                       value=rng.randrange(-50, 50)))
        else:
            records.append(TraceRecord(
                0x400100 + 8 * rng.randrange(6),
                OC_LOAD if rng.random() < 0.7 else OC_STORE,
                addr=0x10000000 + 8 * rng.randrange(64),
                mode=rng.choice((0, 1, 2, 3, 3)),
                region=rng.choice(_REGIONS),
                ra=0x400008 + 8 * rng.randrange(3)))
    trace = Trace(f"rand{seed}", records)
    trace.output = [1, 2, 3]
    trace.exit_code = 7
    return trace


def _columns_equal(a, b) -> bool:
    from repro.trace.columns import COLUMN_DTYPES
    return all(np.array_equal(getattr(a, name), getattr(b, name))
               for name, _ in COLUMN_DTYPES) \
        and np.array_equal(a.value, b.value) \
        and np.array_equal(a.value_valid, b.value_valid)


class TestShardRoundtrip:
    @pytest.mark.parametrize("shard_rows", (1, 7, 64, 1000))
    def test_disk_roundtrip_materializes_identically(self, tmp_path,
                                                     shard_rows):
        trace = _random_trace(0)
        memory = shard_trace(trace, shard_rows)
        writer = ShardWriter(tmp_path / "entry", trace.name, shard_rows)
        for chunk in memory.chunks():
            writer.append(chunk)
        written = writer.finish(trace.output, trace.exit_code)
        loaded = load_sharded(tmp_path / "entry")
        for view in (written, loaded):
            assert view.total_rows == len(trace)
            assert view.num_shards == memory.num_shards
            assert view.output == trace.output
            assert view.exit_code == trace.exit_code
            back = view.materialize()
            assert _columns_equal(back.columns, trace.columns)
            assert back.output == trace.output

    def test_manifest_counts_sum_to_trace_mix(self):
        trace = _random_trace(1)
        view = shard_trace(trace, 37)
        op = trace.columns.op_class
        assert view.counts()["instructions"] == len(trace)
        assert view.load_count == int((op == OC_LOAD).sum())
        assert view.store_count == int((op == OC_STORE).sum())
        assert view.counts()["branches"] == int((op == OC_BRANCH).sum())
        mem = (op == OC_LOAD) | (op == OC_STORE)
        by_region = np.bincount(trace.columns.region[mem], minlength=3)
        assert view.counts()["region_data"] == int(by_region[0])
        assert view.counts()["region_heap"] == int(by_region[1])
        assert view.counts()["region_stack"] == int(by_region[2])

    def test_chunks_are_bounded_and_ordered(self):
        trace = _random_trace(2, n=100)
        view = shard_trace(trace, 33)
        sizes = [len(chunk) for chunk in view.chunks()]
        assert sizes == [33, 33, 33, 1]
        assert np.array_equal(
            np.concatenate([chunk.pc for chunk in view.chunks()]),
            trace.columns.pc)

    def test_empty_trace_roundtrips(self, tmp_path):
        writer = ShardWriter(tmp_path / "empty", "empty", 16)
        view = writer.finish([], 0)
        assert view.total_rows == 0 and view.num_shards == 0
        assert len(load_sharded(tmp_path / "empty").materialize()) == 0

    def test_writer_rejects_bad_shard_rows(self):
        with pytest.raises(ValueError):
            MemoryShardWriter("x", 0)


class TestShardRowsKnob:
    def setup_method(self):
        shards.set_shard_rows(None)

    def teardown_method(self):
        shards.set_shard_rows(None)

    def test_explicit_set_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(shards.ENV_VAR, "123")
        shards.set_shard_rows(77)
        assert shards.get_shard_rows() == 77
        shards.set_shard_rows(0)        # explicit off beats env on
        assert not shards.sharding_enabled()

    def test_env_var_applies_when_unset(self, monkeypatch):
        monkeypatch.setenv(shards.ENV_VAR, "4096")
        assert shards.get_shard_rows() == 4096
        assert shards.sharding_enabled()

    def test_invalid_env_falls_back_off(self, monkeypatch):
        monkeypatch.setenv(shards.ENV_VAR, "banana")
        assert shards.get_shard_rows() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shards.set_shard_rows(-1)


def _producer_for(trace):
    """A cache producer that shards ``trace`` instead of simulating."""
    def producer(name, scale, writer):
        source = shard_trace(trace, writer.shard_rows)
        for chunk in source.chunks():
            writer.append(chunk)
        return writer.finish(trace.output, trace.exit_code)
    return producer


class TestShardedCache:
    def test_fetch_miss_then_hit(self, tmp_path):
        trace = _random_trace(3)
        cache = TraceCache(tmp_path)
        produced = cache.fetch_sharded(trace.name, 1.0, 50,
                                       producer=_producer_for(trace))
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        again = cache.fetch_sharded(trace.name, 1.0, 50,
                                    producer=_producer_for(trace))
        assert cache.stats.hits == 1
        assert _columns_equal(produced.materialize().columns,
                              again.materialize().columns)

    def test_distinct_shard_rows_are_distinct_entries(self, tmp_path):
        trace = _random_trace(4)
        cache = TraceCache(tmp_path)
        a = cache.fetch_sharded(trace.name, 1.0, 10,
                                producer=_producer_for(trace))
        b = cache.fetch_sharded(trace.name, 1.0, 99,
                                producer=_producer_for(trace))
        assert a.num_shards != b.num_shards
        assert cache.stats.misses == 2

    def test_corrupt_shard_quarantines_whole_entry_and_regenerates(
            self, tmp_path):
        trace = _random_trace(5)
        cache = TraceCache(tmp_path)
        first = cache.fetch_sharded(trace.name, 1.0, 64,
                                    producer=_producer_for(trace))
        entry = cache.sharded_path_for(trace.name, 1.0, 64)
        victim = entry / first.shard_meta(1)["file"]
        victim.write_bytes(b"garbage not a zip")
        reloaded = cache.fetch_sharded(trace.name, 1.0, 64,
                                       producer=_producer_for(trace))
        with pytest.raises(TraceIntegrityError):
            reloaded.chunk(1)
        # The corrupt-chunk hook quarantined the whole entry...
        assert cache.stats.corrupt == 1
        assert not entry.exists()
        quarantined = list(tmp_path.glob(
            "*" + cache_mod.QUARANTINE_SUFFIX))
        assert quarantined, "corrupt shard set should be moved aside"
        # ...so the next fetch is a miss that regenerates a good copy.
        before = cache.stats.misses
        fresh = cache.fetch_sharded(trace.name, 1.0, 64,
                                    producer=_producer_for(trace))
        assert cache.stats.misses == before + 1
        assert _columns_equal(fresh.materialize().columns,
                              trace.columns)

    def test_tampered_manifest_is_quarantined_on_open(self, tmp_path):
        trace = _random_trace(6)
        cache = TraceCache(tmp_path)
        cache.fetch_sharded(trace.name, 1.0, 64,
                            producer=_producer_for(trace))
        entry = cache.sharded_path_for(trace.name, 1.0, 64)
        manifest = json.loads(
            (entry / shards.MANIFEST_NAME).read_text())
        manifest["name"] = "impostor"
        (entry / shards.MANIFEST_NAME).write_text(json.dumps(manifest))
        assert cache.load_sharded(trace.name, 1.0, 64) is None
        assert cache.stats.corrupt == 1
        assert not entry.exists()

    def test_lru_bound_evicts_whole_shard_sets(self, tmp_path,
                                               monkeypatch):
        trace = _random_trace(7)
        cache = TraceCache(tmp_path)
        for scale in (1.0, 2.0, 3.0):
            cache.fetch_sharded(trace.name, scale, 64,
                                producer=_producer_for(trace))
        entries = [cache.sharded_path_for(trace.name, s, 64)
                   for s in (1.0, 2.0, 3.0)]
        assert all(path.is_dir() for path in entries)
        one_entry = sum(f.stat().st_size
                        for f in entries[0].rglob("*") if f.is_file())
        # Bound to ~one entry: the two least-recently-used sets go.
        monkeypatch.setenv(cache_mod.MAX_BYTES_ENV_VAR,
                           str(int(one_entry * 1.5)))
        removed = cache.enforce_size_bound(keep=entries[2])
        assert removed == 2 and cache.stats.evictions == 2
        assert not entries[0].exists() and not entries[1].exists()
        assert entries[2].exists()
        # Evicted entries are gone atomically - no stray shard files.
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".npz") and p.is_file()]
        assert not leftovers

    def test_unbounded_cache_never_evicts(self, tmp_path, monkeypatch):
        monkeypatch.delenv(cache_mod.MAX_BYTES_ENV_VAR, raising=False)
        trace = _random_trace(8)
        cache = TraceCache(tmp_path)
        cache.fetch_sharded(trace.name, 1.0, 64,
                            producer=_producer_for(trace))
        assert cache.enforce_size_bound() == 0
        assert cache.stats.evictions == 0


class TestShardStats:
    def test_chunk_loads_and_produces_are_counted(self, tmp_path):
        trace = _random_trace(9, n=120)
        chunks = list(shard_trace(trace, 50).chunks())
        baseline = shards.STATS.snapshot()
        writer = ShardWriter(tmp_path / "entry", trace.name, 50)
        for chunk in chunks:
            writer.append(chunk)
        writer.finish(trace.output, trace.exit_code)
        view = load_sharded(tmp_path / "entry")
        list(view.chunks())
        snap = shards.STATS.snapshot()
        assert snap["trace.shards.produced"] \
            - baseline["trace.shards.produced"] == 3
        assert snap["trace.shards.loaded"] \
            - baseline["trace.shards.loaded"] == 3

    def test_inconsistent_manifest_rejected(self):
        view = shard_trace(_random_trace(10, n=10), 4)
        manifest = {
            "version": shards.SHARD_FORMAT_VERSION,
            "name": view.name, "shard_rows": 4,
            "total_rows": view.total_rows + 1,
            "output": [], "exit_code": 0,
            "shards": [view.shard_meta(i)
                       for i in range(view.num_shards)],
        }
        with pytest.raises(TraceIntegrityError):
            ShardedTrace(manifest, resident_chunks=list(view.chunks()))
