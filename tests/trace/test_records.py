"""Tests for trace records and the Trace container."""

import pytest

from repro.isa.instructions import Op
from repro.trace.records import (OC_BRANCH, OC_FALU, OC_IALU, OC_IDIV,
                                 OC_IMUL, OC_LOAD, OC_STORE, REGION_STACK,
                                 Trace, TraceRecord, op_class_of)


class TestOpClassMapping:
    def test_alu_classes(self):
        assert op_class_of(Op.ADD) == OC_IALU
        assert op_class_of(Op.MUL) == OC_IMUL
        assert op_class_of(Op.DIV) == OC_IDIV
        assert op_class_of(Op.REM) == OC_IDIV
        assert op_class_of(Op.FADD) == OC_FALU

    def test_memory_ops_not_in_alu_map(self):
        with pytest.raises(KeyError):
            op_class_of(Op.LW)

    def test_every_alu_op_mapped(self):
        unmapped_ok = {Op.LW, Op.SW, Op.LF, Op.SF, Op.BEQZ, Op.BNEZ,
                       Op.J, Op.JAL, Op.JR, Op.JALR, Op.SYSCALL}
        for op in Op:
            if op in unmapped_ok:
                continue
            op_class_of(op)   # must not raise


class TestTraceRecord:
    def test_predicates(self):
        load = TraceRecord(8, OC_LOAD, addr=0x10000000, region=0)
        store = TraceRecord(8, OC_STORE, addr=0x10000000, region=0)
        branch = TraceRecord(8, OC_BRANCH, taken=True)
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem and not store.is_load
        assert branch.is_branch and not branch.is_mem

    def test_is_stack(self):
        record = TraceRecord(8, OC_LOAD, addr=0x7FFF0000,
                             region=REGION_STACK)
        assert record.is_stack

    def test_repr_forms(self):
        load = TraceRecord(0x400008, OC_LOAD, addr=0x10000000, region=0)
        assert "load" in repr(load)
        assert "0x400008" in repr(load)
        alu = TraceRecord(0x400010, OC_IALU)
        assert "ialu" in repr(alu)

    def test_slots_reject_new_attributes(self):
        record = TraceRecord(8, OC_IALU)
        with pytest.raises(AttributeError):
            record.bogus = 1


class TestTraceContainer:
    def _trace(self):
        records = [
            TraceRecord(8, OC_LOAD, addr=0x10000000, region=0),
            TraceRecord(16, OC_IALU),
            TraceRecord(24, OC_STORE, addr=0x10000000, region=0),
            TraceRecord(32, OC_LOAD, addr=0x10000000, region=0),
        ]
        return Trace("t", records, output=[42], exit_code=0)

    def test_counts(self):
        trace = self._trace()
        assert len(trace) == 4
        assert trace.load_count == 2
        assert trace.store_count == 1
        assert trace.load_fraction() == 0.5
        assert trace.store_fraction() == 0.25

    def test_memory_records(self):
        assert len(self._trace().memory_records) == 3

    def test_iteration(self):
        assert sum(1 for _ in self._trace()) == 4

    def test_empty_trace_fractions(self):
        trace = Trace("empty")
        assert trace.load_fraction() == 0.0
        assert trace.store_fraction() == 0.0
