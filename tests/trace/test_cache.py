"""Tests for the on-disk trace cache."""

import multiprocessing

import pytest

from repro.testing import faults as fi
from repro.trace import cache as trace_cache
from repro.trace import serialize
from repro.trace.cache import QUARANTINE_SUFFIX, CacheStats, TraceCache
from repro.trace.records import OC_IALU, Trace, TraceRecord


def _trace(name="cached", n=4):
    records = [TraceRecord(pc=0x400000 + 4 * i, op_class=OC_IALU,
                           dst=1, src1=2, src2=3, addr=0, mode=-1,
                           region=-1, taken=False, ra=0, value=i)
               for i in range(n)]
    return Trace(name, records, output=[n], exit_code=0)


def _store_entry(directory, value):
    """Child-process body for the concurrent-store test."""
    cache = TraceCache(directory)
    cache.store("shared", 1.0, _trace("shared", n=value))


@pytest.fixture(autouse=True)
def _clean_config(monkeypatch):
    monkeypatch.delenv(trace_cache.ENV_VAR, raising=False)
    monkeypatch.delenv(fi.ENV_VAR, raising=False)
    trace_cache.reset()
    fi.install(None)
    yield
    trace_cache.reset()
    fi.install(None)


class TestKeyScheme:
    def test_key_includes_name_scale_and_version(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = cache.key("db_vortex", 0.25)
        assert "db_vortex" in key
        assert "s0.25" in key
        assert f"v{serialize._FORMAT_VERSION}" in key

    def test_file_as_cache_directory_rejected(self, tmp_path):
        path = tmp_path / "notadir"
        path.touch()
        with pytest.raises(ValueError):
            TraceCache(path)

    def test_different_scales_get_different_paths(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.path_for("go_ai", 1.0) != cache.path_for("go_ai", 0.5)

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        cache.store("w", 1.0, _trace())
        assert cache.load("w", 1.0) is not None
        monkeypatch.setattr(serialize, "_FORMAT_VERSION",
                            serialize._FORMAT_VERSION + 1)
        assert cache.load("w", 1.0) is None


class TestFetch:
    def test_miss_runs_producer_then_hit_does_not(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def producer(name, scale):
            calls.append((name, scale))
            return _trace(name)

        first = cache.fetch("w", 0.5, producer=producer)
        second = cache.fetch("w", 0.5, producer=producer)
        assert calls == [("w", 0.5)]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert [r.value for r in second.records] == \
            [r.value for r in first.records]

    def test_store_writes_final_path_only(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.store("w", 1.0, _trace())
        assert path == cache.path_for("w", 1.0)
        assert path.exists()
        # No stray temp/partial files - only the entry itself and the
        # advisory lock directory.
        assert sorted(tmp_path.iterdir()) == sorted(
            [path, tmp_path / ".locks"])

    def test_corrupt_file_falls_back_to_producer(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.path_for("w", 1.0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        fetched = cache.fetch("w", 1.0, producer=lambda n, s: _trace(n))
        assert fetched.name == "w"
        assert cache.stats.misses == 1
        # The corrupt file was replaced by a valid one.
        assert cache.load("w", 1.0) is not None


class TestFailureModes:
    """Corrupt entries are quarantined and regenerated - never served,
    never fatal."""

    def _seeded(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.store("w", 1.0, _trace("w"))
        return cache, path

    def _assert_recovered(self, cache, path):
        quarantined = path.with_name(path.name + QUARANTINE_SUFFIX)
        produced = []

        def producer(name, scale):
            produced.append(name)
            return _trace(name)

        fetched = cache.fetch("w", 1.0, producer=producer)
        assert fetched.name == "w"
        assert produced == ["w"]
        assert cache.stats.corrupt == 1
        assert quarantined.exists()
        # The regenerated entry is valid and served on the next fetch.
        assert cache.fetch("w", 1.0, producer=producer).name == "w"
        assert produced == ["w"]

    def test_truncated_entry(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        fi.corrupt_file(path, "truncate")
        self._assert_recovered(cache, path)

    def test_zero_byte_entry(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        fi.corrupt_file(path, "zero")
        self._assert_recovered(cache, path)

    def test_garbage_entry(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        fi.corrupt_file(path, "garbage", seed=11)
        self._assert_recovered(cache, path)

    def test_wrong_embedded_version(self, tmp_path):
        import json

        import numpy as np
        cache = TraceCache(tmp_path)
        path = cache.path_for("w", 1.0)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = json.dumps({"version": serialize._FORMAT_VERSION + 1,
                           "name": "w", "output": [], "exit_code": 0})
        np.savez_compressed(
            str(path),
            meta=np.frombuffer(meta.encode(), dtype=np.uint8))
        self._assert_recovered(cache, path)

    def test_injected_store_corruption(self, tmp_path):
        """A store corrupted in flight is caught on the next load."""
        fi.install("corrupt:name=w,mode=truncate")
        cache = TraceCache(tmp_path)
        path = cache.store("w", 1.0, _trace("w"))
        assert cache.load("w", 1.0) is None
        assert cache.stats.corrupt == 1
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()
        # The directive is spent (times=1), so regeneration sticks.
        fetched = cache.fetch("w", 1.0, producer=lambda n, s: _trace(n))
        assert fetched.name == "w"
        assert cache.load("w", 1.0) is not None

    def test_concurrent_stores_of_same_entry(self, tmp_path):
        procs = [multiprocessing.Process(target=_store_entry,
                                         args=(tmp_path, n))
                 for n in (3, 5)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert [proc.exitcode for proc in procs] == [0, 0]
        loaded = TraceCache(tmp_path).load("shared", 1.0)
        assert loaded is not None           # last writer won, intact
        assert len(loaded) in (3, 5)

    def test_fetch_after_wait_loads_other_writers_entry(self, tmp_path):
        """The double-checked miss path: a fetch that waited on the
        entry lock re-loads instead of simulating a second time."""
        from contextlib import contextmanager

        cache = TraceCache(tmp_path)
        entry = cache.path_for("w", 1.0)
        real_lock = cache._entry_lock

        @contextmanager
        def contended_lock(path):
            # Simulate another writer finishing while we waited for
            # the lock: the entry appears, and waited is reported True.
            with real_lock(path):
                serialize.save_trace(_trace("w"), entry)
                yield True

        cache._entry_lock = contended_lock
        try:
            fetched = cache.fetch(
                "w", 1.0,
                producer=lambda n, s: pytest.fail("must not simulate"))
        finally:
            cache._entry_lock = real_lock
        assert fetched.name == "w"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0


class TestActivation:
    def test_disabled_by_default(self):
        assert trace_cache.active_cache() is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        cache = trace_cache.active_cache()
        assert cache is not None
        assert cache.directory == tmp_path

    def test_configure_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path / "env"))
        configured = trace_cache.configure(tmp_path / "explicit")
        assert trace_cache.active_cache() is configured
        assert configured.directory == tmp_path / "explicit"

    def test_configure_none_disables_despite_env(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        trace_cache.configure(None)
        assert trace_cache.active_cache() is None

    def test_reset_restores_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path))
        trace_cache.configure(None)
        trace_cache.reset()
        cache = trace_cache.active_cache()
        assert cache is not None
        assert cache.directory == tmp_path


class TestStats:
    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=2, misses=3, load_seconds=0.5,
                           sim_seconds=1.0)
        snap = stats.snapshot()
        stats.hits += 1
        assert snap.hits == 2
        assert snap.misses == 3
