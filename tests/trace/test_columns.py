"""Tests for the columnar trace backbone (ColumnarTrace <-> Trace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.cpu import run_source
from repro.trace.columns import COLUMN_DTYPES, ColumnarTrace
from repro.trace.records import (OC_BRANCH, OC_IALU, OC_LOAD, OC_STORE,
                                 Trace, TraceRecord)

_FIELDS = ("pc", "op_class", "dst", "src1", "src2", "addr", "mode",
           "region", "taken", "ra", "value")


def _assert_same_records(before, after):
    assert len(before) == len(after)
    for b, a in zip(before, after):
        for field in _FIELDS:
            assert getattr(b, field) == getattr(a, field), field


def _record(value=None, **overrides):
    defaults = dict(pc=0x400100, op_class=OC_IALU, dst=3, src1=4,
                    src2=5, addr=0, mode=-1, region=-1, taken=False,
                    ra=0, value=value)
    defaults.update(overrides)
    return TraceRecord(**defaults)


_RECORDS = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=2 ** 62),
    op_class=st.sampled_from((OC_IALU, OC_LOAD, OC_STORE, OC_BRANCH)),
    dst=st.integers(min_value=-1, max_value=63),
    src1=st.integers(min_value=-1, max_value=63),
    src2=st.integers(min_value=-1, max_value=63),
    addr=st.integers(min_value=0, max_value=2 ** 62),
    mode=st.integers(min_value=-1, max_value=3),
    region=st.integers(min_value=-1, max_value=2),
    taken=st.booleans(),
    ra=st.integers(min_value=0, max_value=2 ** 62),
    value=st.one_of(
        st.none(),
        st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)),
)


@pytest.fixture(scope="module")
def real_trace():
    return run_source("""
        int g[16];
        int main() {
          int* h = (int*) malloc(8);
          int t = 0;
          for (int i = 0; i < 16; i += 1) {
            g[i] = i;
            if (i < 8) h[i] = i * 2;
            t += g[i];
          }
          print_int(t);
          free(h);
          return 0;
        }
    """, "columns-real")


class TestRoundTrip:
    def test_records_columns_records_lossless(self):
        records = [
            _record(value=None),
            _record(value=-(2 ** 63)),
            _record(value=2 ** 63 - 1),
            _record(op_class=OC_LOAD, addr=0x7FFFFFF8, mode=1, region=2,
                    ra=0x400008, value=0),
            _record(op_class=OC_BRANCH, taken=True),
        ]
        columns = ColumnarTrace.from_records(records)
        _assert_same_records(records, columns.to_records())

    @settings(max_examples=40, deadline=None)
    @given(records=st.lists(_RECORDS, max_size=50))
    def test_random_records_round_trip(self, records):
        columns = ColumnarTrace.from_records(records)
        _assert_same_records(records, columns.to_records())

    def test_real_trace_round_trips(self, real_trace):
        records = real_trace.records
        _assert_same_records(
            records, ColumnarTrace.from_records(records).to_records())

    def test_empty(self):
        columns = ColumnarTrace.empty()
        assert len(columns) == 0
        assert columns.to_records() == []

    def test_from_rows_matches_from_records(self):
        records = [_record(value=v) for v in (None, 0, -1, 7)]
        rows = [tuple(getattr(r, f) for f in _FIELDS) for r in records]
        by_rows = ColumnarTrace.from_rows(rows)
        _assert_same_records(records, by_rows.to_records())

    def test_mismatched_column_lengths_rejected(self):
        good = ColumnarTrace.from_records([_record()])
        args = [getattr(good, name) for name, _ in COLUMN_DTYPES]
        with pytest.raises(ValueError):
            ColumnarTrace(*args, np.zeros(2, dtype=np.int64),
                          np.zeros(2, dtype=np.bool_))


class TestLazyTrace:
    def test_column_backed_trace_defers_record_objects(self, real_trace):
        trace = Trace("lazy", columns=real_trace.columns)
        assert trace.has_columns and not trace.has_records
        assert len(trace) == len(real_trace)
        # Counting loads/stores must not materialise records.
        assert trace.load_count == real_trace.load_count
        assert trace.store_count == real_trace.store_count
        assert not trace.has_records
        assert len(trace.records) == len(real_trace)
        assert trace.has_records

    def test_record_backed_trace_defers_columns(self):
        records = [_record(op_class=OC_LOAD, region=2, mode=1)]
        trace = Trace("t", records)
        assert trace.has_records and not trace.has_columns
        assert trace.load_count == 1
        assert trace.has_columns  # counts are backed by the columns

    def test_conversions_cached(self, real_trace):
        trace = Trace("cached", columns=real_trace.columns)
        assert trace.records is trace.records
        assert trace.columns is trace.columns

    def test_memory_records_cached_filter(self):
        records = [_record(op_class=OC_LOAD, region=0, mode=3),
                   _record(op_class=OC_IALU),
                   _record(op_class=OC_STORE, region=2, mode=1)]
        trace = Trace("t", records)
        assert [r.op_class for r in trace.memory_records] \
            == [OC_LOAD, OC_STORE]
        assert trace.memory_records is trace.memory_records

    def test_iteration_matches_records(self):
        records = [_record(), _record(op_class=OC_BRANCH, taken=True)]
        trace = Trace("t", columns=ColumnarTrace.from_records(records))
        _assert_same_records(records, list(trace))


class TestConversionMetrics:
    def test_counters_published_when_enabled(self):
        records = [_record(), _record()]
        registry = metrics.MetricsRegistry()
        previous = metrics.swap(registry)
        try:
            columns = ColumnarTrace.from_records(records)
            columns.to_records()
        finally:
            metrics.swap(previous)
        snapshot = registry.snapshot()
        assert snapshot["trace.columnar.builds"]["value"] == 1
        assert snapshot["trace.columnar.materializations"]["value"] == 1
        assert snapshot["trace.columnar.records"]["value"] == 4  # 2+2

    def test_disabled_registry_publishes_nothing(self):
        ColumnarTrace.from_records([_record()])  # must not raise
        assert not metrics.active().enabled
