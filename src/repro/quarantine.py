"""Garbage collection for quarantined files.

Both the trace cache (:mod:`repro.trace.cache`) and the checkpoint
journal (:mod:`repro.eval.checkpoint`) move unreadable entries aside
with a ``.quarantined`` suffix instead of deleting them, so a corrupt
file survives for post-mortem inspection.  Left alone those files
accumulate forever; :func:`collect` bounds them, and both stores run
it every time a cache/journal is opened.

A quarantined file is deleted when it is older than
``REPRO_QUARANTINE_MAX_AGE_DAYS`` (default 7 days), and the newest
``REPRO_QUARANTINE_MAX_FILES`` (default 16) are kept regardless of
count - whichever bound bites first.  Deletions are counted by the
opening store's stats and surface in the engine's resilience metrics
(``trace.cache.quarantine_gc`` / ``checkpoint.quarantine_gc``).
Setting the age bound to ``0`` clears every quarantined file on open.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

#: Age bound (days) for quarantined files; invalid values fall back.
ENV_MAX_AGE = "REPRO_QUARANTINE_MAX_AGE_DAYS"

#: Count bound: at most this many quarantined files are kept.
ENV_MAX_FILES = "REPRO_QUARANTINE_MAX_FILES"

DEFAULT_MAX_AGE_DAYS = 7.0
DEFAULT_MAX_FILES = 16

#: Suffix shared by every quarantining store in the repo.
SUFFIX = ".quarantined"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def collect(directory: Union[str, Path], suffix: str = SUFFIX,
            max_age_days: Optional[float] = None,
            max_files: Optional[int] = None,
            now: Optional[float] = None) -> int:
    """Delete expired quarantined files under ``directory``.

    Removes every ``*<suffix>`` file older than ``max_age_days`` plus
    any beyond the newest ``max_files``; returns how many were
    deleted.  Bounds default to the environment knobs above.  Races
    with concurrent collectors (or manual cleanup) are benign: a file
    already gone just isn't counted.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    if max_age_days is None:
        max_age_days = _env_float(ENV_MAX_AGE, DEFAULT_MAX_AGE_DAYS)
    if max_files is None:
        max_files = _env_int(ENV_MAX_FILES, DEFAULT_MAX_FILES)
    if now is None:
        now = time.time()
    entries = []
    for path in directory.iterdir():
        if not path.name.endswith(suffix):
            continue
        try:
            mtime = path.stat().st_mtime
        except OSError:       # raced away already
            continue
        entries.append((mtime, path))
    entries.sort(reverse=True)   # newest first
    cutoff = now - max_age_days * 86400.0
    removed = 0
    for rank, (mtime, path) in enumerate(entries):
        if mtime >= cutoff and rank < max_files:
            continue
        try:
            if path.is_dir():      # quarantined shard-set entries
                import shutil
                shutil.rmtree(path)
            else:
                path.unlink()
        except OSError:
            continue
        removed += 1
    return removed
