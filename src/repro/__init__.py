"""repro: reproduction of "Access Region Locality for High-Bandwidth
Processor Memory System Design" (Cho, Yew, Lee - MICRO 1999).

The package provides, end to end:

* a MiniC compiler targeting a PISA-like ISA (:mod:`repro.lang`,
  :mod:`repro.compiler`, :mod:`repro.isa`);
* a functional simulator with full dynamic tracing (:mod:`repro.cpu`,
  :mod:`repro.trace`);
* the paper's access-region predictor family (:mod:`repro.predictor`);
* cache models and a trace-driven out-of-order timing simulator with
  data-decoupled memory pipelines (:mod:`repro.cache`, :mod:`repro.timing`);
* the 12-program workload suite and per-figure/table experiment drivers
  (:mod:`repro.workloads`, :mod:`repro.eval`).

Quickstart::

    from repro.workloads import suite
    from repro.predictor import evaluate

    trace = suite.run("compress")
    result = evaluate.evaluate_scheme(trace, "1bit-hybrid")
    print(result.accuracy)
"""

__version__ = "1.2.0"
