"""Functional CPU simulation and the guest syscall interface."""

from repro.cpu.functional import (DEFAULT_MAX_STEPS, FunctionalSimulator,
                                  SimulationError, run_program, run_source)
from repro.cpu import syscalls

__all__ = [
    "DEFAULT_MAX_STEPS",
    "FunctionalSimulator",
    "SimulationError",
    "run_program",
    "run_source",
    "syscalls",
]
