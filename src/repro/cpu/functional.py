"""Architectural (functional) simulator.

Executes a linked MiniC program instruction by instruction, maintaining
registers, segmented memory, and the heap allocator, and optionally
emitting a full dynamic trace.  This plays the role SimpleScalar's
``sim-safe`` profiler plays in the paper: ground-truth execution plus
observation of every memory access and its region.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.linker import CompiledProgram
from repro.runtime import syscalls
from repro.isa import registers as R
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction, Op
from repro.runtime.allocator import HeapAllocator
from repro.runtime.layout import (DATA_BASE, HEAP_BASE, STACK_LIMIT,
                                  WORD_SIZE)
from repro.runtime.memory import Memory
from repro.trace.columns import ColumnarTrace
from repro.trace.records import (MODE_CONSTANT, MODE_GLOBAL, MODE_OTHER,
                                 MODE_STACK, OC_BRANCH, OC_CALL, OC_JUMP,
                                 OC_LOAD, OC_RET, OC_STORE, OC_SYSCALL,
                                 REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, op_class_of)

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _wrap(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def _idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _irem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - _idiv(a, b) * b


class SimulationError(Exception):
    """Raised on guest faults (bad PC, division by zero, step overrun)."""


def _mode_of_base(base: int) -> int:
    if base == R.SP or base == R.FP:
        return MODE_STACK
    if base == R.GP:
        return MODE_GLOBAL
    if base == R.ZERO:
        return MODE_CONSTANT
    return MODE_OTHER


def _region_of(addr: int) -> int:
    if addr >= STACK_LIMIT:
        return REGION_STACK
    if addr >= HEAP_BASE:
        return REGION_HEAP
    if addr >= DATA_BASE:
        return REGION_DATA
    raise SimulationError(f"data access to text/unmapped address {addr:#x}")


#: Default runaway-loop backstop (retired-instruction ceiling).  Ample
#: for every workload at the default scales; scale-aware callers
#: (``workloads.suite.step_ceiling``) raise it linearly for large
#: ``--scale`` runs so legitimate long simulations are not mistaken
#: for infinite loops.
DEFAULT_MAX_STEPS = 50_000_000


class FunctionalSimulator:
    """Executes a compiled program and produces its dynamic trace."""

    def __init__(self, compiled: CompiledProgram,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 collect_trace: bool = True) -> None:
        self._compiled = compiled
        self._program = compiled.program
        self._max_steps = max_steps
        self._collect_trace = collect_trace
        self.memory = Memory()
        self.allocator = HeapAllocator()
        self.gpr: List[int] = [0] * 32
        self.fpr: List[float] = [0.0] * 32
        self.output: List[object] = []
        self.exit_code = 0
        self.steps = 0
        self._load_globals()

    def _load_globals(self) -> None:
        """Initialise the data segment from global initialisers."""
        for symbol in self._compiled.globals.globals.values():
            base = DATA_BASE + symbol.offset
            for i, value in enumerate(symbol.init_values):
                self.memory.store(base + i * WORD_SIZE, value)

    def run(self, sink=None, spill_rows: Optional[int] = None) -> Trace:
        """Execute from the entry point until exit; returns the trace.

        Retired instructions are appended to a row buffer as plain
        tuples in ``ColumnarTrace`` field order
        ``(pc, op_class, dst, src1, src2, addr, mode, region, taken,
        ra, value)`` and columnised once at end of run - the returned
        trace is column-backed, so record objects only ever exist if a
        consumer materialises them.

        With a ``sink`` (and positive ``spill_rows``) the buffer is
        instead *spilled*: every time it reaches ``spill_rows`` rows it
        is handed to ``sink`` and replaced, and once more (possibly
        short) at end of run.  Peak memory is then bounded by the spill
        size regardless of trace length; the returned trace carries
        output/exit code but empty columns (the sink - a shard writer -
        owns the rows).  The default path pays one extra comparison per
        retired instruction.
        """
        program = self._program
        instructions = program.instructions
        text_base = program.text_base
        memory = self.memory
        gpr = self.gpr
        fpr = self.fpr
        rows: List[tuple] = []
        append = rows.append
        collect = self._collect_trace
        spill_at = 0
        if sink is not None and collect:
            if not spill_rows or spill_rows <= 0:
                raise ValueError(
                    f"spill_rows must be positive with a sink, "
                    f"got {spill_rows!r}")
            spill_at = spill_rows
        fpr_base = R.FPR_BASE

        idx = program.labels["__start"]
        max_steps = self._max_steps
        steps = 0
        running = True
        while running:
            if steps >= max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} steps in {self._compiled.name}")
            try:
                instr = instructions[idx]
            except IndexError:
                raise SimulationError(f"PC out of text segment: index {idx}")
            steps += 1
            pc = text_base + idx * INSTRUCTION_SIZE
            next_idx = idx + 1
            op = instr.op

            if op is Op.LW or op is Op.LF:
                base = instr.rs
                addr = gpr[base] + instr.imm
                value = memory.load(addr)
                rd = instr.rd
                if op is Op.LW:
                    ivalue = int(value)
                    gpr[rd] = ivalue if rd else 0
                    if collect:
                        append((pc, OC_LOAD, rd, base, -1, addr,
                                _mode_of_base(base), _region_of(addr),
                                False, gpr[31], ivalue))
                else:
                    fpr[rd - fpr_base] = float(value)
                    if collect:
                        append((pc, OC_LOAD, rd, base, -1, addr,
                                _mode_of_base(base), _region_of(addr),
                                False, gpr[31], None))
            elif op is Op.SW or op is Op.SF:
                base = instr.rs
                addr = gpr[base] + instr.imm
                rt = instr.rt
                if op is Op.SW:
                    memory.store(addr, gpr[rt])
                else:
                    memory.store(addr, fpr[rt - fpr_base])
                if collect:
                    append((pc, OC_STORE, -1, base, rt, addr,
                            _mode_of_base(base), _region_of(addr),
                            False, gpr[31], None))
            elif op is Op.BEQZ or op is Op.BNEZ:
                cond = gpr[instr.rs]
                taken = (cond == 0) if op is Op.BEQZ else (cond != 0)
                if taken:
                    next_idx = (instr.resolved_target - text_base) \
                        // INSTRUCTION_SIZE
                if collect:
                    append((pc, OC_BRANCH, -1, instr.rs, -1, 0, -1, -1,
                            taken, 0, None))
            elif op is Op.J:
                next_idx = (instr.resolved_target - text_base) \
                    // INSTRUCTION_SIZE
                if collect:
                    append((pc, OC_JUMP, -1, -1, -1, 0, -1, -1,
                            False, 0, None))
            elif op is Op.JAL:
                gpr[31] = pc + INSTRUCTION_SIZE
                next_idx = (instr.resolved_target - text_base) \
                    // INSTRUCTION_SIZE
                if collect:
                    append((pc, OC_CALL, R.RA, -1, -1, 0, -1, -1,
                            False, 0, gpr[31]))
            elif op is Op.JR or op is Op.JALR:
                target = gpr[instr.rs]
                if op is Op.JALR:
                    gpr[31] = pc + INSTRUCTION_SIZE
                offset = target - text_base
                if offset % INSTRUCTION_SIZE or offset < 0:
                    raise SimulationError(
                        f"jump to bad address {target:#x} at pc {pc:#x}")
                next_idx = offset // INSTRUCTION_SIZE
                if collect:
                    if op is Op.JALR:
                        append((pc, OC_CALL, R.RA, instr.rs, -1, 0, -1, -1,
                                False, 0, gpr[31]))
                    else:
                        oc = OC_RET if instr.rs == R.RA else OC_JUMP
                        append((pc, oc, -1, instr.rs, -1, 0, -1, -1,
                                False, 0, None))
            elif op is Op.SYSCALL:
                running = self._syscall()
                if collect:
                    append((pc, OC_SYSCALL, R.V0, R.V0, R.A0, 0, -1, -1,
                            False, 0, None))
            else:
                row = self._execute_alu(instr, pc, collect)
                if row is not None:
                    append(row)

            if spill_at and len(rows) >= spill_at:
                sink(rows)
                rows = []
                append = rows.append
            idx = next_idx

        self.steps = steps
        if spill_at:
            if rows:
                sink(rows)
            return Trace(name=self._compiled.name,
                         columns=ColumnarTrace.empty(),
                         output=list(self.output),
                         exit_code=self.exit_code)
        return Trace(name=self._compiled.name,
                     columns=ColumnarTrace.from_rows(rows),
                     output=list(self.output), exit_code=self.exit_code)

    # ------------------------------------------------------------------

    def _execute_alu(self, instr: Instruction, pc: int,
                     collect: bool) -> Optional[tuple]:
        op = instr.op
        gpr = self.gpr
        fpr = self.fpr
        fb = R.FPR_BASE
        rd = instr.rd
        ivalue: Optional[int] = None

        if op is Op.ADDI:
            ivalue = _wrap(gpr[instr.rs] + instr.imm)
        elif op is Op.LI or op is Op.LFA:
            ivalue = instr.imm
        elif op is Op.LA:
            ivalue = _wrap(gpr[instr.rs] + instr.imm)
        elif op is Op.MOV:
            ivalue = gpr[instr.rs]
        elif op is Op.ADD:
            ivalue = _wrap(gpr[instr.rs] + gpr[instr.rt])
        elif op is Op.SUB:
            ivalue = _wrap(gpr[instr.rs] - gpr[instr.rt])
        elif op is Op.MUL:
            ivalue = _wrap(gpr[instr.rs] * gpr[instr.rt])
        elif op is Op.DIV or op is Op.REM:
            divisor = gpr[instr.rt]
            if divisor == 0:
                raise SimulationError(f"division by zero at pc {pc:#x}")
            if op is Op.DIV:
                ivalue = _wrap(_idiv(gpr[instr.rs], divisor))
            else:
                ivalue = _wrap(_irem(gpr[instr.rs], divisor))
        elif op is Op.AND:
            ivalue = gpr[instr.rs] & gpr[instr.rt]
        elif op is Op.OR:
            ivalue = gpr[instr.rs] | gpr[instr.rt]
        elif op is Op.XOR:
            ivalue = gpr[instr.rs] ^ gpr[instr.rt]
        elif op is Op.ANDI:
            ivalue = gpr[instr.rs] & instr.imm
        elif op is Op.ORI:
            ivalue = gpr[instr.rs] | instr.imm
        elif op is Op.XORI:
            ivalue = gpr[instr.rs] ^ instr.imm
        elif op is Op.SLL:
            ivalue = _wrap(gpr[instr.rs] << (gpr[instr.rt] & 63))
        elif op is Op.SLLI:
            ivalue = _wrap(gpr[instr.rs] << (instr.imm & 63))
        elif op is Op.SRL:
            ivalue = (gpr[instr.rs] & _MASK64) >> (gpr[instr.rt] & 63)
        elif op is Op.SRLI:
            ivalue = (gpr[instr.rs] & _MASK64) >> (instr.imm & 63)
        elif op is Op.SRA:
            ivalue = gpr[instr.rs] >> (gpr[instr.rt] & 63)
        elif op is Op.SRAI:
            ivalue = gpr[instr.rs] >> (instr.imm & 63)
        elif op is Op.SLT:
            ivalue = 1 if gpr[instr.rs] < gpr[instr.rt] else 0
        elif op is Op.SLE:
            ivalue = 1 if gpr[instr.rs] <= gpr[instr.rt] else 0
        elif op is Op.SEQ:
            ivalue = 1 if gpr[instr.rs] == gpr[instr.rt] else 0
        elif op is Op.SNE:
            ivalue = 1 if gpr[instr.rs] != gpr[instr.rt] else 0
        elif op is Op.SLTI:
            ivalue = 1 if gpr[instr.rs] < instr.imm else 0
        elif op is Op.FADD:
            fpr[rd - fb] = fpr[instr.rs - fb] + fpr[instr.rt - fb]
        elif op is Op.FSUB:
            fpr[rd - fb] = fpr[instr.rs - fb] - fpr[instr.rt - fb]
        elif op is Op.FMUL:
            fpr[rd - fb] = fpr[instr.rs - fb] * fpr[instr.rt - fb]
        elif op is Op.FDIV:
            divisor = fpr[instr.rt - fb]
            if divisor == 0.0:
                raise SimulationError(f"FP division by zero at pc {pc:#x}")
            fpr[rd - fb] = fpr[instr.rs - fb] / divisor
        elif op is Op.FNEG:
            fpr[rd - fb] = -fpr[instr.rs - fb]
        elif op is Op.FABS:
            fpr[rd - fb] = abs(fpr[instr.rs - fb])
        elif op is Op.FSQRT:
            operand = fpr[instr.rs - fb]
            if operand < 0.0:
                raise SimulationError(f"sqrt of negative value at {pc:#x}")
            fpr[rd - fb] = operand ** 0.5
        elif op is Op.FMOV:
            fpr[rd - fb] = fpr[instr.rs - fb]
        elif op is Op.FLT:
            ivalue = 1 if fpr[instr.rs - fb] < fpr[instr.rt - fb] else 0
        elif op is Op.FLE:
            ivalue = 1 if fpr[instr.rs - fb] <= fpr[instr.rt - fb] else 0
        elif op is Op.FEQ:
            ivalue = 1 if fpr[instr.rs - fb] == fpr[instr.rt - fb] else 0
        elif op is Op.CVTIF:
            fpr[rd - fb] = float(gpr[instr.rs])
        elif op is Op.CVTFI:
            ivalue = _wrap(int(fpr[instr.rs - fb]))
        elif op is Op.NOP:
            pass
        else:
            raise SimulationError(f"unimplemented opcode {op.name}")

        if ivalue is not None:
            if rd:
                gpr[rd] = ivalue
            else:
                ivalue = 0  # writes to $zero are discarded
        if not collect:
            return None
        return (pc, op_class_of(op), -1 if rd is None else rd,
                -1 if instr.rs is None else instr.rs,
                -1 if instr.rt is None else instr.rt,
                0, -1, -1, False, 0, ivalue)

    def _syscall(self) -> bool:
        """Service a syscall; returns False when the program exits."""
        code = self.gpr[R.V0]
        arg = self.gpr[R.A0]
        if code == syscalls.SYS_EXIT:
            self.exit_code = arg
            return False
        if code == syscalls.SYS_PRINT_INT:
            self.output.append(arg)
            return True
        if code == syscalls.SYS_PRINT_FLOAT:
            self.output.append(self.fpr[R.FARG_REGS[0] - R.FPR_BASE])
            return True
        if code == syscalls.SYS_MALLOC:
            self.gpr[R.V0] = self.allocator.allocate(arg)
            return True
        if code == syscalls.SYS_FREE:
            self.allocator.free(arg)
            return True
        raise SimulationError(f"unknown syscall code {code}")


def run_program(compiled: CompiledProgram, max_steps: int = DEFAULT_MAX_STEPS,
                collect_trace: bool = True) -> Trace:
    """Compile-free convenience: execute a linked program, return its trace."""
    return FunctionalSimulator(compiled, max_steps=max_steps,
                               collect_trace=collect_trace).run()


def run_source(source: str, name: str = "program",
               max_steps: int = DEFAULT_MAX_STEPS,
               collect_trace: bool = True) -> Trace:
    """Compile MiniC source and execute it."""
    from repro.compiler.linker import compile_source
    return run_program(compile_source(source, name), max_steps=max_steps,
                       collect_trace=collect_trace)
