"""Alias for :mod:`repro.runtime.syscalls` (kept for import convenience).

The syscall numbers live in the runtime package because the compiler
needs them without pulling in the simulator.
"""

from repro.runtime.syscalls import (SYS_EXIT, SYS_FREE, SYS_MALLOC,
                                    SYS_PRINT_FLOAT, SYS_PRINT_INT,
                                    SYSCALL_NAMES)

__all__ = [
    "SYS_EXIT", "SYS_FREE", "SYS_MALLOC", "SYS_PRINT_FLOAT",
    "SYS_PRINT_INT", "SYSCALL_NAMES",
]
