"""MiniC code generator: typed AST -> PISA-like instructions.

The generator is a one-pass tree walker with an on-the-fly temporary
register allocator.  Its job, beyond correctness, is to produce the
*memory-access shape* of late-90s optimised code, because that shape is
what the paper measures:

* scalar locals/params promoted to callee-saved registers, saved and
  restored through the stack in prologue/epilogue;
* expression temporaries in caller-saved registers, spilled to the frame
  around calls and under register pressure;
* globals addressed $gp-relative, locals $sp/$fp-relative, pointers via
  computed base registers - the three addressing modes the paper's static
  region heuristics inspect;
* floating-point literals loaded from a constant pool in the data segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.runtime import syscalls
from repro.isa import registers as R
from repro.isa.instructions import Instruction, Op
from repro.lang import ast
from repro.lang.types import (FLOAT, INT, Type, assignable,
                              common_arithmetic_type)
from repro.compiler.symbols import (CompileError, FrameBuilder,
                                    FunctionSignature, GlobalSymbol,
                                    GlobalTable, LocalSymbol, Scope,
                                    FP_SLOT_OFFSET, RA_SLOT_OFFSET,
                                    saved_reg_slot)
from repro.runtime.layout import GP_OFFSET, GP_VALUE, STACK_BASE, WORD_SIZE

#: Number of arguments passed in registers; the rest go on the stack.
MAX_REG_ARGS = 4

BUILTINS = ("malloc", "free", "print_int", "print_float", "sqrt")


@dataclass
class Label:
    """Position marker in an instruction buffer; resolved by the linker."""

    name: str


BufferItem = Union[Instruction, Label]


class Value:
    """An rvalue: lives in a temporary register or a frame spill slot.

    ``hint`` carries pointer provenance for the paper's Figure-6
    compiler analysis: ``"stack"``/``"nonstack"`` when the pointed-to
    region is statically known, a :class:`LocalSymbol` when it depends
    on that symbol's (deferred) UD-chain verdict, or None (unknown).
    """

    __slots__ = ("reg", "slot", "vtype", "owned", "hint")

    def __init__(self, reg: Optional[int], vtype: Type,
                 owned: bool = True, hint=None) -> None:
        self.reg = reg
        self.slot: Optional[int] = None
        self.vtype = vtype
        self.owned = owned
        self.hint = hint

    @property
    def is_fp(self) -> bool:
        return self.vtype.is_float


@dataclass
class LValue:
    """An assignable location: a register or a base+offset memory word."""

    kind: str                      # 'reg' | 'mem'
    vtype: Type = INT
    reg: int = 0                   # for kind == 'reg'
    base_kind: str = ""            # 'fp' | 'gp' | 'temp'
    base_value: Optional[Value] = None
    offset: int = 0
    symbol: Optional[LocalSymbol] = None   # for kind == 'reg'


class CodeGen:
    """Compiles one translation unit."""

    def __init__(self, unit: ast.TranslationUnit,
                 name: str = "program") -> None:
        self._unit = unit
        self._name = name
        self._table = GlobalTable()
        self._fconsts: Dict[str, GlobalSymbol] = {}
        self._label_counter = 0
        # Per-function state, reset in _compile_function.
        self._buf: List[BufferItem] = []
        self._frame: FrameBuilder = FrameBuilder()
        self._scope: Scope = Scope()
        self._live: List[Value] = []
        self._free_iregs: List[int] = []
        self._free_fregs: List[int] = []
        self._used_saved: Set[int] = set()
        self._func: Optional[ast.FuncDef] = None
        self._epilogue_label = ""
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []
        self._is_leaf = False
        self._pending_tags: List[Tuple[Instruction, object]] = []
        self._leaf_pools: Tuple[List[int], List[int]] = ([], [])
        self._saved_pools: Tuple[List[int], List[int]] = ([], [])
        self._addr_taken: Set[str] = set()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def compile(self) -> Tuple[List[BufferItem], GlobalTable]:
        """Produce the full instruction buffer (with labels) and globals."""
        for decl in self._unit.globals:
            self._declare_global(decl)
        for func in self._unit.functions:
            if func.name in BUILTINS:
                raise CompileError(
                    f"{func.name!r} is a builtin and cannot be redefined",
                    func.line)
            self._table.declare_function(FunctionSignature(
                name=func.name,
                return_type=func.return_type,
                param_types=[p.param_type for p in func.params],
            ), func.line)
        if "main" not in self._table.functions:
            raise CompileError("program has no main() function")
        buf: List[BufferItem] = self._start_stub()
        for func in self._unit.functions:
            buf.extend(self._compile_function(func))
        return buf, self._table

    def _declare_global(self, decl: ast.VarDecl) -> None:
        if decl.var_type.is_void and decl.array_size is None:
            raise CompileError("void variable", decl.line)
        size = decl.array_size if decl.array_size is not None else 1
        inits = [self._const_value(e, decl.var_type)
                 for e in decl.initializers]
        self._table.declare_global(decl.name, decl.var_type, size,
                                   decl.array_size is not None, inits,
                                   decl.line)

    def _const_value(self, expr: ast.Expr, target: Type) -> object:
        """Fold a constant initializer expression."""
        if isinstance(expr, ast.IntLiteral):
            return float(expr.value) if target.is_float else expr.value
        if isinstance(expr, ast.FloatLiteral):
            if target.is_float:
                return expr.value
            return int(expr.value)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._const_value(expr.operand, target)
            return -inner
        raise CompileError("global initializer must be constant", expr.line)

    def _start_stub(self) -> List[BufferItem]:
        """Entry code: set up $gp/$sp, call main, exit with its result."""
        return [
            Label("__start"),
            Instruction(Op.LI, rd=R.GP, imm=GP_VALUE),
            Instruction(Op.LI, rd=R.SP, imm=STACK_BASE),
            Instruction(Op.LI, rd=R.FP, imm=STACK_BASE),
            Instruction(Op.JAL, target="main"),
            Instruction(Op.MOV, rd=R.A0, rs=R.V0),
            Instruction(Op.LI, rd=R.V0, imm=syscalls.SYS_EXIT),
            Instruction(Op.SYSCALL),
        ]

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _compile_function(self, func: ast.FuncDef) -> List[BufferItem]:
        self._buf = []
        self._frame = FrameBuilder()
        self._scope = Scope()
        self._live = []
        self._free_iregs = list(R.TEMP_REGS)
        self._free_fregs = list(R.FTEMP_REGS)
        self._used_saved = set()
        self._func = func
        self._epilogue_label = self._new_label(f"{func.name}$epilogue")
        self._break_labels = []
        self._continue_labels = []
        self._pending_tags = []

        addr_taken = _collect_address_taken(func)
        has_user_calls, has_builtin_calls = _scan_calls(func)
        leaf = not has_user_calls
        free_saved = [r for r in R.SAVED_REGS]
        free_fsaved = [r for r in R.FSAVED_REGS]
        # Leaf functions house locals in caller-saved registers that are
        # dead across the (absent) calls.  $a0/$f12 are excluded when the
        # body invokes builtins, whose syscall sequences use them.
        leaf_int_pool: List[int] = []
        leaf_fp_pool: List[int] = []
        if leaf:
            leaf_int_pool = [R.V1, R.T8, R.T9]
            leaf_fp_pool = [R.FPR_BASE + 16, R.FPR_BASE + 17,
                            R.FPR_BASE + 18, R.FPR_BASE + 19,
                            R.FPR_BASE + 28, R.FPR_BASE + 29,
                            R.FPR_BASE + 30, R.FPR_BASE + 31]
        param_moves: List[Instruction] = []

        for index, param in enumerate(func.params):
            ptype = param.param_type
            if ptype.is_void:
                raise CompileError("void parameter", param.line)
            promote = param.name not in addr_taken
            symbol = LocalSymbol(name=param.name, var_type=ptype)
            if ptype.is_pointer:
                # Figure 6: is_function_param(def) -> MT_UNKNOWN.
                symbol.pointer_hint = "conflict"
            home = None
            if index < MAX_REG_ARGS:
                home = (R.FARG_REGS[index] if ptype.is_float
                        else R.ARG_REGS[index])
            builtin_clobbers_home = has_builtin_calls and home in (
                R.A0, R.FARG_REGS[0])
            if promote and leaf and home is not None \
                    and not builtin_clobbers_home:
                symbol.reg = home   # stays put: no move, no save
            elif promote and leaf and home is not None and \
                    (leaf_fp_pool if ptype.is_float else leaf_int_pool):
                pool = leaf_fp_pool if ptype.is_float else leaf_int_pool
                symbol.reg = pool.pop(0)
                self._reserve_leaf_reg(symbol.reg)
                op = Op.FMOV if ptype.is_float else Op.MOV
                param_moves.append(Instruction(op, rd=symbol.reg, rs=home))
            elif promote and (free_fsaved if ptype.is_float else free_saved):
                pool = free_fsaved if ptype.is_float else free_saved
                symbol.reg = pool.pop(0)
                self._used_saved.add(symbol.reg)
                if home is not None:
                    op = Op.FMOV if ptype.is_float else Op.MOV
                    param_moves.append(Instruction(op, rd=symbol.reg,
                                                   rs=home))
                else:
                    op = Op.LF if ptype.is_float else Op.LW
                    param_moves.append(Instruction(
                        op, rd=symbol.reg, rs=R.FP,
                        imm=(index - MAX_REG_ARGS) * WORD_SIZE))
            else:
                if home is not None:
                    symbol.frame_offset = self._frame.alloc_local(1)
                    op = Op.SF if ptype.is_float else Op.SW
                    param_moves.append(Instruction(
                        op, rt=home, rs=R.FP, imm=symbol.frame_offset))
                else:
                    symbol.frame_offset = (index - MAX_REG_ARGS) * WORD_SIZE
            self._scope.declare(symbol, param.line)

        if leaf:
            for index in range(len(func.params), MAX_REG_ARGS):
                reg = R.ARG_REGS[index]
                if not (has_builtin_calls and reg == R.A0):
                    leaf_int_pool.append(reg)
        self._saved_pools = (free_saved, free_fsaved)
        self._leaf_pools = (leaf_int_pool, leaf_fp_pool)
        self._is_leaf = leaf
        self._addr_taken = addr_taken
        self._buf.extend(param_moves)
        self._compile_block(func.body, new_scope=False)
        self._resolve_pending_tags()
        body = self._buf
        used = sorted(self._used_saved)

        if leaf:
            return self._assemble_leaf(func, body, used)
        frame_size = self._frame.frame_size
        prologue: List[BufferItem] = [
            Label(func.name),
            Instruction(Op.ADDI, rd=R.SP, rs=R.SP, imm=-frame_size),
            Instruction(Op.SW, rt=R.RA, rs=R.SP,
                        imm=frame_size + RA_SLOT_OFFSET),
            Instruction(Op.SW, rt=R.FP, rs=R.SP,
                        imm=frame_size + FP_SLOT_OFFSET),
            Instruction(Op.ADDI, rd=R.FP, rs=R.SP, imm=frame_size),
        ]
        for i, reg in enumerate(used):
            op = Op.SF if R.is_fpr(reg) else Op.SW
            prologue.append(Instruction(op, rt=reg, rs=R.FP,
                                        imm=saved_reg_slot(i)))
        epilogue: List[BufferItem] = [Label(self._epilogue_label)]
        for i, reg in enumerate(used):
            op = Op.LF if R.is_fpr(reg) else Op.LW
            epilogue.append(Instruction(op, rd=reg, rs=R.FP,
                                        imm=saved_reg_slot(i)))
        epilogue.extend([
            Instruction(Op.LW, rd=R.RA, rs=R.FP, imm=RA_SLOT_OFFSET),
            Instruction(Op.LW, rd=R.AT, rs=R.FP, imm=FP_SLOT_OFFSET),
            Instruction(Op.MOV, rd=R.SP, rs=R.FP),
            Instruction(Op.MOV, rd=R.FP, rs=R.AT),
            Instruction(Op.JR, rs=R.RA),
        ])
        return prologue + body + epilogue

    def _reserve_leaf_reg(self, reg: int) -> None:
        """Remove a leaf-pool register from the expression-temp pool."""
        if reg in self._free_iregs:
            self._free_iregs.remove(reg)
        if reg in self._free_fregs:
            self._free_fregs.remove(reg)

    def _assemble_leaf(self, func: ast.FuncDef, body: List[BufferItem],
                       used: List[int]) -> List[BufferItem]:
        """Assemble a leaf function: no $ra/$fp saves, $sp-relative frame.

        The body was generated with $fp-relative slot addresses; since a
        leaf never moves $sp after its prologue, every $fp reference is
        rewritten to $sp + frame_size and $fp is left untouched.
        """
        uses_frame = bool(used) or any(
            isinstance(item, Instruction) and item.rs == R.FP
            for item in body)
        frame_size = self._frame.frame_size if uses_frame else 0
        if frame_size:
            for item in body:
                if isinstance(item, Instruction) and item.rs == R.FP:
                    item.rs = R.SP
                    item.imm += frame_size
        prologue: List[BufferItem] = [Label(func.name)]
        if frame_size:
            prologue.append(Instruction(Op.ADDI, rd=R.SP, rs=R.SP,
                                        imm=-frame_size))
        for i, reg in enumerate(used):
            op = Op.SF if R.is_fpr(reg) else Op.SW
            prologue.append(Instruction(op, rt=reg, rs=R.SP,
                                        imm=frame_size + saved_reg_slot(i)))
        epilogue: List[BufferItem] = [Label(self._epilogue_label)]
        for i, reg in enumerate(used):
            op = Op.LF if R.is_fpr(reg) else Op.LW
            epilogue.append(Instruction(op, rd=reg, rs=R.SP,
                                        imm=frame_size + saved_reg_slot(i)))
        if frame_size:
            epilogue.append(Instruction(Op.ADDI, rd=R.SP, rs=R.SP,
                                        imm=frame_size))
        epilogue.append(Instruction(Op.JR, rs=R.RA))
        return prologue + body + epilogue

    # ------------------------------------------------------------------
    # Registers and temporaries
    # ------------------------------------------------------------------

    def _emit(self, op: Op, **kwargs) -> None:
        self._buf.append(Instruction(op, **kwargs))

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}${self._label_counter}"

    def _alloc_reg(self, is_fp: bool, keep: Sequence[Value] = ()) -> int:
        pool = self._free_fregs if is_fp else self._free_iregs
        if pool:
            return pool.pop()
        # Register pressure: spill the oldest register-resident live
        # temporary that we are not told to keep.
        for victim in self._live:
            if victim.reg is None or victim.is_fp != is_fp:
                continue
            if any(victim is k for k in keep):
                continue
            self._spill(victim)
            return pool.pop()
        raise CompileError("expression too complex: out of registers",
                           self._func.line if self._func else 0)

    def _release_reg(self, reg: int) -> None:
        if R.is_fpr(reg):
            self._free_fregs.append(reg)
        else:
            self._free_iregs.append(reg)

    def _spill(self, value: Value) -> None:
        """Move a live temporary from its register to a frame slot."""
        slot = self._frame.alloc_spill()
        op = Op.SF if value.is_fp else Op.SW
        self._emit(op, rt=value.reg, rs=R.FP, imm=slot)
        self._release_reg(value.reg)
        value.reg = None
        value.slot = slot

    def _spill_live(self, keep: Sequence[Value] = ()) -> None:
        """Spill every live caller-saved temporary (used around calls)."""
        for value in list(self._live):
            if value.reg is not None and not any(value is k for k in keep):
                self._spill(value)

    def _new_temp(self, vtype: Type, keep: Sequence[Value] = ()) -> Value:
        reg = self._alloc_reg(vtype.is_float, keep)
        value = Value(reg, vtype)
        self._live.append(value)
        return value

    def _reg_of(self, value: Value, keep: Sequence[Value] = ()) -> int:
        """Register holding ``value``, reloading it if it was spilled."""
        if value.reg is not None:
            return value.reg
        reg = self._alloc_reg(value.is_fp, keep=(value,) + tuple(keep))
        op = Op.LF if value.is_fp else Op.LW
        self._emit(op, rd=reg, rs=R.FP, imm=value.slot)
        self._frame.release_spill(value.slot)
        value.reg = reg
        value.slot = None
        return reg

    def _free(self, value: Optional[Value]) -> None:
        if value is None or not value.owned:
            return
        if value.reg is not None:
            self._release_reg(value.reg)
        if value.slot is not None:
            self._frame.release_spill(value.slot)
        for i, live in enumerate(self._live):
            if live is value:
                self._live.pop(i)
                break
        value.reg = None
        value.slot = None

    def _own_copy(self, value: Value) -> Value:
        """Return an owned temp holding ``value`` (copying if borrowed)."""
        if value.owned:
            return value
        temp = self._new_temp(value.vtype)
        op = Op.FMOV if value.is_fp else Op.MOV
        self._emit(op, rd=temp.reg, rs=value.reg)
        temp.hint = value.hint
        return temp

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _compile_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scope = Scope(self._scope)
        for stmt in block.statements:
            self._compile_stmt(stmt)
        if new_scope:
            self._scope = self._scope.parent

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._compile_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._free(self._eval(stmt.expr, want_value=False))
        elif isinstance(stmt, ast.VarDecl):
            self._compile_local_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_labels:
                raise CompileError("break outside a loop", stmt.line)
            self._emit(Op.J, target=self._break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            if not self._continue_labels:
                raise CompileError("continue outside a loop", stmt.line)
            self._emit(Op.J, target=self._continue_labels[-1])
        else:
            raise CompileError(f"unsupported statement {type(stmt).__name__}",
                               stmt.line)

    def _compile_local_decl(self, decl: ast.VarDecl) -> None:
        vtype = decl.var_type
        if vtype.is_void:
            raise CompileError("void variable", decl.line)
        symbol = LocalSymbol(name=decl.name, var_type=vtype)
        if decl.array_size is not None:
            symbol.is_array = True
            symbol.size_words = decl.array_size
            symbol.frame_offset = self._frame.alloc_local(decl.array_size)
        elif decl.name in self._addr_taken:
            symbol.frame_offset = self._frame.alloc_local(1)
        else:
            leaf_int, leaf_fp = self._leaf_pools
            leaf_pool = leaf_fp if vtype.is_float else leaf_int
            free_saved, free_fsaved = self._saved_pools
            saved_pool = free_fsaved if vtype.is_float else free_saved
            if self._is_leaf and leaf_pool:
                symbol.reg = leaf_pool.pop(0)
                self._reserve_leaf_reg(symbol.reg)
            elif saved_pool:
                symbol.reg = saved_pool.pop(0)
                self._used_saved.add(symbol.reg)
            else:
                symbol.frame_offset = self._frame.alloc_local(1)
        self._scope.declare(symbol, decl.line)
        if decl.initializers:
            if symbol.is_array:
                for i, expr in enumerate(decl.initializers):
                    value = self._coerce(self._eval(expr), vtype, expr.line)
                    reg = self._reg_of(value)
                    op = Op.SF if vtype.is_float else Op.SW
                    self._emit(op, rt=reg, rs=R.FP,
                               imm=symbol.frame_offset + i * WORD_SIZE)
                    self._free(value)
            else:
                expr = decl.initializers[0]
                value = self._coerce(self._eval(expr), vtype, expr.line)
                self._store_lvalue(self._lvalue_of_symbol(symbol), value)
                self._free(value)

    def _compile_if(self, stmt: ast.If) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        self._branch_if_false(stmt.condition,
                              else_label if stmt.else_branch else end_label)
        self._compile_stmt(stmt.then_branch)
        if stmt.else_branch:
            self._emit(Op.J, target=end_label)
            self._buf.append(Label(else_label))
            self._compile_stmt(stmt.else_branch)
        self._buf.append(Label(end_label))

    def _compile_while(self, stmt: ast.While) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._buf.append(Label(head))
        self._branch_if_false(stmt.condition, end)
        self._break_labels.append(end)
        self._continue_labels.append(head)
        self._compile_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._emit(Op.J, target=head)
        self._buf.append(Label(end))

    def _compile_for(self, stmt: ast.For) -> None:
        self._scope = Scope(self._scope)
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        head = self._new_label("for")
        step_label = self._new_label("forstep")
        end = self._new_label("endfor")
        self._buf.append(Label(head))
        if stmt.condition is not None:
            self._branch_if_false(stmt.condition, end)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        self._compile_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._buf.append(Label(step_label))
        if stmt.step is not None:
            self._free(self._eval(stmt.step, want_value=False))
        self._emit(Op.J, target=head)
        self._buf.append(Label(end))
        self._scope = self._scope.parent

    def _compile_return(self, stmt: ast.Return) -> None:
        rtype = self._func.return_type
        if stmt.value is not None:
            if rtype.is_void:
                raise CompileError("returning a value from void function",
                                   stmt.line)
            value = self._coerce(self._eval(stmt.value), rtype, stmt.line)
            reg = self._reg_of(value)
            if rtype.is_float:
                self._emit(Op.FMOV, rd=R.FV0, rs=reg)
            else:
                self._emit(Op.MOV, rd=R.V0, rs=reg)
            self._free(value)
        elif not rtype.is_void:
            raise CompileError("missing return value", stmt.line)
        self._emit(Op.J, target=self._epilogue_label)

    def _branch_if_false(self, condition: ast.Expr, target: str) -> None:
        value = self._eval(condition)
        if value.vtype.is_float:
            value = self._coerce(value, INT, condition.line)
        reg = self._reg_of(value)
        self._emit(Op.BEQZ, rs=reg, target=target)
        self._free(value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr,
              want_value: bool = True) -> Optional[Value]:
        """Evaluate an expression into a Value (None for void calls)."""
        if isinstance(expr, ast.IntLiteral):
            temp = self._new_temp(INT)
            self._emit(Op.LI, rd=temp.reg, imm=expr.value)
            return temp
        if isinstance(expr, ast.FloatLiteral):
            return self._load_float_const(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, want_value)
        if isinstance(expr, ast.Index):
            lvalue = self._eval_lvalue(expr)
            return self._load_lvalue(lvalue)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, want_value)
        if isinstance(expr, ast.Cast):
            inner = self._eval(expr.operand)
            if inner is None:
                raise CompileError("cast of void expression", expr.line)
            return self._cast_value(inner, expr.to_type, expr.line)
        raise CompileError(f"unsupported expression {type(expr).__name__}",
                           expr.line)

    def _load_float_const(self, value: float) -> Value:
        """FP literals live in a data-segment constant pool ($gp-relative)."""
        key = repr(value)
        symbol = self._fconsts.get(key)
        if symbol is None:
            name = f"$fconst{len(self._fconsts)}"
            symbol = self._table.declare_global(name, FLOAT, 1, False,
                                                [value])
            self._fconsts[key] = symbol
        temp = self._new_temp(FLOAT)
        self._emit(Op.LF, rd=temp.reg, rs=R.GP, imm=symbol.offset - GP_OFFSET)
        return temp

    def _eval_identifier(self, expr: ast.Identifier) -> Value:
        symbol = self._scope.lookup(expr.name)
        if symbol is not None:
            if symbol.in_register:
                hint = symbol if symbol.var_type.is_pointer else None
                return Value(symbol.reg, symbol.var_type, owned=False,
                             hint=hint)
            if symbol.is_array:
                temp = self._new_temp(symbol.value_type)
                self._emit(Op.LA, rd=temp.reg, rs=R.FP,
                           imm=symbol.frame_offset)
                temp.hint = "stack"
                return temp
            temp = self._new_temp(symbol.var_type)
            op = Op.LF if symbol.var_type.is_float else Op.LW
            self._emit(op, rd=temp.reg, rs=R.FP, imm=symbol.frame_offset)
            return temp
        gsym = self._table.globals.get(expr.name)
        if gsym is not None:
            if gsym.is_array:
                temp = self._new_temp(gsym.value_type)
                self._emit(Op.LA, rd=temp.reg, rs=R.GP,
                           imm=gsym.offset - GP_OFFSET)
                temp.hint = "nonstack"
                return temp
            temp = self._new_temp(gsym.var_type)
            op = Op.LF if gsym.var_type.is_float else Op.LW
            self._emit(op, rd=temp.reg, rs=R.GP, imm=gsym.offset - GP_OFFSET)
            return temp
        raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)

    def _eval_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "&":
            # &function: the function's entry address (a code pointer,
            # resolved by the linker) - interpreter dispatch tables.
            if isinstance(expr.operand, ast.Identifier) \
                    and expr.operand.name in self._table.functions \
                    and self._scope.lookup(expr.operand.name) is None:
                temp = self._new_temp(INT.pointer_to())
                self._emit(Op.LFA, rd=temp.reg, target=expr.operand.name)
                return temp
            lvalue = self._eval_lvalue(expr.operand)
            if lvalue.kind != "mem":
                raise CompileError("cannot take the address of a register "
                                   "variable", expr.line)
            return self._address_of(lvalue)
        if expr.op == "*":
            lvalue = self._eval_lvalue(expr)
            return self._load_lvalue(lvalue)
        operand = self._eval(expr.operand)
        if operand is None:
            raise CompileError("void operand", expr.line)
        if expr.op == "-":
            operand = self._own_copy(operand)
            reg = self._reg_of(operand)
            if operand.is_fp:
                self._emit(Op.FNEG, rd=reg, rs=reg)
            else:
                self._emit(Op.SUB, rd=reg, rs=R.ZERO, rt=reg)
            return operand
        if expr.op == "!":
            if operand.is_fp:
                operand = self._coerce(operand, INT, expr.line)
            operand = self._own_copy(operand)
            reg = self._reg_of(operand)
            self._emit(Op.SEQ, rd=reg, rs=reg, rt=R.ZERO)
            operand.vtype = INT
            return operand
        raise CompileError(f"unsupported unary operator {expr.op!r}",
                           expr.line)

    _CMP_OPS = {"<": Op.SLT, "<=": Op.SLE, "==": Op.SEQ, "!=": Op.SNE}
    _INT_OPS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
                "%": Op.REM, "&": Op.AND, "|": Op.OR, "^": Op.XOR,
                "<<": Op.SLL, ">>": Op.SRA}
    _FP_OPS = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV}
    _FCMP_OPS = {"<": Op.FLT, "<=": Op.FLE, "==": Op.FEQ}

    def _eval_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self._eval_logical(expr)
        left = self._eval(expr.left)
        # Strength reduction: pointer +/- constant folds to one ADDI
        # (the form every pointer walk in optimised code takes).
        if expr.op in ("+", "-") and left is not None \
                and left.vtype.is_pointer \
                and isinstance(expr.right, ast.IntLiteral):
            displacement = expr.right.value * WORD_SIZE
            if expr.op == "-":
                displacement = -displacement
            result = self._own_copy(left)
            reg = self._reg_of(result)
            self._emit(Op.ADDI, rd=reg, rs=reg, imm=displacement)
            result.hint = left.hint
            return result
        right = self._eval(expr.right)
        if left is None or right is None:
            raise CompileError("void operand", expr.line)
        op = expr.op
        # Normalise > and >= to < and <= with swapped operands.
        if op in (">", ">="):
            left, right = right, left
            op = "<" if op == ">" else "<="
        lt, rt = left.vtype, right.vtype
        if lt.is_pointer or rt.is_pointer:
            return self._eval_pointer_binary(op, left, right, expr.line)
        common = common_arithmetic_type(lt, rt)
        if common is None:
            raise CompileError(f"invalid operands to {expr.op!r}: "
                               f"{lt} and {rt}", expr.line)
        left = self._coerce(left, common, expr.line)
        right = self._coerce(right, common, expr.line)
        if common.is_float:
            return self._emit_float_binary(op, left, right, expr.line)
        return self._emit_int_binary(op, left, right, expr.line)

    def _emit_int_binary(self, op: str, left: Value, right: Value,
                         line: int) -> Value:
        lreg = self._reg_of(left, keep=(right,))
        rreg = self._reg_of(right, keep=(left,))
        result = self._own_copy(left)
        dreg = self._reg_of(result, keep=(right,))
        if op in self._CMP_OPS:
            self._emit(self._CMP_OPS[op], rd=dreg, rs=lreg, rt=rreg)
            result.vtype = INT
        elif op in self._INT_OPS:
            self._emit(self._INT_OPS[op], rd=dreg, rs=lreg, rt=rreg)
        else:
            raise CompileError(f"unsupported integer operator {op!r}", line)
        self._free(right)
        return result

    def _emit_float_binary(self, op: str, left: Value, right: Value,
                           line: int) -> Value:
        lreg = self._reg_of(left, keep=(right,))
        rreg = self._reg_of(right, keep=(left,))
        if op in self._FP_OPS:
            result = self._own_copy(left)
            dreg = self._reg_of(result, keep=(right,))
            self._emit(self._FP_OPS[op], rd=dreg, rs=lreg, rt=rreg)
            self._free(right)
            return result
        if op in self._FCMP_OPS:
            result = self._new_temp(INT, keep=(left, right))
            self._emit(self._FCMP_OPS[op], rd=result.reg, rs=lreg, rt=rreg)
            self._free(left)
            self._free(right)
            return result
        if op == "!=":
            result = self._new_temp(INT, keep=(left, right))
            self._emit(Op.FEQ, rd=result.reg, rs=lreg, rt=rreg)
            self._emit(Op.XORI, rd=result.reg, rs=result.reg, imm=1)
            self._free(left)
            self._free(right)
            return result
        raise CompileError(f"unsupported float operator {op!r}", line)

    def _eval_pointer_binary(self, op: str, left: Value, right: Value,
                             line: int) -> Value:
        lt, rt = left.vtype, right.vtype
        if op == "+" and lt.is_pointer and rt.is_int:
            return self._pointer_offset(left, right, negate=False)
        if op == "+" and lt.is_int and rt.is_pointer:
            return self._pointer_offset(right, left, negate=False)
        if op == "-" and lt.is_pointer and rt.is_int:
            return self._pointer_offset(left, right, negate=True)
        if op == "-" and lt.is_pointer and rt.is_pointer:
            result = self._emit_int_binary("-", left, right, line)
            reg = self._reg_of(result)
            self._emit(Op.SRAI, rd=reg, rs=reg, imm=3)
            result.vtype = INT
            return result
        if op in self._CMP_OPS and (lt.is_pointer and
                                    (rt.is_pointer or rt.is_int)
                                    or rt.is_pointer and lt.is_int):
            result = self._emit_int_binary(op, left, right, line)
            result.vtype = INT
            return result
        raise CompileError(f"invalid pointer operation {op!r} on "
                           f"{lt} and {rt}", line)

    def _pointer_offset(self, pointer: Value, index: Value,
                        negate: bool) -> Value:
        """pointer +/- index, scaling the index by the word size."""
        scaled = self._own_copy(index)
        sreg = self._reg_of(scaled, keep=(pointer,))
        self._emit(Op.SLLI, rd=sreg, rs=sreg, imm=3)
        preg = self._reg_of(pointer, keep=(scaled,))
        result = self._own_copy(pointer)
        dreg = self._reg_of(result, keep=(scaled,))
        self._emit(Op.SUB if negate else Op.ADD, rd=dreg, rs=preg, rt=sreg)
        result.vtype = pointer.vtype
        result.hint = pointer.hint
        self._free(scaled)
        return result

    def _eval_logical(self, expr: ast.Binary) -> Value:
        """Short-circuit && and ||, producing 0/1.

        The partial result is carried across the short-circuit branch in a
        frame slot rather than a register: the right-hand side may contain
        calls or spills, so no temporary register is guaranteed to hold the
        same value on both incoming paths of the merge label.
        """
        end = self._new_label("logic")
        slot = self._frame.alloc_spill()
        left = self._coerce(self._eval(expr.left), INT, expr.line)
        lreg = self._reg_of(left)
        flag = self._new_temp(INT, keep=(left,))
        self._emit(Op.SNE, rd=flag.reg, rs=lreg, rt=R.ZERO)
        self._free(left)
        self._emit(Op.SW, rt=flag.reg, rs=R.FP, imm=slot)
        if expr.op == "&&":
            self._emit(Op.BEQZ, rs=flag.reg, target=end)
        else:
            self._emit(Op.BNEZ, rs=flag.reg, target=end)
        self._free(flag)
        right = self._coerce(self._eval(expr.right), INT, expr.line)
        rreg = self._reg_of(right)
        rflag = self._new_temp(INT, keep=(right,))
        self._emit(Op.SNE, rd=rflag.reg, rs=rreg, rt=R.ZERO)
        self._free(right)
        self._emit(Op.SW, rt=rflag.reg, rs=R.FP, imm=slot)
        self._free(rflag)
        self._buf.append(Label(end))
        result = self._new_temp(INT)
        self._emit(Op.LW, rd=result.reg, rs=R.FP, imm=slot)
        self._frame.release_spill(slot)
        return result

    def _eval_assign(self, expr: ast.Assign,
                     want_value: bool = True) -> Optional[Value]:
        lvalue = self._eval_lvalue(expr.target)
        if expr.op == "=":
            value = self._eval(expr.value)
            if value is None:
                raise CompileError("assigning a void expression", expr.line)
            if not assignable(lvalue.vtype, value.vtype):
                raise CompileError(f"cannot assign {value.vtype} to "
                                   f"{lvalue.vtype}", expr.line)
            value = self._coerce_for_store(value, lvalue.vtype, expr.line)
        else:
            binop = expr.op[:-1]  # '+=' -> '+'
            current = self._load_lvalue(lvalue, keep_base=True)
            rhs = self._eval(expr.value)
            if rhs is None:
                raise CompileError("void operand", expr.line)
            value = self._apply_compound(binop, current, rhs, lvalue.vtype,
                                         expr.line)
        self._store_lvalue(lvalue, value)
        if want_value:
            return value
        self._free(value)
        self._release_lvalue(lvalue)
        return None

    def _apply_compound(self, op: str, current: Value, rhs: Value,
                        target_type: Type, line: int) -> Value:
        if target_type.is_pointer:
            if op not in ("+", "-"):
                raise CompileError(f"invalid pointer operator {op}=", line)
            rhs = self._coerce(rhs, INT, line)
            return self._pointer_offset(current, rhs, negate=(op == "-"))
        common = common_arithmetic_type(current.vtype, rhs.vtype)
        if common is None:
            raise CompileError(f"invalid operands to {op}=", line)
        current = self._coerce(current, common, line)
        rhs = self._coerce(rhs, common, line)
        if common.is_float:
            result = self._emit_float_binary(op, current, rhs, line)
        else:
            result = self._emit_int_binary(op, current, rhs, line)
        return self._coerce_for_store(result, target_type, line)

    def _coerce_for_store(self, value: Value, target: Type,
                          line: int) -> Value:
        if target.is_arithmetic and value.vtype != target:
            return self._coerce(value, target, line)
        if target.is_pointer:
            value = self._own_copy(value)
            value.vtype = target
        return value

    # -- lvalues -----------------------------------------------------------

    def _lvalue_of_symbol(self, symbol: LocalSymbol) -> LValue:
        if symbol.in_register:
            return LValue(kind="reg", vtype=symbol.var_type,
                          reg=symbol.reg, symbol=symbol)
        return LValue(kind="mem", vtype=symbol.var_type, base_kind="fp",
                      offset=symbol.frame_offset)

    def _eval_lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.Identifier):
            symbol = self._scope.lookup(expr.name)
            if symbol is not None:
                if symbol.is_array:
                    raise CompileError(f"array {expr.name!r} is not "
                                       "assignable", expr.line)
                return self._lvalue_of_symbol(symbol)
            gsym = self._table.globals.get(expr.name)
            if gsym is not None:
                if gsym.is_array:
                    raise CompileError(f"array {expr.name!r} is not "
                                       "assignable", expr.line)
                return LValue(kind="mem", vtype=gsym.var_type,
                              base_kind="gp", offset=gsym.offset - GP_OFFSET)
            raise CompileError(f"undeclared identifier {expr.name!r}",
                               expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._eval(expr.operand)
            if pointer is None or not pointer.vtype.is_pointer:
                raise CompileError("dereference of a non-pointer", expr.line)
            return LValue(kind="mem", vtype=pointer.vtype.pointee(),
                          base_kind="temp", base_value=pointer, offset=0)
        if isinstance(expr, ast.Index):
            return self._eval_index_lvalue(expr)
        raise CompileError("expression is not assignable", expr.line)

    def _eval_index_lvalue(self, expr: ast.Index) -> LValue:
        # A constant index into a directly named array folds to a plain
        # $fp/$gp-relative access, as an optimising compiler would emit.
        if isinstance(expr.base, ast.Identifier) \
                and isinstance(expr.index, ast.IntLiteral):
            displacement = expr.index.value * WORD_SIZE
            symbol = self._scope.lookup(expr.base.name)
            if symbol is not None and symbol.is_array:
                return LValue(kind="mem", vtype=symbol.var_type,
                              base_kind="fp",
                              offset=symbol.frame_offset + displacement)
            gsym = self._table.globals.get(expr.base.name)
            if gsym is not None and gsym.is_array:
                return LValue(kind="mem", vtype=gsym.var_type,
                              base_kind="gp",
                              offset=gsym.offset - GP_OFFSET + displacement)
        base = self._eval(expr.base)
        if base is None or not base.vtype.is_pointer:
            raise CompileError("subscript of a non-pointer", expr.line)
        elem = base.vtype.pointee()
        if isinstance(expr.index, ast.IntLiteral):
            # Constant index folds into the displacement, producing the
            # classic reg+imm addressing a compiler would emit.
            return LValue(kind="mem", vtype=elem, base_kind="temp",
                          base_value=base,
                          offset=expr.index.value * WORD_SIZE)
        index = self._eval(expr.index)
        if index is None or not index.vtype.is_int:
            raise CompileError("array index must be an int", expr.line)
        address = self._pointer_offset(base, index, negate=False)
        self._free(index)
        return LValue(kind="mem", vtype=elem, base_kind="temp",
                      base_value=address, offset=0)

    def _mem_base_reg(self, lvalue: LValue,
                      keep: Sequence[Value] = ()) -> int:
        if lvalue.base_kind == "fp":
            return R.FP
        if lvalue.base_kind == "gp":
            return R.GP
        return self._reg_of(lvalue.base_value, keep=keep)

    def _load_lvalue(self, lvalue: LValue,
                     keep_base: bool = False) -> Value:
        if lvalue.kind == "reg":
            return Value(lvalue.reg, lvalue.vtype, owned=False)
        temp = self._new_temp(
            lvalue.vtype,
            keep=(lvalue.base_value,) if lvalue.base_value else ())
        base = self._mem_base_reg(lvalue, keep=(temp,))
        op = Op.LF if lvalue.vtype.is_float else Op.LW
        self._emit(op, rd=temp.reg, rs=base, imm=lvalue.offset)
        if lvalue.base_kind == "temp":
            self._pending_tags.append((self._buf[-1],
                                       lvalue.base_value.hint))
        if not keep_base:
            self._release_lvalue(lvalue)
        return temp

    def _store_lvalue(self, lvalue: LValue, value: Value) -> None:
        reg = self._reg_of(value, keep=(lvalue.base_value,)
                           if lvalue.base_value else ())
        if lvalue.kind == "reg":
            op = Op.FMOV if lvalue.vtype.is_float else Op.MOV
            self._emit(op, rd=lvalue.reg, rs=reg)
            if lvalue.symbol is not None and lvalue.vtype.is_pointer:
                self._note_pointer_assignment(lvalue.symbol, value)
            return
        base = self._mem_base_reg(lvalue, keep=(value,))
        op = Op.SF if lvalue.vtype.is_float else Op.SW
        self._emit(op, rt=reg, rs=base, imm=lvalue.offset)
        if lvalue.base_kind == "temp":
            self._pending_tags.append((self._buf[-1],
                                       lvalue.base_value.hint))
        self._release_lvalue(lvalue)

    def _release_lvalue(self, lvalue: LValue) -> None:
        if lvalue.base_value is not None:
            self._free(lvalue.base_value)
            lvalue.base_value = None

    def _address_of(self, lvalue: LValue) -> Value:
        pointee = lvalue.vtype
        if lvalue.base_kind == "temp":
            base_value = lvalue.base_value
            result = self._own_copy(base_value)
            if lvalue.offset:
                reg = self._reg_of(result)
                self._emit(Op.ADDI, rd=reg, rs=reg, imm=lvalue.offset)
            result.vtype = pointee.pointer_to()
            return result
        temp = self._new_temp(pointee.pointer_to())
        base = R.FP if lvalue.base_kind == "fp" else R.GP
        self._emit(Op.LA, rd=temp.reg, rs=base, imm=lvalue.offset)
        temp.hint = "stack" if lvalue.base_kind == "fp" else "nonstack"
        return temp

    # -- conversions ---------------------------------------------------------

    def _coerce(self, value: Value, target: Type, line: int) -> Value:
        if value.vtype == target:
            return value
        if value.vtype.is_pointer and target.is_int:
            value = self._own_copy(value)
            value.vtype = INT
            return value
        if value.vtype.is_int and target.is_pointer:
            value = self._own_copy(value)
            value.vtype = target
            return value
        if value.vtype.is_int and target.is_float:
            src = self._reg_of(value)
            result = self._new_temp(FLOAT, keep=(value,))
            self._emit(Op.CVTIF, rd=result.reg, rs=src)
            self._free(value)
            return result
        if value.vtype.is_float and target.is_int:
            src = self._reg_of(value)
            result = self._new_temp(INT, keep=(value,))
            self._emit(Op.CVTFI, rd=result.reg, rs=src)
            self._free(value)
            return result
        if value.vtype.is_pointer and target.is_pointer:
            value = self._own_copy(value)
            value.vtype = target
            return value
        raise CompileError(f"cannot convert {value.vtype} to {target}", line)

    def _cast_value(self, value: Value, target: Type, line: int) -> Value:
        if target.is_void:
            self._free(value)
            return None
        return self._coerce(value, target, line)

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, expr: ast.Call,
                   want_value: bool = True) -> Optional[Value]:
        if expr.name in BUILTINS:
            return self._eval_builtin(expr, want_value)
        # A call through a pointer *variable* is an indirect call
        # (interpreter dispatch); a known function name is direct.
        if self._scope.lookup(expr.name) is not None \
                or (expr.name in self._table.globals
                    and expr.name not in self._table.functions):
            return self._eval_indirect_call(expr, want_value)
        signature = self._table.functions.get(expr.name)
        if signature is None:
            raise CompileError(f"call to undefined function {expr.name!r}",
                               expr.line)
        if len(expr.args) != len(signature.param_types):
            raise CompileError(
                f"{expr.name}() expects {len(signature.param_types)} "
                f"arguments, got {len(expr.args)}", expr.line)
        arg_values: List[Value] = []
        for arg, ptype in zip(expr.args, signature.param_types):
            value = self._eval(arg)
            if value is None:
                raise CompileError("void argument", arg.line)
            if not assignable(ptype, value.vtype):
                raise CompileError(f"cannot pass {value.vtype} as {ptype}",
                                   arg.line)
            value = self._own_copy(self._coerce(value, ptype, arg.line)
                                   if ptype.is_arithmetic else value)
            arg_values.append(value)
        self._spill_live(keep=arg_values)
        stack_args = arg_values[MAX_REG_ARGS:]
        if stack_args:
            self._emit(Op.ADDI, rd=R.SP, rs=R.SP,
                       imm=-len(stack_args) * WORD_SIZE)
            for i, value in enumerate(stack_args):
                reg = self._reg_of(value)
                op = Op.SF if value.is_fp else Op.SW
                self._emit(op, rt=reg, rs=R.SP, imm=i * WORD_SIZE)
        for i, value in enumerate(arg_values[:MAX_REG_ARGS]):
            reg = self._reg_of(value, keep=arg_values)
            if value.is_fp:
                self._emit(Op.FMOV, rd=R.FARG_REGS[i], rs=reg)
            else:
                self._emit(Op.MOV, rd=R.ARG_REGS[i], rs=reg)
        for value in arg_values:
            self._free(value)
        self._emit(Op.JAL, target=expr.name)
        if stack_args:
            self._emit(Op.ADDI, rd=R.SP, rs=R.SP,
                       imm=len(stack_args) * WORD_SIZE)
        return self._call_result(signature.return_type, want_value)

    def _eval_indirect_call(self, expr: ast.Call,
                            want_value: bool) -> Optional[Value]:
        """Call through a code pointer held in a variable (JALR).

        Signatures are not tracked through pointers; indirect callees
        take up to four int/pointer arguments and return int - the
        uniform-dispatch-table shape interpreters use.
        """
        if len(expr.args) > MAX_REG_ARGS:
            raise CompileError("indirect calls take at most "
                               f"{MAX_REG_ARGS} arguments", expr.line)
        target = self._eval(ast.Identifier(line=expr.line, name=expr.name))
        if not target.vtype.is_pointer:
            raise CompileError(f"{expr.name!r} is not callable (not a "
                               "pointer)", expr.line)
        target = self._own_copy(target)
        arg_values: List[Value] = [target]
        for arg in expr.args:
            value = self._eval(arg)
            if value is None or value.vtype.is_float:
                raise CompileError("indirect-call arguments must be int "
                                   "or pointer", arg.line)
            arg_values.append(self._own_copy(value))
        self._spill_live(keep=arg_values)
        for i, value in enumerate(arg_values[1:]):
            reg = self._reg_of(value, keep=arg_values)
            self._emit(Op.MOV, rd=R.ARG_REGS[i], rs=reg)
        target_reg = self._reg_of(target, keep=arg_values)
        self._emit(Op.JALR, rs=target_reg)
        for value in arg_values:
            self._free(value)
        return self._call_result(INT, want_value)

    def _call_result(self, return_type: Type,
                     want_value: bool) -> Optional[Value]:
        if return_type.is_void or not want_value:
            return None
        result = self._new_temp(return_type)
        if return_type.is_float:
            self._emit(Op.FMOV, rd=result.reg, rs=R.FV0)
        else:
            self._emit(Op.MOV, rd=result.reg, rs=R.V0)
        return result

    def _note_pointer_assignment(self, symbol: LocalSymbol,
                                 value: Value) -> None:
        """Merge one pointer assignment into the symbol's UD verdict."""
        hint = value.hint
        if hint is symbol:
            return      # self-update (e.g. p = p + 1) keeps the verdict
        if isinstance(hint, LocalSymbol):
            hint = None  # cross-symbol chains: conservatively unknown
        symbol.note_pointer_assignment(hint)

    def _resolve_pending_tags(self) -> None:
        """Finalise Figure-6 region tags for pointer-based accesses.

        Deferred until the whole function is compiled so that a later
        conflicting assignment (e.g. in a loop) poisons tags issued
        earlier - matching a UD-chain analysis rather than a single
        forward pass."""
        for instruction, hint in self._pending_tags:
            if isinstance(hint, LocalSymbol):
                hint = hint.final_pointer_hint
            if hint == "stack":
                instruction.region_tag = True
            elif hint == "nonstack":
                instruction.region_tag = False
        self._pending_tags = []

    def _eval_builtin(self, expr: ast.Call,
                      want_value: bool) -> Optional[Value]:
        name = expr.name
        if name == "sqrt":
            if len(expr.args) != 1:
                raise CompileError("sqrt() takes one argument", expr.line)
            value = self._coerce(self._eval(expr.args[0]), FLOAT, expr.line)
            value = self._own_copy(value)
            reg = self._reg_of(value)
            self._emit(Op.FSQRT, rd=reg, rs=reg)
            return value
        arity = {"malloc": 1, "free": 1, "print_int": 1, "print_float": 1}
        if len(expr.args) != arity[name]:
            raise CompileError(f"{name}() takes {arity[name]} argument(s)",
                               expr.line)
        arg = self._eval(expr.args[0])
        if arg is None:
            raise CompileError("void argument", expr.line)
        if name == "print_float":
            arg = self._coerce(arg, FLOAT, expr.line)
        elif name == "malloc":
            arg = self._coerce(arg, INT, expr.line)
        self._spill_live(keep=(arg,))
        reg = self._reg_of(arg)
        if arg.is_fp:
            self._emit(Op.FMOV, rd=R.FARG_REGS[0], rs=reg)
        else:
            self._emit(Op.MOV, rd=R.A0, rs=reg)
        self._free(arg)
        codes = {"malloc": syscalls.SYS_MALLOC, "free": syscalls.SYS_FREE,
                 "print_int": syscalls.SYS_PRINT_INT,
                 "print_float": syscalls.SYS_PRINT_FLOAT}
        self._emit(Op.LI, rd=R.V0, imm=codes[name])
        self._emit(Op.SYSCALL)
        if name == "malloc" and want_value:
            result = self._new_temp(Type("void", 1))
            self._emit(Op.MOV, rd=result.reg, rs=R.V0)
            result.vtype = INT.pointer_to()
            result.hint = "nonstack"
            return result
        return None


def _collect_address_taken(func: ast.FuncDef) -> Set[str]:
    """Names whose address is taken anywhere in the function body."""
    taken: Set[str] = set()

    def walk(node) -> None:
        if node is None:
            return
        if isinstance(node, ast.Unary) and node.op == "&":
            if isinstance(node.operand, ast.Identifier):
                taken.add(node.operand.name)
            walk(node.operand)
            return
        if isinstance(node, list):
            for item in node:
                walk(item)
            return
        if isinstance(node, ast.Node):
            for field_name in vars(node):
                walk(getattr(node, field_name))

    walk(func.body)
    return taken


def _scan_calls(func: ast.FuncDef) -> Tuple[bool, bool]:
    """(has_user_calls, has_builtin_calls) for a function body.

    A function with no user calls is a *leaf*: its return address and the
    caller's frame pointer are never clobbered, so the compiler can skip
    the $ra/$fp saves, keep parameters in their argument registers, and
    house locals in caller-saved registers - exactly what -O3 compilers
    of the paper's era did, and a large part of why stack traffic is not
    even higher than the (already high) fractions the paper reports.
    """
    has_user = False
    has_builtin = False

    def walk(node) -> None:
        nonlocal has_user, has_builtin
        if node is None:
            return
        if isinstance(node, ast.Call):
            if node.name in BUILTINS:
                has_builtin = True
            else:
                has_user = True
            for arg in node.args:
                walk(arg)
            return
        if isinstance(node, list):
            for item in node:
                walk(item)
            return
        if isinstance(node, ast.Node):
            for field_name in vars(node):
                walk(getattr(node, field_name))

    walk(func.body)
    return has_user, has_builtin
