"""MiniC compiler: symbols, code generation, linking."""

from repro.compiler.codegen import CodeGen
from repro.compiler.linker import CompiledProgram, compile_source, link
from repro.compiler.symbols import CompileError, GlobalTable

__all__ = [
    "CodeGen",
    "CompiledProgram",
    "compile_source",
    "link",
    "CompileError",
    "GlobalTable",
]
