"""Symbol tables and stack-frame layout for the MiniC compiler.

Storage policy (mirrors what a late-1990s optimising compiler such as the
paper's EGCS -O3 would do, which is what shapes the stack-access profile
the paper measures):

* Scalar parameters and scalar locals are promoted to callee-saved
  registers ($s0-$s7, $f20-$f27) in declaration order until the register
  supply runs out.
* Address-taken scalars, arrays, and overflow scalars live in the stack
  frame and are accessed $fp-relative.
* Used callee-saved registers are saved in the prologue and restored in
  the epilogue - this save/restore traffic plus spills and stack-passed
  arguments is exactly the "S"-class traffic of the paper's Figure 2.

Frame layout (offsets relative to ``$fp``, which equals ``$sp`` at entry)::

    fp + 8*i   : i-th stack-passed incoming argument (i >= 0)
    fp -  8    : saved $ra
    fp - 16    : saved caller $fp
    fp - 24 .. : callee-saved register save area (fixed reservation)
    below      : local variable slots, then expression spill slots
    sp = fp - frame_size
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lang.types import Type
from repro.runtime.layout import WORD_SIZE

#: Words reserved at the top of every frame: $ra, $fp, 8 integer + 8 FP
#: callee-saved registers.  Reserving the worst case keeps all $fp-relative
#: offsets computable before the body has been generated.
SAVE_AREA_WORDS = 2 + 8 + 8

RA_SLOT_OFFSET = -WORD_SIZE
FP_SLOT_OFFSET = -2 * WORD_SIZE


def saved_reg_slot(index: int) -> int:
    """$fp-relative offset of the index-th callee-saved register slot."""
    return -(3 + index) * WORD_SIZE


class CompileError(Exception):
    """Raised on semantically invalid MiniC."""

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


@dataclass
class GlobalSymbol:
    """A global variable living in the data segment."""

    name: str
    var_type: Type
    offset: int                     # byte offset from DATA_BASE
    size_words: int
    is_array: bool
    init_values: List[object]

    @property
    def value_type(self) -> Type:
        """Type of the expression naming this symbol (arrays decay)."""
        return self.var_type.pointer_to() if self.is_array else self.var_type


@dataclass
class LocalSymbol:
    """A function-scope variable: register-resident or frame-resident."""

    name: str
    var_type: Type
    is_array: bool = False
    size_words: int = 1
    reg: Optional[int] = None       # callee-saved register if promoted
    frame_offset: Optional[int] = None  # $fp-relative byte offset otherwise
    #: Flow-insensitive pointer provenance for the Figure-6 compiler
    #: analysis: "unset" until the first assignment, then "stack" /
    #: "nonstack" if every assignment agrees, else "conflict".
    pointer_hint: str = "unset"

    @property
    def in_register(self) -> bool:
        return self.reg is not None

    @property
    def value_type(self) -> Type:
        return self.var_type.pointer_to() if self.is_array else self.var_type

    def note_pointer_assignment(self, hint: Optional[str]) -> None:
        """Merge one assignment's provenance into the symbol's state."""
        if hint is None:
            self.pointer_hint = "conflict"
        elif self.pointer_hint == "unset":
            self.pointer_hint = hint
        elif self.pointer_hint != hint:
            self.pointer_hint = "conflict"

    @property
    def final_pointer_hint(self) -> Optional[str]:
        """The provenance a UD-chain analysis would conclude."""
        if self.pointer_hint in ("stack", "nonstack"):
            return self.pointer_hint
        return None


class Scope:
    """A lexical scope mapping names to local symbols."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self._symbols: Dict[str, LocalSymbol] = {}

    def declare(self, symbol: LocalSymbol, line: int = 0) -> None:
        if symbol.name in self._symbols:
            raise CompileError(
                f"redeclaration of {symbol.name!r} in the same scope", line
            )
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[LocalSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None


@dataclass
class FunctionSignature:
    name: str
    return_type: Type
    param_types: List[Type]


class GlobalTable:
    """All file-scope symbols: globals and function signatures."""

    def __init__(self) -> None:
        self.globals: Dict[str, GlobalSymbol] = {}
        self.functions: Dict[str, FunctionSignature] = {}
        self._next_offset = 0

    def declare_global(self, name: str, var_type: Type, size_words: int,
                       is_array: bool, init_values: List[object],
                       line: int = 0) -> GlobalSymbol:
        if name in self.globals or name in self.functions:
            raise CompileError(f"redefinition of {name!r}", line)
        symbol = GlobalSymbol(
            name=name, var_type=var_type, offset=self._next_offset,
            size_words=size_words, is_array=is_array,
            init_values=init_values,
        )
        self.globals[name] = symbol
        self._next_offset += size_words * WORD_SIZE
        return symbol

    def declare_function(self, signature: FunctionSignature,
                         line: int = 0) -> None:
        if signature.name in self.functions or signature.name in self.globals:
            raise CompileError(f"redefinition of {signature.name!r}", line)
        self.functions[signature.name] = signature

    @property
    def data_size_bytes(self) -> int:
        return self._next_offset


class FrameBuilder:
    """Allocates local-variable and spill slots below the save area."""

    def __init__(self) -> None:
        self._next_offset = -SAVE_AREA_WORDS * WORD_SIZE
        self._spill_slots: List[int] = []   # free list of spill offsets
        self._spill_count = 0

    def alloc_local(self, size_words: int) -> int:
        """Reserve a local slot; returns its $fp-relative offset."""
        self._next_offset -= size_words * WORD_SIZE
        return self._next_offset

    def alloc_spill(self) -> int:
        """Get a spill slot (recycled when released)."""
        if self._spill_slots:
            return self._spill_slots.pop()
        self._next_offset -= WORD_SIZE
        self._spill_count += 1
        return self._next_offset

    def release_spill(self, offset: int) -> None:
        self._spill_slots.append(offset)

    @property
    def frame_size(self) -> int:
        """Total frame size in bytes, rounded to 16-byte alignment."""
        size = -self._next_offset
        return (size + 15) & ~15
