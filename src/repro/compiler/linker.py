"""Linker: flattens labelled instruction buffers into an executable image.

Assigns every instruction a PC in the text segment, resolves label targets
to absolute PCs, and bundles the global-variable table so the loader can
initialise the data segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.compiler.codegen import BufferItem, CodeGen, Label
from repro.compiler.symbols import CompileError, GlobalTable
from repro.isa import registers
from repro.isa.instructions import Instruction, Op, Program
from repro.lang.parser import parse
from repro.runtime.layout import TEXT_BASE

_TARGETED_OPS = frozenset({Op.J, Op.JAL, Op.BEQZ, Op.BNEZ})
_SP, _FP, _GP, _ZERO = registers.SP, registers.FP, registers.GP, \
    registers.ZERO


@dataclass
class CompiledProgram:
    """A fully linked MiniC program ready to load and execute."""

    name: str
    program: Program
    globals: GlobalTable

    @property
    def entry_pc(self) -> int:
        return self.program.pc_of_label("__start")

    @property
    def text_size(self) -> int:
        return len(self.program)


def link(buffer: List[BufferItem], table: GlobalTable,
         name: str = "program", text_base: int = TEXT_BASE) -> CompiledProgram:
    """Resolve labels in a code buffer and produce a CompiledProgram."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for item in buffer:
        if isinstance(item, Label):
            if item.name in labels:
                raise CompileError(f"duplicate label {item.name!r}")
            labels[item.name] = len(instructions)
        else:
            instructions.append(item)
    program = Program(instructions=instructions, labels=labels,
                      text_base=text_base)
    for instr in instructions:
        if instr.target is not None:
            if instr.target not in labels:
                raise CompileError(f"undefined label {instr.target!r}")
            resolved = program.pc_of_index(labels[instr.target])
            instr.resolved_target = resolved
            if instr.op is Op.LFA:
                instr.imm = resolved   # function address materialises here
        elif instr.op in _TARGETED_OPS:
            raise CompileError(f"{instr.op.name} without a target")
        # Figure-6 rules 1-3: the addressing mode itself classifies the
        # region; pointer-based accesses keep any tag the code
        # generator's provenance analysis assigned.
        if instr.is_mem and instr.region_tag is None:
            if instr.rs in (_SP, _FP):
                instr.region_tag = True
            elif instr.rs in (_GP, _ZERO):
                instr.region_tag = False
    return CompiledProgram(name=name, program=program, globals=table)


def compile_source(source: str, name: str = "program") -> CompiledProgram:
    """Compile MiniC source text all the way to a linked program."""
    unit = parse(source)
    buffer, table = CodeGen(unit, name).compile()
    return link(buffer, table, name)
