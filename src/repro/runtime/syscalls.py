"""Syscall interface between guest MiniC programs and the run-time system.

A syscall is invoked with its service code in ``$v0`` and its argument in
``$a0`` (or ``$f12`` for floating-point arguments); results come back in
``$v0``.  The functional simulator services these against the Python-side
run-time (heap allocator, output capture).
"""

from __future__ import annotations

SYS_EXIT = 1
SYS_PRINT_INT = 2
SYS_PRINT_FLOAT = 3
SYS_MALLOC = 4
SYS_FREE = 5

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_PRINT_INT: "print_int",
    SYS_PRINT_FLOAT: "print_float",
    SYS_MALLOC: "malloc",
    SYS_FREE: "free",
}
