"""Guest run-time system: address-space layout, memory, heap allocator."""

from repro.runtime.allocator import AllocationError, HeapAllocator
from repro.runtime.layout import (
    DATA_BASE,
    DATA_LIMIT,
    GP_VALUE,
    HEAP_BASE,
    HEAP_LIMIT,
    STACK_BASE,
    STACK_LIMIT,
    TEXT_BASE,
    WORD_SIZE,
    Region,
    classify_address,
    is_stack_address,
)
from repro.runtime.memory import Memory, MemoryError_

__all__ = [
    "AllocationError",
    "HeapAllocator",
    "DATA_BASE",
    "DATA_LIMIT",
    "GP_VALUE",
    "HEAP_BASE",
    "HEAP_LIMIT",
    "STACK_BASE",
    "STACK_LIMIT",
    "TEXT_BASE",
    "WORD_SIZE",
    "Region",
    "classify_address",
    "is_stack_address",
    "Memory",
    "MemoryError_",
]
