"""Virtual-address-space layout and region classification.

The paper divides a program's memory space into *data*, *heap*, and *stack*
regions (Section 3); the text region holds instructions and is served by a
separate instruction cache.  We use a fixed SimpleScalar-like layout so that
a single address-range test classifies the region of any access - this is
the ground truth against which the access-region predictor is scored, and
the single bit the paper attaches to each TLB entry.
"""

from __future__ import annotations

import enum

#: Word size in bytes.  The ISA loads and stores 8-byte words only (ints,
#: pointers, and doubles are all one word), which keeps the memory model
#: simple without changing any region-locality behaviour.
WORD_SIZE = 8

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
DATA_LIMIT = 0x2000_0000
HEAP_BASE = 0x2000_0000
HEAP_LIMIT = 0x7000_0000
STACK_BASE = 0x7FFF_C000  # initial $sp; the stack grows down
STACK_LIMIT = 0x7000_0000

#: $gp points into the middle of the data segment so that gp-relative
#: 16-bit displacements reach a reasonable span of globals.
GP_OFFSET = 0x8000
GP_VALUE = DATA_BASE + GP_OFFSET


class Region(enum.Enum):
    """Memory region of an accessed address."""

    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    TEXT = "text"

    @property
    def is_stack(self) -> bool:
        return self is Region.STACK


def classify_address(addr: int) -> Region:
    """Map an address to its region under the fixed layout.

    This mirrors the run-time system's page-table knowledge: the paper's
    verification step reads one region bit per TLB entry, recorded when the
    page was allocated.
    """
    if STACK_LIMIT <= addr:
        return Region.STACK
    if HEAP_BASE <= addr < HEAP_LIMIT:
        return Region.HEAP
    if DATA_BASE <= addr < DATA_LIMIT:
        return Region.DATA
    if TEXT_BASE <= addr < DATA_BASE:
        return Region.TEXT
    raise ValueError(f"address {addr:#x} is outside every mapped region")


def is_stack_address(addr: int) -> bool:
    """Fast stack / non-stack test (the bit the ARPT predicts)."""
    return addr >= STACK_LIMIT
