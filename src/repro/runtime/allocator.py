"""First-fit heap allocator backing the guest ``malloc``/``free`` builtins.

MiniC's ``malloc`` compiles to a syscall; the run-time system (this module)
services it, handing out addresses from the heap segment.  A real free-list
allocator (first-fit with coalescing, like a classic K&R malloc) is used
rather than a bump pointer so that allocation-heavy workloads (the lisp
interpreter, the object database) produce realistic heap address reuse -
the address *stream*, not just the region, shapes cache behaviour in the
paper's Figure 8 experiments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.runtime.layout import HEAP_BASE, HEAP_LIMIT, WORD_SIZE


class AllocationError(Exception):
    """Raised when the heap is exhausted or on invalid frees."""


class HeapAllocator:
    """First-fit free-list allocator over the heap segment.

    Sizes are in *words*.  Blocks are word-aligned by construction; block
    headers are bookkeeping-only (kept in Python dicts, not guest memory)
    so that guest heap accesses correspond 1:1 to program-level accesses.
    """

    def __init__(self, base: int = HEAP_BASE, limit: int = HEAP_LIMIT) -> None:
        if base % WORD_SIZE or limit % WORD_SIZE:
            raise ValueError("heap bounds must be word-aligned")
        self._base = base
        self._limit = limit
        self._brk = base                      # high-water mark
        self._free: List[Tuple[int, int]] = []  # (addr, size_words), sorted
        self._live: Dict[int, int] = {}       # addr -> size_words
        self.total_allocations = 0
        self.total_frees = 0

    @property
    def high_water_mark(self) -> int:
        """Highest heap address ever handed out (exclusive)."""
        return self._brk

    @property
    def live_blocks(self) -> int:
        return len(self._live)

    def allocate(self, nwords: int) -> int:
        """Allocate ``nwords`` words; returns the block's base address."""
        if nwords <= 0:
            raise AllocationError(f"invalid allocation size: {nwords}")
        self.total_allocations += 1
        for i, (addr, size) in enumerate(self._free):
            if size >= nwords:
                if size == nwords:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + nwords * WORD_SIZE, size - nwords)
                self._live[addr] = nwords
                return addr
        addr = self._brk
        new_brk = addr + nwords * WORD_SIZE
        if new_brk > self._limit:
            raise AllocationError("heap exhausted")
        self._brk = new_brk
        self._live[addr] = nwords
        return addr

    def free(self, addr: int) -> None:
        """Release a previously allocated block, coalescing neighbours."""
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self.total_frees += 1
        self._insert_free(addr, size)

    def _insert_free(self, addr: int, size: int) -> None:
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        # Merge with successor first, then predecessor, so indices stay valid.
        if index + 1 < len(self._free):
            addr, size = self._free[index]
            naddr, nsize = self._free[index + 1]
            if addr + size * WORD_SIZE == naddr:
                self._free[index] = (addr, size + nsize)
                self._free.pop(index + 1)
        if index > 0:
            paddr, psize = self._free[index - 1]
            addr, size = self._free[index]
            if paddr + psize * WORD_SIZE == addr:
                self._free[index - 1] = (paddr, psize + size)
                self._free.pop(index)

    def block_size(self, addr: int) -> int:
        """Size in words of a live block (for diagnostics)."""
        if addr not in self._live:
            raise AllocationError(f"{addr:#x} is not a live block")
        return self._live[addr]
