"""Word-addressed architectural memory.

Memory is a sparse map from word-aligned addresses to Python values.  The
compiler only ever emits word-granularity accesses (see
:mod:`repro.runtime.layout`), so a word map is both simpler and faster than
a byte-image, and - crucially for this reproduction - the *addresses* of
accesses (which drive region classification, the predictor, and the caches)
are exact.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.runtime.layout import WORD_SIZE, classify_address

Value = Union[int, float]


class MemoryError_(Exception):
    """Raised on misaligned or unmapped accesses."""


class Memory:
    """Sparse word-addressed memory with bounds/alignment checking."""

    def __init__(self) -> None:
        self._words: Dict[int, Value] = {}

    def _check(self, addr: int) -> None:
        if addr % WORD_SIZE != 0:
            raise MemoryError_(f"misaligned access at {addr:#x}")
        # classify_address raises for addresses outside every region; this
        # catches wild pointers produced by buggy guest programs early.
        classify_address(addr)

    def load(self, addr: int) -> Value:
        """Read one word; uninitialised memory reads as integer 0."""
        self._check(addr)
        return self._words.get(addr, 0)

    def store(self, addr: int, value: Value) -> None:
        """Write one word."""
        self._check(addr)
        self._words[addr] = value

    def load_block(self, addr: int, nwords: int) -> list:
        return [self.load(addr + i * WORD_SIZE) for i in range(nwords)]

    def store_block(self, addr: int, values) -> None:
        for i, value in enumerate(values):
            self.store(addr + i * WORD_SIZE, value)

    def __len__(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def footprint_bytes(self) -> int:
        return len(self._words) * WORD_SIZE
