"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run <file.mc>``
    Compile and execute a MiniC source file; print its output.
``disasm <file.mc>``
    Compile a MiniC source file and print the generated assembly.
``workloads``
    List the built-in workload suite.
``profile [--scale S] [names...]``
    Region-locality profile (Figure 2 / Table 2 style) per workload.
``predict [--scale S] [--scheme NAME] [names...]``
    Access-region prediction accuracy per workload.
``timing [--scale S] [names...]``
    Figure 8 configurations on the chosen workloads.
``experiment <id> [--scale S] [--jobs N] [--verbose]``
    Run one paper experiment (table1, figure2, table2, figure4,
    table3, figure5, section33, figure8) or ablation/extension
    (a1..a8) and print its table.  ``--jobs N`` fans independent
    workload cells across N processes; ``--verbose`` prints a
    per-stage timing report to stderr.

The trace-consuming commands (``profile``, ``predict``, ``timing``,
``experiment``) accept ``--trace-cache DIR`` (default: the
``REPRO_TRACE_CACHE`` environment variable) to archive functional
traces on disk and skip re-simulation on later runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import eval as evaluation
from repro.compiler import compile_source
from repro.cpu import run_program
from repro.eval import engine
from repro.predictor import evaluate_scheme
from repro.timing import figure8_configs, simulate
from repro.trace import cache as trace_cache
from repro.trace.regions import region_breakdown
from repro.trace.windows import window_stats
from repro.workloads import suite

_EXPERIMENTS = {
    "table1": evaluation.table1,
    "figure2": evaluation.figure2,
    "table2": evaluation.table2,
    "figure4": evaluation.figure4,
    "table3": evaluation.table3,
    "figure5": evaluation.figure5,
    "section33": evaluation.section33,
    "figure8": evaluation.figure8,
    "a1": evaluation.ablation_two_bit,
    "a2": evaluation.ablation_context_bits,
    "a3": evaluation.ablation_lvc_size,
    "a4": evaluation.ablation_static_hints,
    "a5": evaluation.ablation_banked_cache,
    "a6": evaluation.ablation_heap_decoupling,
    "a7": evaluation.ablation_front_end,
    "a8": evaluation.ablation_hint_steering,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access Region Locality (MICRO 1999) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile and execute a MiniC file")
    run.add_argument("source", type=Path)

    disasm = sub.add_parser("disasm", help="print generated assembly")
    disasm.add_argument("source", type=Path)

    sub.add_parser("workloads", help="list the workload suite")

    def add_cache_flag(command) -> None:
        command.add_argument(
            "--trace-cache", metavar="DIR", default=None,
            help="archive functional traces in DIR and reuse them on "
                 f"later runs (default: ${trace_cache.ENV_VAR})")

    profile = sub.add_parser("profile", help="region-locality profile")
    profile.add_argument("names", nargs="*", default=[])
    profile.add_argument("--scale", type=float, default=0.5)
    add_cache_flag(profile)

    predict = sub.add_parser("predict", help="prediction accuracy")
    predict.add_argument("names", nargs="*", default=[])
    predict.add_argument("--scale", type=float, default=0.5)
    predict.add_argument("--scheme", default="1bit-hybrid")
    add_cache_flag(predict)

    timing = sub.add_parser("timing", help="Figure 8 configurations")
    timing.add_argument("names", nargs="*", default=[])
    timing.add_argument("--scale", type=float, default=0.25)
    add_cache_flag(timing)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run independent workload cells across N processes "
             f"(default: ${engine.JOBS_ENV_VAR} or 1)")
    experiment.add_argument(
        "--verbose", action="store_true",
        help="print a per-stage timing report (functional sim vs. "
             "trace-cache I/O vs. replay) to stderr")
    add_cache_flag(experiment)

    return parser


def _apply_trace_cache(args) -> None:
    """Activate ``--trace-cache DIR`` for this process, when given.

    Without the flag the ``REPRO_TRACE_CACHE`` environment variable
    (read lazily by :func:`repro.trace.cache.active_cache`) still
    applies.
    """
    if getattr(args, "trace_cache", None):
        trace_cache.configure(args.trace_cache)


def _resolve_names(names: List[str]) -> List[str]:
    if not names:
        return list(suite.ALL_WORKLOADS)
    for name in names:
        suite.spec(name)   # raises with the known-name list
    return names


def _cmd_run(args) -> int:
    compiled = compile_source(args.source.read_text(), args.source.stem)
    trace = run_program(compiled)
    for value in trace.output:
        print(value)
    print(f"# {len(trace):,} instructions, exit code {trace.exit_code}",
          file=sys.stderr)
    return trace.exit_code


def _cmd_disasm(args) -> int:
    compiled = compile_source(args.source.read_text(), args.source.stem)
    program = compiled.program
    by_index = {index: name for name, index in program.labels.items()}
    for index, instruction in enumerate(program.instructions):
        if index in by_index:
            print(f"{by_index[index]}:")
        print(f"  {program.pc_of_index(index):#010x}  {instruction}")
    return 0


def _cmd_workloads(_args) -> int:
    print(f"{'name':<12} {'mirrors':<12} {'kind':<5} description")
    for name in suite.ALL_WORKLOADS:
        spec = suite.spec(name)
        print(f"{name:<12} {spec.mirrors:<12} {spec.kind:<5} "
              f"{spec.description}")
    return 0


def _cmd_profile(args) -> int:
    _apply_trace_cache(args)
    names = _resolve_names(args.names)
    for name in names:
        trace = engine.trace_for(name, args.scale)
        breakdown = region_breakdown(trace)
        w32 = window_stats(trace, 32)
        classes = " ".join(
            f"{cls}:{100 * breakdown.static_fraction(cls):.0f}%"
            for cls in ("D", "H", "S"))
        print(f"{name:<12} {len(trace):>9,} insns  {classes}  "
              f"multi:{100 * breakdown.multi_region_static_fraction:.1f}%  "
              f"win32 D/H/S: {w32.data.mean:.1f}/{w32.heap.mean:.1f}/"
              f"{w32.stack.mean:.1f}")
        suite.evict(name, args.scale)
    return 0


def _cmd_predict(args) -> int:
    _apply_trace_cache(args)
    names = _resolve_names(args.names)
    for name in names:
        trace = engine.trace_for(name, args.scale)
        result = evaluate_scheme(trace, args.scheme)
        print(f"{name:<12} {args.scheme:<12} "
              f"accuracy {100 * result.accuracy:6.2f}%  "
              f"mode-definitive {100 * result.definitive_fraction:5.1f}%  "
              f"ARPT entries {result.occupancy}")
        suite.evict(name, args.scale)
    return 0


def _cmd_timing(args) -> int:
    _apply_trace_cache(args)
    names = _resolve_names(args.names)
    for name in names:
        trace = engine.trace_for(name, args.scale)
        print(f"{name} ({len(trace):,} instructions):")
        baseline: Optional[int] = None
        for config in figure8_configs():
            result = simulate(trace, config)
            if baseline is None:
                baseline = result.cycles
            print(f"  {config.name:<12} ipc {result.ipc:5.2f}  "
                  f"vs (2+0): {baseline / result.cycles:.3f}")
        suite.evict(name, args.scale)
    return 0


def _cmd_experiment(args) -> int:
    _apply_trace_cache(args)
    if args.jobs is not None:
        engine.set_jobs(args.jobs)
    engine.reset_stage_times()
    result = _EXPERIMENTS[args.id](scale=args.scale)
    print(result.render())
    if args.verbose:
        # stderr, so stdout stays byte-identical across --jobs levels.
        print(engine.render_stage_report(), file=sys.stderr)
    return 0


_HANDLERS = {
    "run": _cmd_run,
    "disasm": _cmd_disasm,
    "workloads": _cmd_workloads,
    "profile": _cmd_profile,
    "predict": _cmd_predict,
    "timing": _cmd_timing,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
