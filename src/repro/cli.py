"""Command-line interface: ``python -m repro <command>``.

Every query-shaped command routes through the :class:`repro.api.Session`
facade - the same facade the ``repro serve`` daemon answers from - so
batch stdout and served payloads are byte-identical by construction.

Commands
--------

``run <file.mc>``
    Compile and execute a MiniC source file; print its output.
``disasm <file.mc>``
    Compile a MiniC source file and print the generated assembly.
``workloads``
    List the built-in workload suite.
``regions [names...]``
    Region-locality profile (Figure 2 / Table 2 style) per workload
    (named ``profile`` before the span profiler took that name).
``predict [--scheme NAME] [names...]``
    Access-region prediction accuracy per workload.
``timing [names...]``
    Figure 8 configurations on the chosen workloads.
``experiment <id> [names...]``
    Run one paper experiment (table1, figure2, table2, figure4,
    table3, figure5, section33, figure8) or ablation/extension
    (a1..a8) and print its table.  Every experiment id is also a
    top-level alias: ``repro figure4`` == ``repro experiment figure4``.
``stats <id> [names...] [--format table|json|csv] [--check]``
    Run an experiment with metrics collection enabled and print the
    collected per-cell metrics.  ``--check`` exits non-zero if any
    registered metric is NaN or negative.
``profile <run...> [--chrome FILE] [--check] [--request ID]``
    Aggregate ``--trace-spans`` run directories into a wall-clock
    span tree, optionally export Chrome trace-event / Perfetto JSON,
    and (``--check``) gate against the recorded perf baseline.
    ``--request ID`` instead merges the spans stamped with one client
    ``request_id`` across *all* the given runs into a single
    wall-clock timeline - e.g. the journals of two supervised daemon
    incarnations either side of a crash.
``serve [--port P] [--warm W[@S] ...] [--telemetry FILE]``
    Long-running daemon keeping traces and predictor state resident
    in memory, answering predict/regions/timing/experiment queries
    from many concurrent clients over a line-JSON TCP/Unix socket
    (admission control, latency histograms, health/stats/metrics
    endpoints; ``--telemetry`` samples the serving metrics into a
    bounded JSONL ring buffer).
``top [--port P | --unix-socket PATH]``
    Live terminal dashboard for a running daemon: subscribes to the
    ``stats --stream`` op and renders QPS, latency quantiles, LRU
    hit rate, shed counters, and the admission state per frame.
``bench load [--clients N] [--count M] [--history FILE]``
    Multiprocess load generator against a running daemon; reports
    p50/p95/p99 latency and sustained QPS into ``BENCH_serve.json``
    and (``--history``) appends a trend line to the shared
    ``benchmarks/results/history.jsonl`` journal rendered by
    ``tools/bench_trend.py``.

Exit codes
----------

``0`` success - except ``repro run``, which propagates the simulated
program's own exit code.  ``2`` validation errors (unknown workload or
experiment, malformed flags, missing input files).  ``1`` runtime
failures (cell failures after retries, connection failures, crashes).
``repro --version`` prints the package version.

Shared flags
------------

Every trace-consuming command accepts the same flags via a shared
parent parser:

``--scale S``        workload scale (per-command default when omitted)
``--jobs N``         fan independent workload cells across N processes
``--shard-rows R``   stream traces as bounded R-row shards so peak
                     memory stays independent of trace length; the
                     engine fans experiment cells out over
                     (workload, shard) pairs (0 = off)
``--trace-cache DIR`` archive functional traces on disk for reuse
``--metrics-out FILE`` collect metrics and export them to FILE
                     (JSON, or CSV when FILE ends in ``.csv``)
``--checkpoint DIR`` journal completed cells to DIR; a re-run resumes
                     with only the missing cells
``--inject-fault SPEC`` deterministic fault-injection drill (worker
                     crashes, cell failures, stalls, cache corruption;
                     see ``repro.testing.faults``)
``--trace-spans DIR`` write a run manifest and hierarchical span
                     journal to DIR (``repro profile DIR`` reads it);
                     purely additive - results stay byte-identical
"""

from __future__ import annotations

import argparse
import atexit
import os
import signal
import sys
import threading
import traceback
from pathlib import Path
from typing import List, Optional, Tuple

from repro import __version__, api, metrics
from repro.compiler import compile_source
from repro.cpu import run_program
from repro.eval import engine, reporting
from repro.metrics import export
from repro.obs import manifest as run_manifest
from repro.obs import profile as obs_profile
from repro.obs import spans
from repro.testing import faults as fault_injection
from repro.trace import cache as trace_cache
from repro.trace import shards as trace_shards
from repro.workloads import suite

_STATS_FORMATS = ("table", "json", "csv")


def _positive_jobs(text: str) -> int:
    """``--jobs`` values must be integers >= 1 - anything else is a
    user error, not something to silently coerce."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --jobs value {text!r} (expected an integer >= 1)")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1, got {value}")
    return value


def _shard_rows(text: str) -> int:
    """``--shard-rows`` values must be integers >= 0 (0 = off)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --shard-rows value {text!r} (expected an "
            f"integer >= 0; 0 disables sharding)")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--shard-rows must be >= 0, got {value}")
    return value


def _fault_spec(text: str) -> str:
    """Validate ``--inject-fault`` at parse time for a clear error."""
    try:
        fault_injection.parse_spec(text)
    except fault_injection.SpecError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _common_parser() -> argparse.ArgumentParser:
    """The shared parent parser: one flag spelling for every command."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale", type=float, default=None, metavar="S",
        help="workload scale factor (default: per-command)")
    common.add_argument(
        "--jobs", type=_positive_jobs, default=None, metavar="N",
        help="run independent workload cells across N processes "
             f"(default: ${engine.JOBS_ENV_VAR} or 1)")
    common.add_argument(
        "--trace-cache", metavar="DIR", default=None,
        help="archive functional traces in DIR and reuse them on "
             f"later runs (default: ${trace_cache.ENV_VAR})")
    common.add_argument(
        "--shard-rows", type=_shard_rows, default=None, metavar="R",
        help="stream traces as bounded R-row shards so peak memory "
             "stays independent of trace length; 0 disables "
             f"(default: ${trace_shards.ENV_VAR} or off)")
    common.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="collect metrics during the run and export them to FILE "
             "(JSON, or CSV when FILE ends in .csv)")
    common.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal completed cells to DIR so an interrupted run "
             "resumes with only the missing cells")
    common.add_argument(
        "--inject-fault", metavar="SPEC", type=_fault_spec,
        default=None,
        help="deterministic fault-injection drill, e.g. "
             "'crash:index=1' or 'corrupt:name=db_vortex' "
             f"(default: ${fault_injection.ENV_VAR})")
    common.add_argument(
        "--trace-spans", metavar="DIR", default=None,
        help="write a run manifest and span journal to DIR for "
             f"'repro profile DIR' (default: ${spans.ENV_VAR})")
    return common


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access Region Locality (MICRO 1999) reproduction")
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parser()

    run = sub.add_parser("run", help="compile and execute a MiniC file")
    run.add_argument("source", type=Path)
    run.set_defaults(handler=_cmd_run)

    disasm = sub.add_parser("disasm", help="print generated assembly")
    disasm.add_argument("source", type=Path)
    disasm.set_defaults(handler=_cmd_disasm)

    workloads = sub.add_parser("workloads", help="list the workload suite")
    workloads.set_defaults(handler=_cmd_workloads)

    regions = sub.add_parser("regions", parents=[common],
                             help="region-locality profile")
    regions.add_argument("names", nargs="*", default=[])
    regions.set_defaults(handler=_cmd_regions,
                         default_scale=api.DEFAULT_REGIONS_SCALE)

    predict = sub.add_parser("predict", parents=[common],
                             help="prediction accuracy")
    predict.add_argument("names", nargs="*", default=[])
    predict.add_argument("--scheme", default=api.DEFAULT_SCHEME)
    predict.set_defaults(handler=_cmd_predict,
                         default_scale=api.DEFAULT_PREDICT_SCALE)

    timing = sub.add_parser("timing", parents=[common],
                            help="Figure 8 configurations")
    timing.add_argument("names", nargs="*", default=[])
    timing.set_defaults(handler=_cmd_timing,
                        default_scale=api.DEFAULT_TIMING_SCALE)

    experiment = sub.add_parser("experiment", parents=[common],
                                help="run a paper experiment")
    experiment.add_argument("id", choices=list(api.EXPERIMENT_IDS))
    experiment.add_argument("names", nargs="*", default=[])
    experiment.add_argument(
        "--verbose", action="store_true",
        help="print a per-stage timing report (functional sim vs. "
             "trace-cache I/O vs. replay) to stderr")
    experiment.set_defaults(handler=_cmd_experiment,
                            default_scale=api.DEFAULT_EXPERIMENT_SCALE)

    stats = sub.add_parser(
        "stats", parents=[common],
        help="run an experiment and print its collected metrics")
    stats.add_argument("id", choices=list(api.EXPERIMENT_IDS))
    stats.add_argument("names", nargs="*", default=[])
    stats.add_argument("--format", choices=_STATS_FORMATS,
                       default="table")
    stats.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any registered metric is NaN or negative")
    stats.set_defaults(handler=_cmd_stats,
                       default_scale=api.DEFAULT_EXPERIMENT_SCALE)

    profile = sub.add_parser(
        "profile",
        help="aggregate a --trace-spans run: span tree, Perfetto "
             "export, perf-regression gate")
    profile.add_argument(
        "runs", nargs="+", type=Path, metavar="run",
        help="run directory written by --trace-spans (or a bare "
             "spans.jsonl file); several merge for --request")
    profile.add_argument(
        "--request", metavar="ID", default=None,
        help="render the merged cross-incarnation timeline of one "
             "client request_id instead of the span tree")
    profile.add_argument(
        "--chrome", metavar="FILE", type=Path, default=None,
        help="also export Chrome trace-event JSON (loadable in "
             "Perfetto / chrome://tracing)")
    profile.add_argument(
        "--check", action="store_true",
        help="compare the run's wall-clock against the recorded "
             "baseline; exit non-zero on a regression")
    profile.add_argument(
        "--baseline", metavar="FILE", type=Path,
        default=obs_profile.DEFAULT_BASELINE,
        help="baseline JSON for --check [%(default)s]")
    profile.add_argument(
        "--threshold", type=float,
        default=obs_profile.DEFAULT_THRESHOLD, metavar="FRAC",
        help="allowed fractional slowdown before --check fails "
             "[%(default)s]")
    profile.set_defaults(handler=_cmd_profile)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve predict/regions/timing/experiment queries from a "
             "resident session over a line-JSON socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address [%(default)s]")
    serve.add_argument("--port", type=int, default=None, metavar="P",
                       help="TCP port (0 = ephemeral) "
                            "[default: 7907]")
    serve.add_argument("--unix-socket", metavar="PATH", default=None,
                       help="serve on a Unix-domain socket instead "
                            "of TCP")
    serve.add_argument("--workers", type=_positive_jobs, default=8,
                       metavar="N",
                       help="max concurrently executing requests "
                            "[%(default)s]")
    serve.add_argument("--queue", type=int, default=16, metavar="D",
                       help="admission queue depth; requests beyond "
                            "workers+queue are rejected with a 503 "
                            "response [%(default)s]")
    serve.add_argument("--warm", action="append", default=[],
                       metavar="WORKLOAD[@SCALE]",
                       help="pre-warm this workload's trace before "
                            "accepting traffic ('all' = full suite; "
                            "scale defaults to --scale); repeatable")
    serve.add_argument("--port-file", metavar="FILE", default=None,
                       help="write the bound TCP port to FILE once "
                            "the daemon is warmed and serving "
                            "(removed again on exit)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default per-request deadline when the "
                            "client sets no timeout_ms; past it the "
                            "request gets a 504 with partial stage "
                            "timings (0 = off) [default: "
                            "$REPRO_SERVE_DEADLINE_MS or off]")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       metavar="S",
                       help="drop (and count) connections whose "
                            "partial request line stalls longer than "
                            "S seconds [%(default)s]")
    serve.add_argument("--max-resident", type=_positive_jobs,
                       default=16, metavar="N",
                       help="resident trace LRU capacity; churn "
                            "beyond it drives the degraded/shedding "
                            "state [%(default)s]")
    serve.add_argument("--warm-manifest", metavar="FILE", default=None,
                       help="persist the resident warm set to FILE as "
                            "it changes and re-warm from it at "
                            "startup, so a (supervised) restart "
                            "recovers its working set")
    serve.add_argument("--telemetry", metavar="FILE", default=None,
                       help="sample the serving metrics into FILE "
                            "every --telemetry-interval seconds as a "
                            "bounded JSONL ring buffer (rotates to "
                            "FILE.old past $REPRO_TELEMETRY_MAX_BYTES)")
    serve.add_argument("--telemetry-interval", type=float, default=5.0,
                       metavar="S",
                       help="seconds between telemetry samples "
                            "[%(default)s]")
    serve.add_argument("--supervise", action="store_true",
                       help="run the daemon as a supervised child "
                            "process: restart it on crash with "
                            "exponential backoff, give up after "
                            "repeated rapid failures (crash-loop "
                            "breaker)")
    serve.set_defaults(handler=_cmd_serve,
                       default_scale=api.DEFAULT_PREDICT_SCALE)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running 'repro serve' "
             "daemon (subscribes to its stats --stream op)")
    top.add_argument("--host", default="127.0.0.1",
                     help="daemon address [%(default)s]")
    top.add_argument("--port", type=int, default=None, metavar="P",
                     help="daemon TCP port [default: 7907]")
    top.add_argument("--unix-socket", metavar="PATH", default=None,
                     help="connect over a Unix-domain socket instead "
                          "of TCP")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="S",
                     help="seconds between frames [%(default)s]")
    top.add_argument("--count", type=int, default=0, metavar="N",
                     help="exit after N frames (0 = until "
                          "interrupted) [%(default)s]")
    top.add_argument("--no-color", action="store_true",
                     help="plain text even on a TTY (also disables "
                          "the per-frame screen clear)")
    top.set_defaults(handler=_cmd_top)

    bench = sub.add_parser("bench", help="serving benchmarks")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    load = bench_sub.add_parser(
        "load", help="multiprocess load generator against a running "
                     "'repro serve' daemon")
    load.add_argument("--clients", type=_positive_jobs, default=4,
                      metavar="N", help="client processes [%(default)s]")
    load.add_argument("--count", type=_positive_jobs, default=50,
                      metavar="M",
                      help="requests per client [%(default)s]")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=None,
                      help="daemon TCP port [default: 7907]")
    load.add_argument("--unix-socket", metavar="PATH", default=None)
    load.add_argument("--op", default="predict",
                      choices=("predict", "regions", "timing",
                               "experiment"),
                      help="request type to issue [%(default)s]")
    load.add_argument("--workloads", nargs="+", default=["db_vortex"],
                      metavar="NAME",
                      help="workload names in each request "
                           "[%(default)s]")
    load.add_argument("--scale", type=float, default=0.2,
                      help="workload scale in each request "
                           "[%(default)s]")
    load.add_argument("--scheme", default=api.DEFAULT_SCHEME,
                      help="prediction scheme for --op predict "
                           "[%(default)s]")
    load.add_argument("--experiment", default="table1",
                      choices=list(api.EXPERIMENT_IDS),
                      help="experiment id for --op experiment "
                           "[%(default)s]")
    load.add_argument("--scenario", default="uniform",
                      choices=("uniform", "thrash"),
                      help="'uniform' = identical requests from every "
                           "client; 'thrash' = the backpressure drill "
                           "(cheap memoised load plus cold-churn "
                           "clients; run against a daemon with a "
                           "small --max-resident) [%(default)s]")
    load.add_argument("--out", default="BENCH_serve.json",
                      metavar="FILE",
                      help="write the JSON load report to FILE "
                           "[%(default)s]")
    load.add_argument("--history", metavar="FILE", default=None,
                      help="also append a trend line to this "
                           "append-only journal (render with "
                           "tools/bench_trend.py)")
    load.set_defaults(handler=_cmd_bench_load)

    # Every experiment id as a top-level alias:
    # ``repro figure4`` == ``repro experiment figure4``.
    for experiment_id in api.EXPERIMENT_IDS:
        alias = sub.add_parser(experiment_id, parents=[common])
        alias.add_argument("names", nargs="*", default=[])
        alias.add_argument("--verbose", action="store_true")
        alias.set_defaults(handler=_cmd_experiment, id=experiment_id,
                           default_scale=api.DEFAULT_EXPERIMENT_SCALE)

    return parser


# -- shared plumbing ----------------------------------------------------

def _apply_common(args) -> None:
    """Apply the shared flags: trace cache, jobs, fresh accumulators."""
    if getattr(args, "trace_cache", None):
        trace_cache.configure(args.trace_cache)
    if getattr(args, "jobs", None) is not None:
        engine.set_jobs(args.jobs)
    if getattr(args, "shard_rows", None) is not None:
        trace_shards.set_shard_rows(args.shard_rows)
    if getattr(args, "checkpoint", None):
        engine.set_checkpoint(args.checkpoint)
    if getattr(args, "inject_fault", None):
        fault_injection.install(args.inject_fault)
    engine.reset_stage_times()
    engine.reset_fault_stats()
    engine.take_metrics()           # drop any stale per-cell snapshots
    if getattr(args, "metrics_out", None):
        metrics.enable()


def _scale(args) -> float:
    return args.scale if args.scale is not None else args.default_scale


def _export_metrics(args, experiment: str, scale: float, cells) -> None:
    """Write the ``--metrics-out`` export and deactivate collection."""
    if not getattr(args, "metrics_out", None):
        return
    document = export.experiment_document(
        experiment, scale, cells,
        resilience=engine.resilience_snapshot())
    path = export.write_document(document, args.metrics_out)
    print(f"metrics written to {path}", file=sys.stderr)
    metrics.disable()


# -- command handlers ---------------------------------------------------

def _cmd_run(args) -> int:
    compiled = compile_source(args.source.read_text(), args.source.stem)
    trace = run_program(compiled)
    for value in trace.output:
        print(value)
    print(f"# {len(trace):,} instructions, exit code {trace.exit_code}",
          file=sys.stderr)
    return trace.exit_code


def _cmd_disasm(args) -> int:
    compiled = compile_source(args.source.read_text(), args.source.stem)
    program = compiled.program
    by_index = {index: name for name, index in program.labels.items()}
    for index, instruction in enumerate(program.instructions):
        if index in by_index:
            print(f"{by_index[index]}:")
        print(f"  {program.pc_of_index(index):#010x}  {instruction}")
    return 0


def _cmd_workloads(_args) -> int:
    print(f"{'name':<12} {'mirrors':<12} {'kind':<5} description")
    for name in suite.ALL_WORKLOADS:
        spec = suite.spec(name)
        print(f"{name:<12} {spec.mirrors:<12} {spec.kind:<5} "
              f"{spec.description}")
    return 0


def _cmd_regions(args) -> int:
    _apply_common(args)
    response = api.Session().regions(api.RegionsRequest(
        names=tuple(args.names), scale=_scale(args)))
    for line in response.lines:
        print(line)
    _export_metrics(args, "regions", response.request.scale,
                    engine.take_metrics())
    return 0


def _cmd_profile(args) -> int:
    """Aggregate span journals: tree, Chrome export, baseline gate,
    or (``--request``) one request's cross-incarnation timeline."""
    try:
        runs = obs_profile.load_runs(args.runs)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.request:
        timeline = obs_profile.request_timeline(runs, args.request)
        print(obs_profile.render_request_timeline(timeline))
        return 0 if timeline.entries else 1
    # Export before printing: the artifact still lands when stdout is
    # piped into a pager/head that closes early.
    if args.chrome is not None:
        path = obs_profile.write_chrome(runs[0], args.chrome)
        print(f"chrome trace written to {path}", file=sys.stderr)
    for index, run in enumerate(runs):
        if index:
            print()
        print(obs_profile.render_tree(run))
    if args.check:
        verdict = obs_profile.compare_baseline(
            runs[0], baseline_path=args.baseline,
            threshold=args.threshold)
        for message in verdict.messages:
            print(message, file=sys.stderr)
        return verdict.exit_code
    return 0


def _cmd_predict(args) -> int:
    _apply_common(args)
    response = api.Session().predict(api.PredictRequest(
        names=tuple(args.names), scale=_scale(args),
        scheme=args.scheme))
    for line in response.lines:
        print(line)
    _export_metrics(args, "predict", response.request.scale,
                    engine.take_metrics())
    return 0


def _cmd_timing(args) -> int:
    _apply_common(args)
    response = api.Session().timing(api.TimingRequest(
        names=tuple(args.names), scale=_scale(args)))
    for block in response.lines:
        print(block)
    _export_metrics(args, "timing", response.request.scale,
                    engine.take_metrics())
    return 0


def _run_experiment(args):
    """Run the selected driver through the Session facade."""
    response = api.Session().experiment(api.ExperimentRequest(
        experiment=args.id, names=tuple(args.names),
        scale=_scale(args)))
    return response.result, response.request.scale


def _cmd_experiment(args) -> int:
    _apply_common(args)
    result, scale = _run_experiment(args)
    print(result.render())
    if getattr(args, "verbose", False):
        # stderr, so stdout stays byte-identical across --jobs levels.
        print(engine.render_stage_report(), file=sys.stderr)
    _export_metrics(args, args.id, scale, result.metrics)
    return 0


def _metrics_table(document: dict) -> str:
    """Human-readable summary table of an export document."""
    rows = []
    sections = sorted(document["cells"].items())
    if len(sections) > 1:
        sections.append(("TOTAL", document["totals"]))
    for cell, snapshot in sections:
        for name in sorted(snapshot):
            entry = snapshot[name]
            rows.append([cell, name, entry["kind"],
                         export.summarize_entry(entry)])
    return reporting.format_table(
        ["cell", "metric", "kind", "value"], rows,
        title=f"Metrics: {document['experiment']} "
              f"@ scale {document['scale']}")


def _cmd_stats(args) -> int:
    _apply_common(args)
    metrics.enable()        # stats always collects, even without a file
    try:
        result, scale = _run_experiment(args)
    finally:
        metrics.disable()
    document = export.experiment_document(
        args.id, scale, result.metrics,
        resilience=engine.resilience_snapshot())
    if args.format == "json":
        sys.stdout.write(export.to_json(document))
    elif args.format == "csv":
        sys.stdout.write(export.to_csv(document))
    else:
        print(_metrics_table(document))
    if args.metrics_out:
        path = export.write_document(document, args.metrics_out)
        print(f"metrics written to {path}", file=sys.stderr)
    if args.check:
        problems = export.validate(document)
        for problem in problems:
            print(f"invalid metric: {problem}", file=sys.stderr)
        if problems:
            return 1
    return 0


# -- serving ------------------------------------------------------------

def _parse_warm(specs: List[str],
                default_scale: float) -> List[Tuple[str, float]]:
    """``--warm WORKLOAD[@SCALE]`` entries as (name, scale) pairs."""
    pairs: List[Tuple[str, float]] = []
    for text in specs:
        name, _, scale_text = text.partition("@")
        if scale_text:
            try:
                scale = float(scale_text)
            except ValueError:
                raise ValueError(
                    f"invalid --warm spec {text!r} (expected "
                    f"WORKLOAD or WORKLOAD@SCALE)") from None
        else:
            scale = default_scale
        names = suite.ALL_WORKLOADS if name in ("all", "*") else (name,)
        for workload in names:
            suite.spec(workload)    # raises with the known-name list
            pairs.append((workload, scale))
    return pairs


def _remove_file_quietly(path) -> None:
    try:
        Path(path).unlink()
    except OSError:
        pass


def _cmd_serve(args) -> int:
    if args.supervise:
        return _cmd_serve_supervised(args)
    from repro.serve.server import (DEFAULT_PORT, ReproServer,
                                    read_warm_manifest)
    _apply_common(args)
    pairs = _parse_warm(args.warm, _scale(args))
    if args.warm_manifest:
        # Re-warm the previous incarnation's working set (best-effort;
        # a missing or corrupt manifest just starts cold).
        known = set(pairs)
        for pair in read_warm_manifest(args.warm_manifest):
            if pair not in known:
                pairs.append(pair)
                known.add(pair)
    port = args.port if args.port is not None else DEFAULT_PORT
    session = api.Session(resident=True,
                          max_resident_traces=args.max_resident)
    server = ReproServer(session, host=args.host, port=port,
                         unix_socket=args.unix_socket,
                         max_inflight=args.workers,
                         queue_depth=args.queue,
                         deadline_ms=args.deadline_ms,
                         idle_timeout_s=args.idle_timeout,
                         warm_manifest=args.warm_manifest,
                         telemetry_path=args.telemetry,
                         telemetry_interval_s=args.telemetry_interval)
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    installed = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            installed.append((signum, signal.signal(signum, _on_signal)))
    address = server.start()
    port_file = None
    try:
        if pairs:
            warmed = session.warm(pairs)
            print(f"repro serve: warmed {len(warmed)} trace(s)",
                  file=sys.stderr)
        where = address if isinstance(address, str) \
            else f"{address[0]}:{address[1]}"
        print(f"repro serve: listening on {where} "
              f"(workers={args.workers}, queue={args.queue})",
              file=sys.stderr)
        if args.port_file and not isinstance(address, str):
            port_file = Path(args.port_file)
            port_file.write_text(f"{address[1]}\n")
            # Belt and braces against stale port files: the finally
            # below covers exceptions, atexit covers sys.exit paths,
            # and the supervisor sweeps before every restart (nothing
            # covers SIGKILL - that is the supervisor's sweep).
            atexit.register(_remove_file_quietly, port_file)
        while not (stop.is_set() or server.stop_requested.is_set()):
            server.stop_requested.wait(0.2)
    finally:
        for signum, previous in installed:
            signal.signal(signum, previous)
        server.shutdown(drain=True)
        if port_file is not None:
            _remove_file_quietly(port_file)
    print("repro serve: stopped", file=sys.stderr)
    return 0


def _cmd_serve_supervised(args) -> int:
    from repro.serve.supervisor import (Supervisor, install_stop_signals,
                                        serve_child_command)
    raw = list(getattr(args, "raw_argv", None) or sys.argv[1:])
    child_args = [token for token in raw if token != "--supervise"]
    if child_args and child_args[0] == "serve":
        child_args = child_args[1:]
    supervisor = Supervisor(serve_child_command(child_args),
                            port_file=args.port_file)
    if threading.current_thread() is threading.main_thread():
        install_stop_signals(supervisor)
    return supervisor.run()


def _cmd_top(args) -> int:
    from repro.serve.server import DEFAULT_PORT
    from repro.serve.top import run_top
    if args.unix_socket:
        address = args.unix_socket
    else:
        port = args.port if args.port is not None else DEFAULT_PORT
        address = (args.host, port)
    color = False if args.no_color else None
    try:
        return run_top(address, interval_s=args.interval,
                       count=args.count, color=color, clear=color)
    except OSError as exc:
        print(f"repro top: cannot reach daemon at {address}: {exc}",
              file=sys.stderr)
        return 1


def _cmd_bench_load(args) -> int:
    from repro.serve import bench
    from repro.serve.server import DEFAULT_PORT
    if args.unix_socket:
        address = args.unix_socket
    else:
        port = args.port if args.port is not None else DEFAULT_PORT
        address = (args.host, port)
    if args.scenario == "thrash":
        report = bench.run_thrash(address, names=args.workloads,
                                  scale=args.scale, out=args.out)
    else:
        params = {"names": list(args.workloads), "scale": args.scale}
        if args.op == "predict":
            params["scheme"] = args.scheme
        elif args.op == "experiment":
            params = {"experiment": args.experiment,
                      "names": list(args.workloads),
                      "scale": args.scale}
        report = bench.run_load(address, clients=args.clients,
                                count=args.count, op=args.op,
                                params=params, out=args.out)
    print(bench.render_report(report))
    print(f"load report written to {args.out}", file=sys.stderr)
    if args.history:
        path = bench.append_history(report, args.history)
        print(f"trend line appended to {path}", file=sys.stderr)
    if report.get("dead_clients"):
        print(f"repro bench: {report['dead_clients']} client(s) died "
              f"mid-run", file=sys.stderr)
        return 1
    return 0 if report.get("errors", 0) == 0 else 1


# -- entry point --------------------------------------------------------

def _observed(args, argv: Optional[List[str]]) -> int:
    """Run the handler, tracing it when ``--trace-spans`` (or the
    environment) names a run directory.

    Tracing is strictly additive: the manifest and span journal go to
    the run directory, the root CLI span wraps the whole handler, and
    worker journals are merged when the tracer is torn down - stdout
    and every export stay byte-identical to an untraced run.
    """
    directory = getattr(args, "trace_spans", None) \
        or os.environ.get(spans.ENV_VAR)
    if not directory:
        return args.handler(args)
    tracer = spans.enable(directory)
    experiment = getattr(args, "id", None)
    scale = getattr(args, "scale", None)
    if scale is None:
        scale = getattr(args, "default_scale", None)
    jobs = getattr(args, "jobs", None)
    run_manifest.write_manifest(directory, run_manifest.build_manifest(
        run_id=tracer.run_id,
        command=args.command,
        argv=argv if argv is not None else sys.argv[1:],
        experiment=experiment,
        scale=scale,
        jobs=jobs if jobs is not None else engine.get_jobs(),
    ))
    try:
        with spans.span(f"cli:{args.command}", experiment=experiment,
                        scale=scale) as root:
            code = args.handler(args)
            root.set("exit_code", code)
            return code
    finally:
        spans.disable()


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args, extra = parser.parse_known_args(argv)
    if extra:
        # argparse cannot match a trailing ``names*`` positional once
        # optionals are interleaved after a required positional
        # (``stats table1 --scale 0.2 db_vortex``); fold the stragglers
        # back into ``names`` instead of rejecting them.
        if not hasattr(args, "names") or any(
                token.startswith("-") for token in extra):
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
        args.names = [*args.names, *extra]
    # The verbatim invocation, for handlers that re-spawn themselves
    # (``serve --supervise`` builds its child command from it).
    args.raw_argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return _observed(args, argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
        return 0
    except KeyboardInterrupt:
        return 130
    except (ValueError, FileNotFoundError, IsADirectoryError,
            NotADirectoryError) as exc:
        # Validation errors: the request itself was malformed.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # Runtime failures: a well-formed request that could not be
        # served.  The traceback goes to stderr so failures in long
        # sweeps and CI logs stay diagnosable.
        traceback.print_exc()
        print(f"repro: runtime failure: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
