"""Deterministic fault injection for resilience drills and chaos tests.

A fault *plan* is a ``;``-separated list of directives::

    kind[:param=value[,param=value...]]

with four kinds:

``fail``
    Raise :class:`InjectedFault` inside the matching cell.
``crash``
    Kill the executing *worker process* (``os._exit(137)``) at the
    start of the matching cell.  Crashes never fire in the main
    process, so serial fallback drills survive a directive that keeps
    killing pool workers.
``stall``
    Sleep ``seconds`` inside the matching cell (drives the engine's
    per-cell timeout path).
``corrupt``
    Corrupt the trace-cache file just written for the matching
    workload (``mode`` = ``truncate`` | ``zero`` | ``garbage``).

Cell-matching parameters: ``name=<workload>`` and/or ``index=N`` (the
engine's submission index, which travels with the task across process
boundaries), plus ``times=K`` - the directive fires on a cell's first
``K`` *attempts* only, so a retried or re-pooled cell deterministically
recovers without any shared mutable state.  ``corrupt`` instead counts
stores per process (a regenerated entry is written clean once ``times``
stores have been corrupted).

Everything is deterministic: triggers key off names, submission
indices, and attempt numbers - never wall-clock or unseeded
randomness (``garbage`` bytes come from ``random.Random(seed)``).

Activation, in precedence order: :func:`install` (the CLI's
``--inject-fault SPEC``), else the ``REPRO_INJECT_FAULT`` environment
variable; the experiment engine forwards the active spec to pool
workers explicitly so drills behave identically under any start
method.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: Environment variable carrying the default fault plan.
ENV_VAR = "REPRO_INJECT_FAULT"

#: Exit status used by injected worker crashes (mirrors SIGKILL's 137).
CRASH_EXIT_CODE = 137

KINDS = ("fail", "crash", "stall", "corrupt")
CORRUPT_MODES = ("truncate", "zero", "garbage")


class InjectedFault(RuntimeError):
    """The exception raised by a ``fail`` directive."""


class SpecError(ValueError):
    """A malformed ``--inject-fault`` specification."""


@dataclass
class Directive:
    """One parsed fault directive."""

    kind: str
    name: Optional[str] = None      # match this workload (None = any)
    index: Optional[int] = None     # match this submission index
    times: int = 1                  # fire on the first K attempts/stores
    seconds: float = 5.0            # stall duration
    mode: str = "truncate"          # corrupt mode
    seed: int = 0                   # garbage-byte PRNG seed
    fired: int = 0                  # per-process store count (corrupt)

    def matches_cell(self, name: str, index: int, attempt: int) -> bool:
        if self.kind == "corrupt":
            return False
        if self.name is not None and self.name != name:
            return False
        if self.index is not None and self.index != index:
            return False
        return attempt < self.times

    def matches_store(self, name: str) -> bool:
        if self.kind != "corrupt":
            return False
        if self.name is not None and self.name != name:
            return False
        return self.fired < self.times


_INT_PARAMS = ("index", "times", "seed")
_FLOAT_PARAMS = ("seconds",)
_STR_PARAMS = ("name", "mode")


def parse_spec(spec: str) -> List[Directive]:
    """Parse a fault plan; raises :class:`SpecError` with specifics."""
    directives = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, params = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise SpecError(
                f"unknown fault kind {kind!r} (expected one of "
                f"{', '.join(KINDS)})")
        directive = Directive(kind)
        for item in filter(None, (p.strip() for p in params.split(","))):
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep:
                raise SpecError(f"fault parameter {item!r} is not "
                                f"key=value")
            if key not in _INT_PARAMS + _FLOAT_PARAMS + _STR_PARAMS:
                raise SpecError(
                    f"unknown fault parameter {key!r} (expected one "
                    f"of {', '.join(_INT_PARAMS + _FLOAT_PARAMS + _STR_PARAMS)})")
            try:
                if key in _INT_PARAMS:
                    setattr(directive, key, int(value))
                elif key in _FLOAT_PARAMS:
                    setattr(directive, key, float(value))
                else:
                    setattr(directive, key, value)
            except ValueError as exc:
                raise SpecError(
                    f"bad value for fault parameter {key}: {value!r}")\
                    from exc
        if directive.mode not in CORRUPT_MODES:
            raise SpecError(
                f"unknown corrupt mode {directive.mode!r} (expected "
                f"one of {', '.join(CORRUPT_MODES)})")
        if directive.times < 1:
            raise SpecError("fault parameter times must be >= 1")
        directives.append(directive)
    if not directives:
        raise SpecError("empty fault specification")
    return directives


# -- process-wide active plan -------------------------------------------

_installed: Optional[str] = None
_parsed: Optional[Tuple[str, List[Directive]]] = None


def install(spec: Optional[str]) -> None:
    """Set (or, with None, clear) the explicit process-wide fault plan.

    Parses eagerly so a malformed spec fails at install time, not at
    the first cell.  With no explicit plan the :data:`ENV_VAR`
    environment variable applies.
    """
    global _installed
    if spec:
        parse_spec(spec)
    _installed = spec or None


def active_spec() -> Optional[str]:
    """The fault spec in effect: installed > environment > none."""
    if _installed is not None:
        return _installed
    return os.environ.get(ENV_VAR) or None


def _plan() -> Optional[List[Directive]]:
    global _parsed
    spec = active_spec()
    if not spec:
        return None
    if _parsed is None or _parsed[0] != spec:
        _parsed = (spec, parse_spec(spec))
    return _parsed[1]


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def fire_cell(name: str, index: int, attempt: int) -> None:
    """Injection point at the start of every engine cell execution."""
    plan = _plan()
    if not plan:
        return
    for directive in plan:
        if not directive.matches_cell(name, index, attempt):
            continue
        if directive.kind == "stall":
            time.sleep(directive.seconds)
        elif directive.kind == "crash":
            # Only ever kill pool workers: a crash directive must not
            # take down the main process once the engine has degraded
            # to serial execution.
            if _in_worker_process():
                os._exit(CRASH_EXIT_CODE)
        else:
            raise InjectedFault(
                f"injected failure in cell {name!r} "
                f"(index {index}, attempt {attempt})")


def fire_cache_store(name: str, path: Union[str, Path]) -> bool:
    """Injection point after a trace-cache store; True if corrupted."""
    plan = _plan()
    if not plan:
        return False
    corrupted = False
    for directive in plan:
        if directive.matches_store(name):
            directive.fired += 1
            corrupt_file(path, directive.mode, directive.seed)
            corrupted = True
    return corrupted


def corrupt_file(path: Union[str, Path], mode: str = "truncate",
                 seed: int = 0) -> None:
    """Deterministically damage a file in place.

    ``truncate`` keeps the first half of the bytes (a partial write),
    ``zero`` empties the file, ``garbage`` overwrites the head with
    seeded pseudo-random bytes (bit rot).
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[:len(data) // 2])
    elif mode == "zero":
        path.write_bytes(b"")
    elif mode == "garbage":
        rng = random.Random(seed)
        head = bytes(rng.getrandbits(8)
                     for _ in range(min(len(data), 256)))
        path.write_bytes(head + data[len(head):])
    else:
        raise SpecError(f"unknown corrupt mode {mode!r}")
