"""Deterministic fault injection for resilience drills and chaos tests.

A fault *plan* is a ``;``-separated list of directives::

    kind[:param=value[,param=value...]]

with five kinds:

``fail``
    Raise :class:`InjectedFault` inside the matching cell.
``crash``
    Kill the executing *worker process* (``os._exit(137)``) at the
    start of the matching cell.  Crashes never fire in the main
    process, so serial fallback drills survive a directive that keeps
    killing pool workers.
``stall``
    Sleep ``seconds`` inside the matching cell (drives the engine's
    per-cell timeout path).
``corrupt``
    Corrupt the trace-cache file just written for the matching
    workload (``mode`` = ``truncate`` | ``zero`` | ``garbage``).
``serve``
    Serve-layer chaos inside the ``repro serve`` request path.  The
    first bare token names the action (so ``serve:drop`` reads
    naturally); ``op=<name>`` scopes it to one request op:

    * ``serve:drop`` - close the connection without responding (a
      wedged or crashed responder, as seen by the client);
    * ``serve:stall`` - hold the request ``seconds`` before executing
      (drives deadline expiry and slow-worker drills);
    * ``serve:corrupt-response`` - mangle the encoded response bytes
      (the newline framing survives, the JSON body does not);
    * ``serve:oom-evict`` - force-evict every resident trace before
      executing (deterministic LRU-thrash / backpressure drills).

Cell-matching parameters: ``name=<workload>`` and/or ``index=N`` (the
engine's submission index, which travels with the task across process
boundaries), plus ``times=K`` - the directive fires on a cell's first
``K`` *attempts* only, so a retried or re-pooled cell deterministically
recovers without any shared mutable state.  ``corrupt`` instead counts
stores per process (a regenerated entry is written clean once ``times``
stores have been corrupted), and ``serve`` counts matching requests
per process the same way.

Everything is deterministic: triggers key off names, submission
indices, and attempt numbers - never wall-clock or unseeded
randomness (``garbage`` bytes come from ``random.Random(seed)``).

Activation, in precedence order: :func:`install` (the CLI's
``--inject-fault SPEC``), else the ``REPRO_INJECT_FAULT`` environment
variable; the experiment engine forwards the active spec to pool
workers explicitly so drills behave identically under any start
method.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: Environment variable carrying the default fault plan.
ENV_VAR = "REPRO_INJECT_FAULT"

#: Exit status used by injected worker crashes (mirrors SIGKILL's 137).
CRASH_EXIT_CODE = 137

KINDS = ("fail", "crash", "stall", "corrupt", "serve")
CORRUPT_MODES = ("truncate", "zero", "garbage")
SERVE_MODES = ("drop", "stall", "corrupt-response", "oom-evict")


class InjectedFault(RuntimeError):
    """The exception raised by a ``fail`` directive."""


class SpecError(ValueError):
    """A malformed ``--inject-fault`` specification."""


@dataclass
class Directive:
    """One parsed fault directive."""

    kind: str
    name: Optional[str] = None      # match this workload (None = any)
    index: Optional[int] = None     # match this submission index
    times: int = 1                  # fire on the first K attempts/stores
    seconds: float = 5.0            # stall duration
    mode: Optional[str] = None      # corrupt / serve action mode
    op: Optional[str] = None        # match this serve op (None = any)
    seed: int = 0                   # garbage-byte PRNG seed
    fired: int = 0                  # per-process count (corrupt/serve)

    def matches_cell(self, name: str, index: int, attempt: int) -> bool:
        if self.kind in ("corrupt", "serve"):
            return False
        if self.name is not None and self.name != name:
            return False
        if self.index is not None and self.index != index:
            return False
        return attempt < self.times

    def matches_store(self, name: str) -> bool:
        if self.kind != "corrupt":
            return False
        if self.name is not None and self.name != name:
            return False
        return self.fired < self.times

    def matches_request(self, op: str) -> bool:
        if self.kind != "serve":
            return False
        if self.op is not None and self.op != op:
            return False
        return self.fired < self.times


_INT_PARAMS = ("index", "times", "seed")
_FLOAT_PARAMS = ("seconds",)
_STR_PARAMS = ("name", "mode", "op")


def parse_spec(spec: str) -> List[Directive]:
    """Parse a fault plan; raises :class:`SpecError` with specifics."""
    directives = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, params = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise SpecError(
                f"unknown fault kind {kind!r} (expected one of "
                f"{', '.join(KINDS)})")
        directive = Directive(kind)
        for item in filter(None, (p.strip() for p in params.split(","))):
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep:
                # ``serve:drop`` reads better than ``serve:mode=drop``:
                # a bare token on a serve directive names its action.
                if kind == "serve" and directive.mode is None:
                    directive.mode = key
                    continue
                raise SpecError(f"fault parameter {item!r} is not "
                                f"key=value")
            if key not in _INT_PARAMS + _FLOAT_PARAMS + _STR_PARAMS:
                raise SpecError(
                    f"unknown fault parameter {key!r} (expected one "
                    f"of {', '.join(_INT_PARAMS + _FLOAT_PARAMS + _STR_PARAMS)})")
            try:
                if key in _INT_PARAMS:
                    setattr(directive, key, int(value))
                elif key in _FLOAT_PARAMS:
                    setattr(directive, key, float(value))
                else:
                    setattr(directive, key, value)
            except ValueError as exc:
                raise SpecError(
                    f"bad value for fault parameter {key}: {value!r}")\
                    from exc
        if kind == "serve":
            if directive.mode not in SERVE_MODES:
                raise SpecError(
                    f"unknown serve fault mode {directive.mode!r} "
                    f"(expected one of {', '.join(SERVE_MODES)})")
        else:
            if directive.mode is None:
                directive.mode = "truncate"
            if directive.mode not in CORRUPT_MODES:
                raise SpecError(
                    f"unknown corrupt mode {directive.mode!r} (expected "
                    f"one of {', '.join(CORRUPT_MODES)})")
        if directive.times < 1:
            raise SpecError("fault parameter times must be >= 1")
        directives.append(directive)
    if not directives:
        raise SpecError("empty fault specification")
    return directives


# -- process-wide active plan -------------------------------------------

_installed: Optional[str] = None
_parsed: Optional[Tuple[str, List[Directive]]] = None


def install(spec: Optional[str]) -> None:
    """Set (or, with None, clear) the explicit process-wide fault plan.

    Parses eagerly so a malformed spec fails at install time, not at
    the first cell.  With no explicit plan the :data:`ENV_VAR`
    environment variable applies.
    """
    global _installed
    if spec:
        parse_spec(spec)
    _installed = spec or None


def active_spec() -> Optional[str]:
    """The fault spec in effect: installed > environment > none."""
    if _installed is not None:
        return _installed
    return os.environ.get(ENV_VAR) or None


def _plan() -> Optional[List[Directive]]:
    global _parsed
    spec = active_spec()
    if not spec:
        return None
    if _parsed is None or _parsed[0] != spec:
        _parsed = (spec, parse_spec(spec))
    return _parsed[1]


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def fire_cell(name: str, index: int, attempt: int) -> None:
    """Injection point at the start of every engine cell execution."""
    plan = _plan()
    if not plan:
        return
    for directive in plan:
        if not directive.matches_cell(name, index, attempt):
            continue
        if directive.kind == "stall":
            time.sleep(directive.seconds)
        elif directive.kind == "crash":
            # Only ever kill pool workers: a crash directive must not
            # take down the main process once the engine has degraded
            # to serial execution.
            if _in_worker_process():
                os._exit(CRASH_EXIT_CODE)
        else:
            raise InjectedFault(
                f"injected failure in cell {name!r} "
                f"(index {index}, attempt {attempt})")


def fire_cache_store(name: str, path: Union[str, Path]) -> bool:
    """Injection point after a trace-cache store; True if corrupted."""
    plan = _plan()
    if not plan:
        return False
    corrupted = False
    for directive in plan:
        if directive.matches_store(name):
            directive.fired += 1
            corrupt_file(path, directive.mode, directive.seed)
            corrupted = True
    return corrupted


def fire_serve(op: str) -> List[Directive]:
    """Injection point at the top of every serve request dispatch.

    Returns the matching ``serve`` directives (advancing their
    per-process fire counts) so the server can apply their actions -
    drop the connection, stall, corrupt the response, or force-evict
    resident traces.  An empty list on the fault-free path.
    """
    plan = _plan()
    if not plan:
        return []
    matched = []
    for directive in plan:
        if directive.matches_request(op):
            directive.fired += 1
            matched.append(directive)
    return matched


def corrupt_response(payload: bytes, seed: int = 0) -> bytes:
    """Deterministically mangle one encoded response line.

    The framing newline survives (so the client reads a complete
    line) but the JSON body does not: the head of the line is
    overwritten with seeded bytes from outside the printable-ASCII
    JSON alphabet, guaranteeing a parse failure rather than a
    silently-wrong payload.
    """
    body, newline = (payload[:-1], payload[-1:]) \
        if payload.endswith(b"\n") else (payload, b"")
    rng = random.Random(seed)
    head = bytes(0x80 | rng.getrandbits(7)
                 for _ in range(min(len(body), 16)))
    return head + body[len(head):] + newline


def corrupt_file(path: Union[str, Path], mode: str = "truncate",
                 seed: int = 0) -> None:
    """Deterministically damage a file in place.

    ``truncate`` keeps the first half of the bytes (a partial write),
    ``zero`` empties the file, ``garbage`` overwrites the head with
    seeded pseudo-random bytes (bit rot).
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[:len(data) // 2])
    elif mode == "zero":
        path.write_bytes(b"")
    elif mode == "garbage":
        rng = random.Random(seed)
        head = bytes(rng.getrandbits(8)
                     for _ in range(min(len(data), 256)))
        path.write_bytes(head + data[len(head):])
    else:
        raise SpecError(f"unknown corrupt mode {mode!r}")
