"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind the CLI's ``--inject-fault`` flag and the chaos test
suite.  Nothing in here runs unless explicitly activated, so shipping
it costs production paths one module-level flag check.
"""
