"""Experiment execution engine: trace cache + process fan-out + timing.

Every experiment driver decomposes into independent *cells* - one
``(workload, ...)`` unit of work whose result does not depend on any
other cell.  This module runs those cells either serially or across a
``ProcessPoolExecutor`` (``--jobs N`` on the CLI, :func:`set_jobs`
programmatically), always returning results in the caller's submission
order so rendered tables are byte-identical at any parallelism.

It also keeps a per-stage wall-clock breakdown (functional simulation
vs. trace-cache I/O vs. predictor/timing replay) so speedups from the
trace cache and the fan-out are directly measurable
(``repro experiment <id> --verbose``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.eval import reporting
from repro.trace import cache as trace_cache
from repro.trace.records import Trace
from repro.workloads import suite

#: Environment variable providing the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

_jobs: Optional[int] = None


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    global _jobs
    _jobs = jobs


def get_jobs() -> int:
    """The effective default worker count (>= 1)."""
    if _jobs is not None:
        return max(1, _jobs)
    try:
        return max(1, int(os.environ.get(JOBS_ENV_VAR, "1")))
    except ValueError:
        return 1


# -- per-stage timing ---------------------------------------------------

@dataclass
class StageTimes:
    """Wall-clock seconds per pipeline stage, summed over cells.

    With ``--jobs N`` the stages of different cells overlap, so the sum
    can exceed elapsed wall-clock; the report states CPU-seconds.
    """

    functional_sim: float = 0.0
    cache_io: float = 0.0
    replay: float = 0.0
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "StageTimes") -> None:
        self.functional_sim += other.functional_sim
        self.cache_io += other.cache_io
        self.replay += other.replay
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    @property
    def total(self) -> float:
        return self.functional_sim + self.cache_io + self.replay

    def render(self) -> str:
        rows = [
            ("functional simulation", reporting.seconds(self.functional_sim),
             reporting.percent(self.functional_sim / max(1e-9, self.total))),
            ("trace-cache I/O", reporting.seconds(self.cache_io),
             reporting.percent(self.cache_io / max(1e-9, self.total))),
            ("predictor/timing replay", reporting.seconds(self.replay),
             reporting.percent(self.replay / max(1e-9, self.total))),
        ]
        cache = trace_cache.active_cache()
        state = "off" if cache is None else str(cache.directory)
        return reporting.format_table(
            ["stage", "cpu-seconds", "share"], rows,
            title=f"Stage timing: {self.cells} cells, trace cache "
                  f"{state} ({self.cache_hits} hits / "
                  f"{self.cache_misses} misses)")


#: Process-local accumulator for the current driver invocation.
_stages = StageTimes()


def reset_stage_times() -> None:
    global _stages
    _stages = StageTimes()


def stage_times() -> StageTimes:
    return _stages


def render_stage_report() -> str:
    return _stages.render()


# -- trace acquisition --------------------------------------------------

def trace_for(name: str, scale: float) -> Trace:
    """The workload's trace, via the active trace cache when one is
    configured, timed into the current stage breakdown."""
    cache = trace_cache.active_cache()
    if cache is None:
        started = time.perf_counter()
        trace = suite.run(name, scale)
        _stages.functional_sim += time.perf_counter() - started
        return trace
    before = cache.stats.snapshot()
    trace = cache.fetch(name, scale, producer=suite.run)
    _stages.functional_sim += cache.stats.sim_seconds - before.sim_seconds
    _stages.cache_io += cache.stats.load_seconds - before.load_seconds
    _stages.cache_hits += cache.stats.hits - before.hits
    _stages.cache_misses += cache.stats.misses - before.misses
    return trace


# -- cell fan-out -------------------------------------------------------

def _init_worker(cache_directory: Optional[str],
                 environ_cache: Optional[str]) -> None:
    """Worker bootstrap: mirror the parent's trace-cache decision.

    Needed for spawn/forkserver start methods, and to propagate a
    ``configure()``-time cache that never reached the environment.
    """
    if cache_directory is not None:
        trace_cache.configure(cache_directory)
    elif environ_cache is not None:
        os.environ[trace_cache.ENV_VAR] = environ_cache
    else:
        trace_cache.configure(None)


def _swap_stages(new: StageTimes) -> StageTimes:
    global _stages
    old = _stages
    _stages = new
    return old


def _run_cell(worker: Callable, name: str, scale: float,
              args: tuple) -> Tuple[object, StageTimes]:
    """One cell, with its stage breakdown isolated and returned.

    Runs in the parent (serial mode) or in a pool worker; either way
    the caller merges the returned StageTimes into its accumulator.
    """
    local = StageTimes()
    outer = _swap_stages(local)
    started = time.perf_counter()
    try:
        result = worker(name, scale, *args)
    finally:
        # Restore the caller's accumulator (serial path nests inside
        # the driver's own timing scope).
        _swap_stages(outer)
    elapsed = time.perf_counter() - started
    local.replay += max(
        0.0, elapsed - local.functional_sim - local.cache_io)
    local.cells += 1
    return result, local


def run_cells(worker: Callable, names: Sequence[str], scale: float,
              *args, jobs: Optional[int] = None) -> List[object]:
    """Run ``worker(name, scale, *args)`` for each name; ordered results.

    ``worker`` must be a module-level function (it crosses a process
    boundary when ``jobs > 1``).  Results are returned in ``names``
    order regardless of completion order, so any reduction over them is
    deterministic at every parallelism level.
    """
    names = list(names)
    effective = jobs if jobs is not None else get_jobs()
    effective = max(1, min(effective, len(names) or 1))
    if effective <= 1 or len(names) <= 1:
        results = []
        for name in names:
            result, times = _run_cell(worker, name, scale, args)
            _stages.merge(times)
            results.append(result)
        return results
    cache = trace_cache.active_cache()
    cache_dir = str(cache.directory) if cache is not None else None
    environ_cache = os.environ.get(trace_cache.ENV_VAR)
    with ProcessPoolExecutor(
            max_workers=effective,
            initializer=_init_worker,
            initargs=(cache_dir, environ_cache)) as pool:
        futures = [pool.submit(_run_cell, worker, name, scale, args)
                   for name in names]
        results = []
        for future in futures:         # submission order == names order
            result, times = future.result()
            _stages.merge(times)
            results.append(result)
    return results
