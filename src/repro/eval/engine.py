"""Experiment execution engine: trace cache + process fan-out + timing.

Every experiment driver decomposes into independent *cells* - one
``(workload, ...)`` unit of work whose result does not depend on any
other cell.  This module runs those cells either serially or across a
``ProcessPoolExecutor`` (``--jobs N`` on the CLI, :func:`set_jobs`
programmatically), always returning results in the caller's submission
order so rendered tables are byte-identical at any parallelism.

It also keeps a per-stage wall-clock breakdown (functional simulation
vs. trace-cache I/O vs. predictor/timing replay) so speedups from the
trace cache and the fan-out are directly measurable
(``repro experiment <id> --verbose``).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import metrics
from repro.eval import reporting
from repro.trace import cache as trace_cache
from repro.trace.records import (OC_BRANCH, OC_LOAD, OC_STORE,
                                 OC_SYSCALL, REGION_DATA, REGION_HEAP,
                                 REGION_STACK, Trace)
from repro.workloads import suite

#: Environment variable providing the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

_jobs: Optional[int] = None


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    global _jobs
    _jobs = jobs


def get_jobs() -> int:
    """The effective default worker count (>= 1)."""
    if _jobs is not None:
        return max(1, _jobs)
    try:
        return max(1, int(os.environ.get(JOBS_ENV_VAR, "1")))
    except ValueError:
        return 1


# -- per-stage timing ---------------------------------------------------

@dataclass
class StageTimes:
    """Wall-clock seconds per pipeline stage, summed over cells.

    With ``--jobs N`` the stages of different cells overlap, so the sum
    can exceed elapsed wall-clock; the report states CPU-seconds.
    """

    functional_sim: float = 0.0
    cache_io: float = 0.0
    replay: float = 0.0
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "StageTimes") -> None:
        self.functional_sim += other.functional_sim
        self.cache_io += other.cache_io
        self.replay += other.replay
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    def snapshot(self) -> "StageTimes":
        """An independent copy of the current accumulator state."""
        return StageTimes(self.functional_sim, self.cache_io, self.replay,
                          self.cells, self.cache_hits, self.cache_misses)

    @property
    def total(self) -> float:
        return self.functional_sim + self.cache_io + self.replay

    def render(self) -> str:
        rows = [
            ("functional simulation", reporting.seconds(self.functional_sim),
             reporting.percent(self.functional_sim / max(1e-9, self.total))),
            ("trace-cache I/O", reporting.seconds(self.cache_io),
             reporting.percent(self.cache_io / max(1e-9, self.total))),
            ("predictor/timing replay", reporting.seconds(self.replay),
             reporting.percent(self.replay / max(1e-9, self.total))),
        ]
        cache = trace_cache.active_cache()
        state = "off" if cache is None else str(cache.directory)
        return reporting.format_table(
            ["stage", "cpu-seconds", "share"], rows,
            title=f"Stage timing: {self.cells} cells, trace cache "
                  f"{state} ({self.cache_hits} hits / "
                  f"{self.cache_misses} misses)")


#: Process-local accumulator for the current driver invocation.
_stages = StageTimes()


def reset_stage_times() -> None:
    global _stages
    _stages = StageTimes()


def stage_times() -> StageTimes:
    return _stages


def render_stage_report() -> str:
    return _stages.render()


# -- per-cell metrics collection ----------------------------------------

#: Per-cell metric snapshots (workload name -> snapshot) accumulated by
#: :func:`run_cells` since the last :func:`take_metrics`, in submission
#: order so downstream merges are deterministic at any --jobs level.
_metric_cells: "OrderedDict[str, Dict[str, dict]]" = OrderedDict()


def take_metrics() -> "OrderedDict[str, Dict[str, dict]]":
    """Pop the per-cell metric snapshots collected so far."""
    global _metric_cells
    collected = _metric_cells
    _metric_cells = OrderedDict()
    return collected


def _publish_trace_metrics(trace: Trace) -> None:
    """Publish the functional layer's instruction/region mix.

    A handful of vectorised reductions over the columnar view, taken
    only when collection is enabled - the disabled fast path costs a
    single attribute check.
    """
    registry = metrics.active()
    if not registry.enabled:
        return
    op = trace.columns.op_class
    mem = (op == OC_LOAD) | (op == OC_STORE)
    regions = np.bincount(trace.columns.region[mem], minlength=3)
    ns = registry.scoped("cpu")
    ns.counter("instructions").inc(len(trace))
    ns.counter("loads").inc(int(np.count_nonzero(op == OC_LOAD)))
    ns.counter("stores").inc(int(np.count_nonzero(op == OC_STORE)))
    ns.counter("branches").inc(int(np.count_nonzero(op == OC_BRANCH)))
    ns.counter("syscalls").inc(int(np.count_nonzero(op == OC_SYSCALL)))
    region_ns = ns.scoped("region")
    region_ns.counter("data").inc(int(regions[REGION_DATA]))
    region_ns.counter("heap").inc(int(regions[REGION_HEAP]))
    region_ns.counter("stack").inc(int(regions[REGION_STACK]))


# -- trace acquisition --------------------------------------------------

def _ensure_columns(trace: Trace) -> None:
    """Build the trace's columnar view if missing, attributing the
    conversion to the trace-cache I/O stage.

    Column-first producers (the functional simulator, ``load_trace``)
    make this a no-op; it only pays when a records-backed trace enters
    the engine (e.g. a test stub), and the cost then belongs with trace
    materialisation rather than with simulation or replay.
    """
    if trace.has_columns:
        return
    started = time.perf_counter()
    trace.columns
    _stages.cache_io += time.perf_counter() - started


def trace_for(name: str, scale: float) -> Trace:
    """The workload's trace, via the active trace cache when one is
    configured, timed into the current stage breakdown."""
    cache = trace_cache.active_cache()
    if cache is None:
        started = time.perf_counter()
        trace = suite.run(name, scale)
        _stages.functional_sim += time.perf_counter() - started
        _ensure_columns(trace)
        _publish_trace_metrics(trace)
        return trace
    before = cache.stats.snapshot()
    trace = cache.fetch(name, scale, producer=suite.run)
    _stages.functional_sim += cache.stats.sim_seconds - before.sim_seconds
    _stages.cache_io += cache.stats.load_seconds - before.load_seconds
    _stages.cache_hits += cache.stats.hits - before.hits
    _stages.cache_misses += cache.stats.misses - before.misses
    _ensure_columns(trace)
    _publish_trace_metrics(trace)
    return trace


# -- cell fan-out -------------------------------------------------------

def _init_worker(cache_directory: Optional[str],
                 environ_cache: Optional[str]) -> None:
    """Worker bootstrap: mirror the parent's trace-cache decision.

    Needed for spawn/forkserver start methods, and to propagate a
    ``configure()``-time cache that never reached the environment.
    """
    if cache_directory is not None:
        trace_cache.configure(cache_directory)
    elif environ_cache is not None:
        os.environ[trace_cache.ENV_VAR] = environ_cache
    else:
        trace_cache.configure(None)


def _swap_stages(new: StageTimes) -> StageTimes:
    global _stages
    old = _stages
    _stages = new
    return old


def _run_cell(worker: Callable, name: str, scale: float, args: tuple,
              collect_metrics: bool = False)\
        -> Tuple[object, StageTimes, Optional[Dict[str, dict]]]:
    """One cell, with its stage breakdown and metrics isolated.

    Runs in the parent (serial mode) or in a pool worker; either way
    the caller merges the returned StageTimes into its accumulator and
    the metric snapshot into the per-cell collection.
    """
    local = StageTimes()
    outer = _swap_stages(local)
    registry = metrics.MetricsRegistry() if collect_metrics else None
    outer_registry = metrics.swap(registry) if registry is not None \
        else None
    started = time.perf_counter()
    try:
        result = worker(name, scale, *args)
    finally:
        # Restore the caller's accumulator (serial path nests inside
        # the driver's own timing scope).
        _swap_stages(outer)
        if registry is not None:
            metrics.swap(outer_registry)
    elapsed = time.perf_counter() - started
    local.replay += max(
        0.0, elapsed - local.functional_sim - local.cache_io)
    local.cells += 1
    snapshot = registry.snapshot() if registry is not None else None
    return result, local, snapshot


def _record_cell(name: str, times: StageTimes,
                 snapshot: Optional[Dict[str, dict]]) -> None:
    _stages.merge(times)
    if snapshot is None:
        return
    existing = _metric_cells.get(name)
    _metric_cells[name] = snapshot if existing is None \
        else metrics.merge_snapshots(existing, snapshot)


def run_cells(worker: Callable, names: Sequence[str], scale: float,
              *args, jobs: Optional[int] = None) -> List[object]:
    """Run ``worker(name, scale, *args)`` for each name; ordered results.

    This is the one public execution entry point every experiment
    driver (and the trace-consuming CLI commands) goes through.
    ``worker`` must be a module-level function (it crosses a process
    boundary when ``jobs > 1``).  Results are returned in ``names``
    order regardless of completion order, so any reduction over them is
    deterministic at every parallelism level.

    When the active metrics registry is enabled, each cell collects
    into a fresh registry and the per-cell snapshots are merged into
    the accumulator behind :func:`take_metrics` in submission order -
    so metric exports, like rendered tables, are byte-identical at any
    ``--jobs`` level.
    """
    names = list(names)
    collect = metrics.active().enabled
    effective = jobs if jobs is not None else get_jobs()
    effective = max(1, min(effective, len(names) or 1))
    if effective <= 1 or len(names) <= 1:
        results = []
        for name in names:
            result, times, snapshot = _run_cell(worker, name, scale,
                                                args, collect)
            _record_cell(name, times, snapshot)
            results.append(result)
        return results
    cache = trace_cache.active_cache()
    cache_dir = str(cache.directory) if cache is not None else None
    environ_cache = os.environ.get(trace_cache.ENV_VAR)
    with ProcessPoolExecutor(
            max_workers=effective,
            initializer=_init_worker,
            initargs=(cache_dir, environ_cache)) as pool:
        futures = [pool.submit(_run_cell, worker, name, scale, args,
                               collect)
                   for name in names]
        results = []
        for name, future in zip(names, futures):
            # submission order == names order
            result, times, snapshot = future.result()
            _record_cell(name, times, snapshot)
            results.append(result)
    return results
