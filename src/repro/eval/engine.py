"""Experiment execution engine: trace cache + process fan-out + timing.

Every experiment driver decomposes into independent *cells* - one
``(workload, ...)`` unit of work whose result does not depend on any
other cell.  This module runs those cells either serially or across a
``ProcessPoolExecutor`` (``--jobs N`` on the CLI, :func:`set_jobs`
programmatically), always returning results in the caller's submission
order so rendered tables are byte-identical at any parallelism.

Execution is fault-tolerant (policy in :mod:`repro.eval.faults`):

* a cell that raises is retried with exponential backoff up to the
  retry budget;
* a cell that outlives the per-cell timeout is abandoned, its pool is
  torn down, and the cell re-runs in a fresh pool (timeouts apply only
  in pool mode - serial in-process execution cannot be pre-empted);
* a ``BrokenProcessPool`` (worker killed by the OS, OOM, a crashing
  extension) rebuilds the pool and re-runs only the unfinished cells;
* once the rebuild budget is spent the engine degrades to serial
  in-process execution for whatever remains.

None of this changes results: outcomes are keyed by submission index
and merged in submission order only after every cell has completed, so
a run that survived retries, rebuilds, and serial fallback renders
tables and exports metrics byte-identical to an undisturbed one.
Recovery counters are exposed via :func:`resilience_snapshot`.

With a checkpoint journal configured (:func:`set_checkpoint`, the
CLI's ``--checkpoint DIR``), every completed cell is journalled to
disk as it finishes and a re-run replays journalled cells instead of
executing them - an interrupted sweep resumes with only the missing
cells.

It also keeps a per-stage wall-clock breakdown (functional simulation
vs. trace-cache I/O vs. predictor/timing replay) so speedups from the
trace cache and the fan-out are directly measurable
(``repro experiment <id> --verbose``).
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

import numpy as np

from repro import metrics
from repro.eval import checkpoint, faults, reporting
from repro.obs import spans
from repro.testing import faults as fault_injection
from repro.trace import cache as trace_cache
from repro.trace import shards
from repro.trace.records import (OC_BRANCH, OC_LOAD, OC_STORE,
                                 OC_SYSCALL, REGION_DATA, REGION_HEAP,
                                 REGION_STACK, Trace)
from repro.trace.shards import ShardedTrace
from repro.workloads import suite

#: Environment variable providing the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

_jobs: Optional[int] = None

#: Invalid REPRO_JOBS values already warned about (warn once per value).
_warned_jobs: Set[str] = set()


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    global _jobs
    _jobs = jobs


def _warn_invalid_jobs(raw: str) -> None:
    if raw in _warned_jobs:
        return
    _warned_jobs.add(raw)
    warnings.warn(
        f"ignoring invalid {JOBS_ENV_VAR}={raw!r} (expected an integer "
        f">= 1); running serial",
        RuntimeWarning, stacklevel=3)


def get_jobs() -> int:
    """The effective default worker count (>= 1).

    A ``REPRO_JOBS`` value that is not an integer >= 1 is reported
    once per distinct value and treated as 1 - never silently coerced.
    """
    if _jobs is not None:
        return max(1, _jobs)
    raw = os.environ.get(JOBS_ENV_VAR, "1")
    try:
        value = int(raw)
    except ValueError:
        _warn_invalid_jobs(raw)
        return 1
    if value < 1:
        _warn_invalid_jobs(raw)
        return 1
    return value


# -- per-stage timing ---------------------------------------------------

@dataclass
class StageTimes:
    """Wall-clock seconds per pipeline stage, summed over cells.

    With ``--jobs N`` the stages of different cells overlap, so the sum
    can exceed elapsed wall-clock; the report states CPU-seconds.
    ``cache_corrupt`` rides along so corruption detected inside pool
    workers reaches the parent's accounting.
    """

    functional_sim: float = 0.0
    cache_io: float = 0.0
    replay: float = 0.0
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0

    def merge(self, other: "StageTimes") -> None:
        self.functional_sim += other.functional_sim
        self.cache_io += other.cache_io
        self.replay += other.replay
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_corrupt += other.cache_corrupt

    def snapshot(self) -> "StageTimes":
        """An independent copy of the current accumulator state."""
        return StageTimes(self.functional_sim, self.cache_io, self.replay,
                          self.cells, self.cache_hits, self.cache_misses,
                          self.cache_corrupt)

    @property
    def total(self) -> float:
        return self.functional_sim + self.cache_io + self.replay

    def render(self) -> str:
        rows = [
            ("functional simulation", reporting.seconds(self.functional_sim),
             reporting.percent(self.functional_sim / max(1e-9, self.total))),
            ("trace-cache I/O", reporting.seconds(self.cache_io),
             reporting.percent(self.cache_io / max(1e-9, self.total))),
            ("predictor/timing replay", reporting.seconds(self.replay),
             reporting.percent(self.replay / max(1e-9, self.total))),
        ]
        cache = trace_cache.active_cache()
        state = "off" if cache is None else str(cache.directory)
        return reporting.format_table(
            ["stage", "cpu-seconds", "share"], rows,
            title=f"Stage timing: {self.cells} cells, trace cache "
                  f"{state} ({self.cache_hits} hits / "
                  f"{self.cache_misses} misses)")


#: Process-local accumulator for the current driver invocation.
_stages = StageTimes()

#: Process-local recovery counters for the current driver invocation.
_faults = faults.FaultStats()

#: Active checkpoint journal (None = checkpointing off).
_journal: Optional[checkpoint.CellJournal] = None

#: Per-cell ``[cache hits, cache misses, checkpoint replays]`` in
#: submission order, for the ``--verbose`` per-cell report line.
_cell_notes: "OrderedDict[str, List[int]]" = OrderedDict()


def _cell_key(name: str) -> str:
    """Reporting key for a cell: per-shard pseudo-cells (``name#i``
    from the sharded fan-out) aggregate under their workload name."""
    return name.split("#", 1)[0]


def _note_cell(name: str, hits: int = 0, misses: int = 0,
               replays: int = 0) -> None:
    name = _cell_key(name)
    entry = _cell_notes.get(name)
    if entry is None:
        entry = _cell_notes[name] = [0, 0, 0]
    entry[0] += hits
    entry[1] += misses
    entry[2] += replays


def reset_stage_times() -> None:
    global _stages
    _stages = StageTimes()
    _cell_notes.clear()


def stage_times() -> StageTimes:
    return _stages


def reset_fault_stats() -> None:
    """Zero the per-invocation recovery counters, including the
    module-global shard I/O tallies they surface."""
    global _faults
    _faults = faults.FaultStats()
    shards.STATS.reset()


def fault_stats() -> faults.FaultStats:
    return _faults


def set_checkpoint(directory: Union[str, Path, None])\
        -> Optional[checkpoint.CellJournal]:
    """Journal completed cells under ``directory`` (None = off)."""
    global _journal
    _journal = checkpoint.CellJournal(directory) if directory else None
    return _journal


def active_journal() -> Optional[checkpoint.CellJournal]:
    return _journal


def resilience_snapshot() -> Dict[str, int]:
    """Recovery counters for the current driver invocation.

    These describe what this particular run survived - unlike cell
    metrics they are *not* part of the byte-identical determinism
    guarantee (a recovered run reports its retries; an undisturbed one
    reports zeros).
    """
    snap = {
        "engine.retries": _faults.retries,
        "engine.timeouts": _faults.timeouts,
        "engine.pool_rebuilds": _faults.pool_rebuilds,
        "engine.fallbacks.serial": _faults.serial_fallbacks,
        "trace.cache.corrupt": _stages.cache_corrupt,
    }
    snap.update(shards.STATS.snapshot())
    cache = trace_cache.active_cache()
    if cache is not None:
        snap["trace.cache.quarantine_gc"] = cache.stats.quarantine_gc
        snap["trace.cache.evictions"] = cache.stats.evictions
    if _journal is not None:
        snap["checkpoint.hits"] = _journal.stats.hits
        snap["checkpoint.misses"] = _journal.stats.misses
        snap["checkpoint.corrupt"] = _journal.stats.corrupt
        snap["checkpoint.quarantine_gc"] = \
            _journal.stats.quarantine_gc
        snap["checkpoint.quota_evictions"] = \
            _journal.stats.quota_evictions
    return snap


def render_stage_report() -> str:
    report = _stages.render()
    if _cell_notes:
        width = max(len(name) for name in _cell_notes)
        lines = [f"  {name:<{width}}  cache {hits} hit / {misses} miss"
                 f"  replays {replays}"
                 for name, (hits, misses, replays)
                 in _cell_notes.items()]
        report += "\nper-cell:\n" + "\n".join(lines)
    recovered = {key: value for key, value
                 in resilience_snapshot().items() if value}
    if recovered:
        report += "\nresilience: " + "  ".join(
            f"{key}={value}" for key, value in sorted(recovered.items()))
    return report


# -- per-cell metrics collection ----------------------------------------

#: Per-cell metric snapshots (workload name -> snapshot) accumulated by
#: :func:`run_cells` since the last :func:`take_metrics`, in submission
#: order so downstream merges are deterministic at any --jobs level.
_metric_cells: "OrderedDict[str, Dict[str, dict]]" = OrderedDict()


def take_metrics() -> "OrderedDict[str, Dict[str, dict]]":
    """Pop the per-cell metric snapshots collected so far."""
    global _metric_cells
    collected = _metric_cells
    _metric_cells = OrderedDict()
    return collected


def _publish_trace_metrics(trace: Trace) -> None:
    """Publish the functional layer's instruction/region mix.

    A handful of vectorised reductions over the columnar view, taken
    only when collection is enabled - the disabled fast path costs a
    single attribute check.
    """
    registry = metrics.active()
    if not registry.enabled:
        return
    op = trace.columns.op_class
    mem = (op == OC_LOAD) | (op == OC_STORE)
    regions = np.bincount(trace.columns.region[mem], minlength=3)
    ns = registry.scoped("cpu")
    ns.counter("instructions").inc(len(trace))
    ns.counter("loads").inc(int(np.count_nonzero(op == OC_LOAD)))
    ns.counter("stores").inc(int(np.count_nonzero(op == OC_STORE)))
    ns.counter("branches").inc(int(np.count_nonzero(op == OC_BRANCH)))
    ns.counter("syscalls").inc(int(np.count_nonzero(op == OC_SYSCALL)))
    region_ns = ns.scoped("region")
    region_ns.counter("data").inc(int(regions[REGION_DATA]))
    region_ns.counter("heap").inc(int(regions[REGION_HEAP]))
    region_ns.counter("stack").inc(int(regions[REGION_STACK]))


# -- trace acquisition --------------------------------------------------

def _ensure_columns(trace: Trace) -> None:
    """Build the trace's columnar view if missing, attributing the
    conversion to the trace-cache I/O stage.

    Column-first producers (the functional simulator, ``load_trace``)
    make this a no-op; it only pays when a records-backed trace enters
    the engine (e.g. a test stub), and the cost then belongs with trace
    materialisation rather than with simulation or replay.
    """
    if trace.has_columns:
        return
    started = time.perf_counter()
    with spans.span("trace:columnar"):
        trace.columns
    _stages.cache_io += time.perf_counter() - started


def _publish_manifest_metrics(trace: ShardedTrace) -> None:
    """Publish the ``cpu.*`` instruction/region mix from the shard
    manifest's per-shard tallies - zero shard I/O, byte-identical to
    :func:`_publish_trace_metrics` over the materialised columns."""
    registry = metrics.active()
    if not registry.enabled:
        return
    counts = trace.counts()
    ns = registry.scoped("cpu")
    ns.counter("instructions").inc(counts["instructions"])
    ns.counter("loads").inc(counts["loads"])
    ns.counter("stores").inc(counts["stores"])
    ns.counter("branches").inc(counts["branches"])
    ns.counter("syscalls").inc(counts["syscalls"])
    region_ns = ns.scoped("region")
    region_ns.counter("data").inc(counts["region_data"])
    region_ns.counter("heap").inc(counts["region_heap"])
    region_ns.counter("stack").inc(counts["region_stack"])


def _open_sharded(name: str, scale: float) -> ShardedTrace:
    """Fetch (or produce) the sharded trace, timed into the current
    stage breakdown; publishes nothing."""
    cache = trace_cache.active_cache()
    shard_rows = shards.get_shard_rows()
    if cache is None:
        started = time.perf_counter()
        writer = shards.MemoryShardWriter(name, shard_rows)
        trace = shards.simulate_sharded(name, scale, writer)
        _stages.functional_sim += time.perf_counter() - started
        return trace
    before = cache.stats.snapshot()
    trace = cache.fetch_sharded(name, scale, shard_rows)
    _stages.functional_sim += cache.stats.sim_seconds \
        - before.sim_seconds
    _stages.cache_io += cache.stats.load_seconds - before.load_seconds
    _stages.cache_hits += cache.stats.hits - before.hits
    _stages.cache_misses += cache.stats.misses - before.misses
    _stages.cache_corrupt += cache.stats.corrupt - before.corrupt
    return trace


def trace_handle(name: str, scale: float):
    """A trace *handle* for streaming reductions.

    With sharding enabled (``--shard-rows`` / ``REPRO_SHARD_ROWS``)
    this is a :class:`~repro.trace.shards.ShardedTrace` - disk-backed
    through the active trace cache, memory-chunked otherwise - whose
    chunks stream through the reductions without ever materialising
    the whole trace.  With sharding off it is the plain in-RAM
    :class:`Trace` from :func:`trace_for`.  Either way the workload's
    ``cpu.*`` metrics are published exactly once (from the shard
    manifest's tallies in the sharded case - no shard I/O).
    """
    if not shards.sharding_enabled():
        return trace_for(name, scale)
    with spans.span("trace:fetch", workload=name, sharded=True) as sp:
        cache = trace_cache.active_cache()
        before = cache.stats.snapshot() if cache is not None else None
        trace = _open_sharded(name, scale)
        if cache is None:
            sp.set("cache", "off")
        elif cache.stats.hits > before.hits:
            sp.set("cache", "hit")
        elif cache.stats.corrupt > before.corrupt:
            sp.set("cache", "corrupt")
        else:
            sp.set("cache", "miss")
        _publish_manifest_metrics(trace)
        return trace


def trace_for(name: str, scale: float) -> Trace:
    """The workload's trace, via the active trace cache when one is
    configured, timed into the current stage breakdown."""
    if shards.sharding_enabled():
        # Reuse the sharded entry rather than simulating twice: the
        # consumer needs full columns (e.g. the timing machine), so
        # materialise them from the shard set.
        handle = trace_handle(name, scale)
        started = time.perf_counter()
        trace = handle.materialize()
        _stages.cache_io += time.perf_counter() - started
        return trace
    cache = trace_cache.active_cache()
    with spans.span("trace:fetch", workload=name) as sp:
        if cache is None:
            started = time.perf_counter()
            trace = suite.run(name, scale)
            _stages.functional_sim += time.perf_counter() - started
            sp.set("cache", "off")
            _ensure_columns(trace)
            _publish_trace_metrics(trace)
            return trace
        before = cache.stats.snapshot()
        trace = cache.fetch(name, scale, producer=suite.run)
        _stages.functional_sim += cache.stats.sim_seconds \
            - before.sim_seconds
        _stages.cache_io += cache.stats.load_seconds \
            - before.load_seconds
        _stages.cache_hits += cache.stats.hits - before.hits
        _stages.cache_misses += cache.stats.misses - before.misses
        _stages.cache_corrupt += cache.stats.corrupt - before.corrupt
        if cache.stats.hits > before.hits:
            sp.set("cache", "hit")
        elif cache.stats.corrupt > before.corrupt:
            sp.set("cache", "corrupt")
        else:
            sp.set("cache", "miss")
        _ensure_columns(trace)
        _publish_trace_metrics(trace)
        return trace


# -- cell fan-out -------------------------------------------------------

def _init_worker(cache_directory: Optional[str],
                 environ_cache: Optional[str],
                 fault_spec: Optional[str] = None,
                 obs_state: Optional[tuple] = None,
                 shard_rows: Optional[int] = None) -> None:
    """Worker bootstrap: mirror the parent's trace-cache decision,
    fault-injection plan, and span-tracing state.

    Needed for spawn/forkserver start methods, and to propagate a
    ``configure()``-time cache that never reached the environment.
    ``obs_state`` is :func:`repro.obs.spans.worker_state` output: the
    worker journals spans locally (``spans-<pid>.jsonl``) with its
    top-level spans parented to the engine span that spawned the pool;
    the parent merges worker journals at finalisation.  The state
    tuple also carries the parent's active request context
    (``request_id``/attempt, when the pool serves a daemon request)
    and incarnation id, which the worker re-binds so its spans stay
    greppable by the same client ``request_id`` - the engine passes
    the tuple through blindly and stays ignorant of its shape.
    """
    if cache_directory is not None:
        trace_cache.configure(cache_directory)
    elif environ_cache is not None:
        os.environ[trace_cache.ENV_VAR] = environ_cache
    else:
        trace_cache.configure(None)
    if fault_spec:
        fault_injection.install(fault_spec)
    if obs_state is not None:
        spans.enable_worker(*obs_state)
    if shard_rows is not None:
        shards.set_shard_rows(shard_rows)


def _swap_stages(new: StageTimes) -> StageTimes:
    global _stages
    old = _stages
    _stages = new
    return old


def _run_cell(worker: Callable, name: str, scale: float, args: tuple,
              collect_metrics: bool = False, index: int = 0,
              attempt: int = 0)\
        -> Tuple[object, StageTimes, Optional[Dict[str, dict]]]:
    """One cell, with its stage breakdown and metrics isolated.

    Runs in the parent (serial mode) or in a pool worker; either way
    the caller merges the returned StageTimes into its accumulator and
    the metric snapshot into the per-cell collection.  ``index`` and
    ``attempt`` identify the execution for the deterministic
    fault-injection harness.
    """
    fault_injection.fire_cell(name, index, attempt)
    local = StageTimes()
    outer = _swap_stages(local)
    registry = metrics.MetricsRegistry() if collect_metrics else None
    outer_registry = metrics.swap(registry) if registry is not None \
        else None
    started = time.perf_counter()
    try:
        # The cell span opens after the registry swap so its metric
        # delta is exactly this cell's counters.
        with spans.span("cell", capture_metrics=True, workload=name,
                        index=index, attempt=attempt):
            result = worker(name, scale, *args)
    finally:
        # Restore the caller's accumulator (serial path nests inside
        # the driver's own timing scope).
        _swap_stages(outer)
        if registry is not None:
            metrics.swap(outer_registry)
    elapsed = time.perf_counter() - started
    local.replay += max(
        0.0, elapsed - local.functional_sim - local.cache_io)
    local.cells += 1
    snapshot = registry.snapshot() if registry is not None else None
    return result, local, snapshot


def _record_cell(name: str, times: StageTimes,
                 snapshot: Optional[Dict[str, dict]]) -> None:
    name = _cell_key(name)
    _stages.merge(times)
    _note_cell(name, hits=times.cache_hits, misses=times.cache_misses)
    if snapshot is None:
        return
    existing = _metric_cells.get(name)
    _metric_cells[name] = snapshot if existing is None \
        else metrics.merge_snapshots(existing, snapshot)


def _journal_record(journal: Optional[checkpoint.CellJournal],
                    worker: Callable, name: str, scale: float,
                    args: tuple, outcome: tuple) -> None:
    if journal is None:
        return
    result, times, snapshot = outcome
    journal.record(worker, name, scale, args, result, times, snapshot)


class _SerialCellTimeout(Exception):
    """Internal: raised by the serial watchdog's SIGALRM handler."""


def _serial_watchdog_usable() -> bool:
    """Whether a SIGALRM watchdog can pre-empt serial cells here.

    Interval timers only deliver to the main thread, and non-POSIX
    platforms have no ``SIGALRM`` at all; elsewhere the serial path
    degrades to its historical no-timeout behaviour.
    """
    return (hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


def _run_cell_with_watchdog(timeout: float, worker: Callable, name: str,
                            scale: float, args: tuple, collect: bool,
                            index: int, attempt: int) -> tuple:
    """Run one serial cell under a real-time alarm.

    Raises :class:`_SerialCellTimeout` if the cell outlives
    ``timeout`` seconds, mirroring the pool path's per-cell
    ``future.result(timeout=...)`` pre-emption so ``--jobs 1`` honours
    ``REPRO_CELL_TIMEOUT`` too.  The previous handler and timer are
    always restored.
    """
    def _alarm(signum, frame):
        raise _SerialCellTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _run_cell(worker, name, scale, args, collect, index,
                         attempt)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_serial(worker: Callable, names: Sequence[str], scale: float,
                args: tuple, collect: bool, indices: Sequence[int],
                outcomes: Dict[int, tuple], policy: faults.RetryPolicy,
                journal: Optional[checkpoint.CellJournal]) -> None:
    """In-process execution with per-cell retry.

    ``policy.cell_timeout`` is enforced with a SIGALRM watchdog where
    the platform allows (main thread, POSIX), so a wedged cell fails
    the same way at any ``--jobs`` level; where it doesn't, serial
    cells run untimed as before.
    """
    timeout = policy.cell_timeout
    watchdog = timeout is not None and _serial_watchdog_usable()
    for i in indices:
        attempt = 0
        while True:
            try:
                if watchdog:
                    outcome = _run_cell_with_watchdog(
                        timeout, worker, names[i], scale, args,
                        collect, i, attempt)
                else:
                    outcome = _run_cell(worker, names[i], scale, args,
                                        collect, i, attempt)
            except _SerialCellTimeout:
                _faults.timeouts += 1
                attempt += 1
                if attempt > policy.max_retries:
                    raise faults.CellTimeout(
                        f"cell {names[i]!r} exceeded the {timeout:g}s "
                        f"timeout on {attempt} attempts") from None
                _faults.retries += 1
            except Exception as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    raise faults.CellFailure(
                        f"cell {names[i]!r} failed after {attempt} "
                        f"attempts") from exc
                _faults.retries += 1
                faults._sleep(policy.backoff(attempt))
            else:
                outcomes[i] = outcome
                _journal_record(journal, worker, names[i], scale, args,
                                outcome)
                break


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Release a pool; with ``kill``, terminate its workers first so a
    stalled or wedged cell cannot hold the run hostage."""
    if kill:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
    pool.shutdown(wait=not kill, cancel_futures=True)


def _harvest_done(futures: Dict[int, "object"],
                  outcomes: Dict[int, tuple], worker: Callable,
                  names: Sequence[str], scale: float, args: tuple,
                  journal: Optional[checkpoint.CellJournal]) -> None:
    """Bank results of cells that finished before a pool went down."""
    for j, future in futures.items():
        if j in outcomes or not future.done():
            continue
        try:
            outcome = future.result(timeout=0)
        except Exception:
            continue        # re-runs in the next pool
        outcomes[j] = outcome
        _journal_record(journal, worker, names[j], scale, args, outcome)


def _run_pool(worker: Callable, names: Sequence[str], scale: float,
              args: tuple, collect: bool, indices: Sequence[int],
              outcomes: Dict[int, tuple], policy: faults.RetryPolicy,
              journal: Optional[checkpoint.CellJournal],
              max_workers: int) -> None:
    """Pool execution with retries, timeouts, rebuilds, and - once the
    rebuild budget is spent - serial fallback for the remaining cells."""
    pending = list(indices)
    attempts = {i: 0 for i in pending}
    rebuilds = 0
    cache = trace_cache.active_cache()
    cache_dir = str(cache.directory) if cache is not None else None
    environ_cache = os.environ.get(trace_cache.ENV_VAR)
    fault_spec = fault_injection.active_spec()
    obs_state = spans.worker_state()
    while pending:
        if rebuilds > policy.max_pool_rebuilds:
            _faults.serial_fallbacks += 1
            _run_serial(worker, names, scale, args, collect, pending,
                        outcomes, policy, journal)
            return
        pool = ProcessPoolExecutor(
            max_workers=min(max_workers, len(pending)),
            initializer=_init_worker,
            initargs=(cache_dir, environ_cache, fault_spec, obs_state,
                      shards.get_shard_rows()))
        futures = {i: pool.submit(_run_cell, worker, names[i], scale,
                                  args, collect, i, attempts[i])
                   for i in pending}
        abandon = False     # the pool must be torn down forcibly
        broken = False      # workers died (vs. a stalled cell)
        try:
            for i in pending:
                while i not in outcomes:
                    try:
                        outcome = futures[i].result(
                            timeout=policy.cell_timeout)
                    except FuturesTimeout:
                        # The worker is wedged; it occupies a pool slot
                        # until killed, so tear the whole pool down and
                        # re-run the unfinished cells in a fresh one.
                        _faults.timeouts += 1
                        attempts[i] += 1
                        abandon = True
                        if attempts[i] > policy.max_retries:
                            raise faults.CellTimeout(
                                f"cell {names[i]!r} exceeded the "
                                f"{policy.cell_timeout:g}s timeout on "
                                f"{attempts[i]} attempts")
                        _faults.retries += 1
                        break
                    except BrokenProcessPool:
                        rebuilds += 1
                        _faults.pool_rebuilds += 1
                        abandon = True
                        broken = True
                        break
                    except Exception as exc:
                        attempts[i] += 1
                        if attempts[i] > policy.max_retries:
                            abandon = True
                            raise faults.CellFailure(
                                f"cell {names[i]!r} failed after "
                                f"{attempts[i]} attempts") from exc
                        _faults.retries += 1
                        faults._sleep(policy.backoff(attempts[i]))
                        # The pool itself is healthy - only this cell
                        # failed; resubmit it alone.
                        try:
                            futures[i] = pool.submit(
                                _run_cell, worker, names[i], scale,
                                args, collect, i, attempts[i])
                        except BrokenProcessPool:
                            rebuilds += 1
                            _faults.pool_rebuilds += 1
                            abandon = True
                            broken = True
                            break
                    else:
                        outcomes[i] = outcome
                        _journal_record(journal, worker, names[i],
                                        scale, args, outcome)
                if abandon:
                    break
        finally:
            if abandon:
                _harvest_done(futures, outcomes, worker, names, scale,
                              args, journal)
            _shutdown_pool(pool, kill=abandon)
        if broken:
            # Every unfinished cell lost an execution attempt with the
            # pool (the culprit is unknowable from the parent); the
            # charge also lets attempt-keyed fault injection converge.
            for j in pending:
                if j not in outcomes:
                    attempts[j] += 1
                    _faults.retries += 1
        pending = [i for i in pending if i not in outcomes]


def run_cells(worker: Callable, names: Sequence[str], scale: float,
              *args, jobs: Optional[int] = None) -> List[object]:
    """Run ``worker(name, scale, *args)`` for each name; ordered results.

    This is the one public execution entry point every experiment
    driver (and the trace-consuming CLI commands) goes through.
    ``worker`` must be a module-level function (it crosses a process
    boundary when ``jobs > 1``).  Results are returned in ``names``
    order regardless of completion order - and regardless of retries,
    pool rebuilds, timeouts, or serial fallback along the way - so any
    reduction over them is deterministic at every parallelism level.

    When the active metrics registry is enabled, each cell collects
    into a fresh registry and the per-cell snapshots are merged into
    the accumulator behind :func:`take_metrics` in submission order -
    so metric exports, like rendered tables, are byte-identical at any
    ``--jobs`` level.  Stage times and metric snapshots are merged only
    after *all* cells have completed, which keeps that guarantee intact
    on every fault-recovery path.

    With a checkpoint journal configured, journalled cells are replayed
    from disk (restoring their recorded stage times and metric
    snapshots) and only the missing cells execute.
    """
    names = list(names)
    collect = metrics.active().enabled
    policy = faults.active_policy()
    journal = _journal
    outcomes: Dict[int, tuple] = {}
    pending: List[int] = []
    with spans.span("engine:run_cells", cells=len(names)) as run_span:
        for i, name in enumerate(names):
            if journal is None:
                pending.append(i)
                continue
            with spans.span("checkpoint:replay", workload=name) as sp:
                cached = journal.load(worker, name, scale, args)
                sp.set("hit", cached is not None)
            if cached is not None:
                outcomes[i] = cached
                _note_cell(name, replays=1)
            else:
                pending.append(i)
        if pending:
            effective = jobs if jobs is not None else get_jobs()
            effective = max(1, min(effective, len(pending)))
            run_span.set("jobs", effective)
            if effective <= 1 or len(pending) <= 1:
                _run_serial(worker, names, scale, args, collect,
                            pending, outcomes, policy, journal)
            else:
                _run_pool(worker, names, scale, args, collect, pending,
                          outcomes, policy, journal, effective)
        results = []
        for i, name in enumerate(names):
            result, times, snapshot = outcomes[i]
            _record_cell(name, times, snapshot)
            results.append(result)
        return results


# -- (cell x shard) fan-out ---------------------------------------------

def _produce_cell(name: str, scale: float) -> int:
    """Pass-1 worker: ensure the sharded entry exists; shard count.

    Also the cell that publishes the workload's ``cpu.*`` metrics (from
    the manifest tallies), so the fan-out's merged per-workload
    snapshot carries them exactly once, like a monolithic cell.
    """
    handle = trace_handle(name, scale)
    if not isinstance(handle, ShardedTrace):
        raise RuntimeError(
            "sharded fan-out requires sharding enabled in the worker")
    return handle.num_shards


def _shard_cell(pseudo: str, scale: float, shard_worker: Callable,
                *args) -> object:
    """Pass-2 worker: run ``shard_worker`` over one ``name#i`` shard.

    Loads exactly one shard (lazy manifest open + one chunk read) and
    publishes no metrics - every publication belongs to the produce or
    combine cells so merged snapshots match the monolithic run.
    """
    name, _, index = pseudo.partition("#")
    index = int(index)
    trace = _open_sharded(name, scale)
    chunk = trace.chunk(index)
    return shard_worker(name, scale, chunk, index, *args)


def _combine_cell(name: str, scale: float, combine_worker: Callable,
                  partials: Dict[str, list], *args) -> object:
    """Pass-3 worker: fold one workload's ordered shard partials."""
    return combine_worker(name, scale, partials[name], *args)


def run_cells_sharded(shard_worker: Callable, combine_worker: Callable,
                      names: Sequence[str], scale: float, *args,
                      jobs: Optional[int] = None,
                      fallback: Optional[Callable] = None)\
        -> List[object]:
    """Fan one experiment out over every ``(workload, shard)`` pair.

    Three passes, each through :func:`run_cells` (so retries, pool
    rebuilds, checkpointing, and ordered merging all apply):

    1. *produce* - one cell per workload materialises its sharded
       trace into the cache and publishes the ``cpu.*`` metrics;
    2. *shard* - one cell per ``(workload, shard)`` runs
       ``shard_worker(name, scale, chunk, index, *args)``, loading
       only that shard (this is where ``--jobs`` buys wall-clock);
    3. *combine* - in-process per workload,
       ``combine_worker(name, scale, partials, *args)`` folds the
       ordered shard partials and publishes the reduction's metrics.

    Byte-identity: shard cells publish nothing, the produce and
    combine cells publish exactly what one monolithic cell would, and
    partials are folded in shard order - so tables and metric exports
    match the unsharded run at any ``--jobs`` / ``--shard-rows``.

    Requires sharding *and* a disk-backed trace cache (pool workers
    read shards by path); otherwise every workload runs through
    ``fallback`` (default ``combine_worker``-compatible monolithic
    worker supplied by the driver) via plain :func:`run_cells`.
    """
    if (not shards.sharding_enabled()
            or trace_cache.active_cache() is None):
        if fallback is None:
            raise ValueError("run_cells_sharded needs a fallback "
                             "worker when sharding is unavailable")
        return run_cells(fallback, names, scale, *args, jobs=jobs)
    names = list(names)
    with spans.span("engine:fanout", cells=len(names)) as sp:
        counts = run_cells(_produce_cell, names, scale, jobs=jobs)
        pseudo = [f"{name}#{index}"
                  for name, count in zip(names, counts)
                  for index in range(count)]
        sp.set("shards", len(pseudo))
        flat = run_cells(_shard_cell, pseudo, scale, shard_worker,
                         *args, jobs=jobs)
        partials: Dict[str, list] = {name: [] for name in names}
        for pseudo_name, partial in zip(pseudo, flat):
            partials[_cell_key(pseudo_name)].append(partial)
        # The combine pass is cheap, in-process, and fully derivable
        # from the journalled shard cells - journalling it would key
        # entries on the partials themselves (huge, repr-truncated),
        # so it always re-runs instead.
        global _journal
        journal, _journal = _journal, None
        try:
            return run_cells(_combine_cell, names, scale,
                             combine_worker, partials, *args, jobs=1)
        finally:
            _journal = journal
