"""Cell-level checkpoint journal for interruptible experiment sweeps.

A :class:`CellJournal` is a directory holding one small pickle file per
completed cell, written atomically (temp file + ``os.replace``) the
moment the cell finishes - so a sweep killed at any instant (SIGKILL,
OOM, power loss) leaves a journal describing exactly the cells that
completed.  Re-running the same sweep with the same journal directory
(the CLI's ``--checkpoint DIR``) replays those cells from disk and
executes only the missing ones; replayed cells restore their recorded
metric snapshots and stage times, so a resumed run renders tables and
exports metrics byte-identical to an uninterrupted one.

Entries are keyed by a digest of the cell's identity - the worker
function's qualified name, the workload name, the scale, and the extra
arguments - so one journal directory can safely hold cells from
several experiments, and a changed worker or argument list never
matches a stale entry.  Unreadable or mismatched entries are
quarantined (renamed aside) and treated as missing: a corrupt journal
costs a re-run, never a crash and never wrong data.

Growth is bounded: with a byte quota set (the ``max_bytes``
constructor argument, or the ``REPRO_CHECKPOINT_MAX_BYTES``
environment variable), every record that pushes the journal past the
quota rotates the *oldest* entries aside into quarantine - where the
standard expiry GC (:mod:`repro.quarantine`) reclaims them - until
the journal fits again.  Rotated cells simply re-run on the next
resume; a full disk never becomes a crashed sweep.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from repro import quarantine

#: Bump to invalidate every existing journal entry at once.
FORMAT_VERSION = 2

#: Journal file suffix (entries are ``<digest>.cell``).
SUFFIX = ".cell"

#: Environment variable bounding total journal bytes (0/unset = off).
ENV_MAX_BYTES = "REPRO_CHECKPOINT_MAX_BYTES"


def default_max_bytes() -> int:
    """The ``REPRO_CHECKPOINT_MAX_BYTES`` quota (0 = unbounded)."""
    raw = os.environ.get(ENV_MAX_BYTES)
    if raw is None or not raw.strip():
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return value if value > 0 else 0


@dataclass
class JournalStats:
    """Per-journal counters (reset with :meth:`CellJournal.reset_stats`)."""

    hits: int = 0        # cells replayed from the journal
    misses: int = 0      # cells that had to run
    corrupt: int = 0     # unreadable entries quarantined
    quarantine_gc: int = 0   # expired quarantined files collected
    quota_evictions: int = 0  # oldest entries rotated out by the quota

    def snapshot(self) -> "JournalStats":
        return JournalStats(self.hits, self.misses, self.corrupt,
                            self.quarantine_gc, self.quota_evictions)


def _stable_repr(value: object) -> str:
    """``repr`` that is stable across processes.

    Plain function reprs embed a memory address, which would make any
    cell whose extra args carry a worker function (the sharded
    fan-out's dispatch cells) miss its own journal entry on every
    re-run; name functions by module and qualname instead.
    """
    if callable(value):
        qualname = getattr(value, "__qualname__", None)
        if qualname:
            return (f"<fn {getattr(value, '__module__', '')}"
                    f".{qualname}>")
    return repr(value)


def cell_key(worker: Callable, name: str, scale: float,
             args: tuple) -> str:
    """Stable digest identifying one cell of one sweep."""
    ident = "\0".join((
        getattr(worker, "__module__", "") or "",
        getattr(worker, "__qualname__", None) or repr(worker),
        name,
        repr(scale),
        "(" + ", ".join(_stable_repr(arg) for arg in args) + ")",
        str(FORMAT_VERSION),
    ))
    return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:32]


class CellJournal:
    """A directory of completed-cell records (see module docstring)."""

    def __init__(self, directory: Union[str, Path],
                 max_bytes: Optional[int] = None) -> None:
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"checkpoint path {self.directory} exists and is not "
                f"a directory")
        self.max_bytes = max_bytes if max_bytes is not None \
            else default_max_bytes()
        self.stats = JournalStats()
        # Opening a journal garbage-collects expired quarantined
        # entries (same knobs as the trace cache: see
        # :mod:`repro.quarantine`).
        self.stats.quarantine_gc += quarantine.collect(self.directory)

    def reset_stats(self) -> None:
        self.stats = JournalStats()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}{SUFFIX}"

    # -- entry I/O ------------------------------------------------------

    def load(self, worker: Callable, name: str, scale: float,
             args: tuple) -> Optional[Tuple[object, object, object]]:
        """The recorded ``(result, stage_times, metric_snapshot)`` for
        a completed cell, or None (counting a miss) if absent/invalid."""
        key = cell_key(worker, name, scale, args)
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload.get("version") != FORMAT_VERSION
                    or payload.get("key") != key):
                raise ValueError("journal entry identity mismatch")
            outcome = (payload["result"], payload["times"],
                       payload["snapshot"])
        except Exception:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return outcome

    def record(self, worker: Callable, name: str, scale: float,
               args: tuple, result: object, times: object,
               snapshot: object) -> Path:
        """Atomically journal one completed cell; returns its path."""
        key = cell_key(worker, name, scale, args)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        payload = {"version": FORMAT_VERSION, "key": key, "name": name,
                   "result": result, "times": times,
                   "snapshot": snapshot}
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self._enforce_quota(keep=path)
        return path

    def _enforce_quota(self, keep: Path) -> None:
        """Rotate the oldest entries aside until the quota is met.

        The entry just written (``keep``) is never rotated, so a quota
        smaller than one record still makes forward progress instead
        of evicting the cell that was just paid for.
        """
        if not self.max_bytes:
            return
        try:
            entries = [(entry.stat().st_mtime, entry.stat().st_size,
                        entry)
                       for entry in self.directory.iterdir()
                       if entry.suffix == SUFFIX]
        except OSError:
            return
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, entry in sorted(entries):
            if entry == keep:
                continue
            self.stats.quota_evictions += 1
            try:
                os.replace(entry,
                           entry.with_name(entry.name + ".quarantined"))
            except OSError:
                try:
                    entry.unlink()
                except OSError:
                    continue
            total -= size
            if total <= self.max_bytes:
                break

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside (last corrupt copy wins)."""
        self.stats.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        """Completed cells currently journalled."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for entry in self.directory.iterdir()
                   if entry.suffix == SUFFIX)
