"""Plain-text table rendering for experiment results.

Every experiment driver returns structured data; these helpers render
them as aligned text tables shaped like the paper's tables and figure
captions, so bench output can be compared against the paper at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(text: str) -> bool:
    stripped = text.lstrip("+-").replace(".", "", 1).replace("%", "")
    return stripped.isdigit()


def percent(value: float, digits: int = 2) -> str:
    return f"{100 * value:.{digits}f}%"


def percent_or_na(value, digits: int = 2) -> str:
    """Like :func:`percent`, but renders ``None`` as ``n/a``.

    Used for rates whose underlying structure may be absent (e.g. the
    LVC hit rate on a conventional machine) - rendering those as 0.00%
    would misreport "present but never hit".
    """
    return "n/a" if value is None else percent(value, digits)


def mean_and_std(stats) -> str:
    """Render a WindowStats as the paper's 'mean (std)' cell format."""
    return f"{stats.mean:.2f} ({stats.std:.2f})"


def seconds(value: float) -> str:
    """Render a wall-clock duration with sub-second detail kept legible."""
    if value < 0.01:
        return f"{1000 * value:.1f} ms"
    if value < 60:
        return f"{value:.2f} s"
    return f"{int(value // 60)}m{value % 60:04.1f}s"
