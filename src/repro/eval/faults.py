"""Fault-tolerance policy and accounting for the experiment engine.

The engine treats every cell as retryable: a cell that raises is
re-run with exponential backoff up to a retry budget, a cell that
outlives the per-cell timeout is abandoned and re-run in a fresh pool,
a ``BrokenProcessPool`` triggers an automatic pool rebuild, and once
the rebuild budget is spent the engine degrades to serial in-process
execution for the remaining cells.  This module holds the knobs
(:class:`RetryPolicy`), the failure types, and the per-run counters
(:class:`FaultStats`) the engine exposes through
``engine.resilience_snapshot()``.

Environment variables (read once per :func:`from_env` call)::

    REPRO_RETRIES        per-cell retry budget        (default 2)
    REPRO_RETRY_BACKOFF  first backoff delay, seconds (default 0.05)
    REPRO_CELL_TIMEOUT   per-cell timeout, seconds    (default off)
    REPRO_POOL_REBUILDS  pool rebuilds before serial  (default 2)

Backoff is deterministic (no jitter): ``base * 2**(attempt-1)``
capped at :attr:`RetryPolicy.backoff_max`.  Tests monkeypatch
:data:`_sleep` to observe delays without waiting them out.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

#: Environment variables configuring the default policy.
RETRIES_ENV_VAR = "REPRO_RETRIES"
BACKOFF_ENV_VAR = "REPRO_RETRY_BACKOFF"
TIMEOUT_ENV_VAR = "REPRO_CELL_TIMEOUT"
REBUILDS_ENV_VAR = "REPRO_POOL_REBUILDS"

#: Injectable sleep so tests can assert backoff without waiting.
_sleep = time.sleep


class CellFailure(RuntimeError):
    """A cell exhausted its retry budget; ``__cause__`` is the last
    underlying exception (None for crashed workers)."""


class CellTimeout(CellFailure):
    """A cell exceeded the per-cell timeout on every attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """Engine fault-tolerance knobs (immutable; swap whole policies)."""

    max_retries: int = 2            # re-runs after the first attempt
    backoff_base: float = 0.05      # seconds before the first retry
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    cell_timeout: Optional[float] = None   # None = no timeout
    max_pool_rebuilds: int = 2      # rebuilds before serial fallback

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        delay = self.backoff_base \
            * self.backoff_factor ** max(0, attempt - 1)
        return min(self.backoff_max, delay)


def _env_int(var: str, default: int) -> int:
    try:
        return max(0, int(os.environ.get(var, default)))
    except ValueError:
        return default


def _env_float(var: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(var)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def from_env() -> RetryPolicy:
    """A policy built from the ``REPRO_*`` environment variables."""
    return RetryPolicy(
        max_retries=_env_int(RETRIES_ENV_VAR, 2),
        backoff_base=_env_float(BACKOFF_ENV_VAR, 0.05),
        cell_timeout=_env_float(TIMEOUT_ENV_VAR, None),
        max_pool_rebuilds=_env_int(REBUILDS_ENV_VAR, 2),
    )


_policy: Optional[RetryPolicy] = None


def set_policy(policy: Optional[RetryPolicy]) -> None:
    """Set the process-wide policy (None = rebuild from environment)."""
    global _policy
    _policy = policy


def active_policy() -> RetryPolicy:
    """The policy in effect: explicit :func:`set_policy` > environment."""
    return _policy if _policy is not None else from_env()


@dataclass
class FaultStats:
    """Counters for one driver invocation's recoveries.

    ``retries`` counts re-run cells (whatever the cause), ``timeouts``
    cells abandoned past the per-cell deadline, ``pool_rebuilds``
    pools rebuilt after worker death, ``serial_fallbacks`` degradations
    to in-process execution.
    """

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0

    def snapshot(self) -> "FaultStats":
        return FaultStats(self.retries, self.timeouts,
                          self.pool_rebuilds, self.serial_fallbacks)

    @property
    def any(self) -> bool:
        return bool(self.retries or self.timeouts or self.pool_rebuilds
                    or self.serial_fallbacks)
