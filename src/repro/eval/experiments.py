"""Experiment drivers: one function per table/figure of the paper.

Each driver runs the full workload suite (at a configurable scale)
through the relevant subsystem and returns an
:class:`repro.eval.result.ExperimentResult` - the uniform container
carrying the render-ready table, per-cell metric snapshots (when the
metrics registry is enabled), the wall-clock stage breakdown, and the
driver's typed payload under ``data``.  The experiment ids follow
DESIGN.md's per-experiment index: the paper artifacts (T1, F2, T2, F4,
T3, F5, S33, F8), the ablations (A1-A3), and the extensions (A4
Figure-6 compiler hints, A5 banked caches, A6 heap decoupling, A7
gshare front end, A8 hint steering).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.lvc import StackCacheResult, stack_cache_hit_rate
from repro.eval import engine, reporting
from repro.eval.result import ExperimentResult
from repro.predictor.evaluate import (PredictionResult, evaluate_scheme,
                                      occupancy_by_context)
from repro.predictor.hints import hints_from_trace
from repro.predictor.schemes import FIGURE4_SCHEMES, Scheme
from repro.timing.config import MachineConfig, figure8_configs
from repro.timing.machine import TimingResult, simulate
from repro.trace.regions import (REGION_CLASSES, RegionBreakdown,
                                 breakdown_from_partial,
                                 fold_pc_partials, pc_region_partial,
                                 region_breakdown)
from repro.trace.windows import (RegionWindowStats,
                                 combine_window_partials,
                                 stats_from_moments,
                                 window_shard_partial, window_stats)
from repro.workloads import suite

#: ARPT capacities evaluated in the paper's Figure 5 (None = unlimited),
#: extended downwards: our MiniC programs have ~100x fewer static memory
#: instructions than SPEC95 binaries, so the capacity knee the paper sees
#: between 8K and 64K entries appears here between 64 and 1K entries.
FIGURE5_SIZES: Tuple[Optional[int], ...] = (None, 64 * 1024, 32 * 1024,
                                            16 * 1024, 8 * 1024, 1024,
                                            256, 64)


@contextmanager
def _workload(name: str, scale: float):
    """One workload's trace (via the trace cache when one is active),
    with eviction scoped to exactly this ``(name, scale)`` entry - a
    blanket ``cache_clear`` would drop entries other callers (CLI
    loops, benchmarks, nested drivers) are still iterating at a
    different scale."""
    trace = engine.trace_for(name, scale)
    try:
        yield trace
    finally:
        suite.evict(name, scale)


@contextmanager
def _workload_handle(name: str, scale: float):
    """Like :func:`_workload`, but yields a streaming *handle*.

    With sharding enabled (``--shard-rows``) this is a
    :class:`~repro.trace.shards.ShardedTrace` whose chunks stream
    through the region/window/predictor reductions one shard at a time
    - peak RSS stays bounded by the shard size, not the trace length.
    With sharding off it degrades to the plain in-RAM trace.  Every
    reduction taking a handle is byte-identical across both forms.
    """
    trace = engine.trace_handle(name, scale)
    try:
        yield trace
    finally:
        suite.evict(name, scale)


def _traces(scale: float, names: Sequence[str]):
    """Stream (name, trace) pairs, evicting each trace afterwards."""
    for name in names:
        with _workload(name, scale) as trace:
            yield name, trace


class _TableResult:
    """Mixin for driver payloads: subclasses provide :meth:`table`.

    ``render()`` stays available on the payload so pre-redesign call
    sites holding a payload directly keep working.
    """

    def table(self) -> Tuple[List[str], List[list], str]:
        """The render-ready ``(headers, rows, title)`` triple."""
        raise NotImplementedError

    def render(self) -> str:
        """The paper-style text table."""
        headers, rows, title = self.table()
        return reporting.format_table(headers, rows, title=title)


def _result(experiment: str, payload: _TableResult) -> ExperimentResult:
    """Wrap a typed payload in the uniform :class:`ExperimentResult`.

    Pops the per-cell metric snapshots the engine accumulated for this
    driver invocation and freezes the stage-time breakdown, so the
    result is self-contained.
    """
    headers, rows, title = payload.table()
    return ExperimentResult(
        experiment=experiment,
        title=title,
        headers=list(headers),
        rows=[list(row) for row in rows],
        metrics=engine.take_metrics(),
        stage_times=engine.stage_times().snapshot(),
        data=payload,
    )


# ----------------------------------------------------------------------
# T1 - Table 1: suite characteristics
# ----------------------------------------------------------------------

@dataclass
class Table1Row:
    name: str
    mirrors: str
    instructions: int
    load_pct: float
    store_pct: float


@dataclass
class Table1Result(_TableResult):
    rows: List[Table1Row]

    def table(self):
        return (
            ["Benchmark", "Mirrors", "Inst. count", "L%", "S%"],
            [[r.name, r.mirrors, r.instructions, f"{r.load_pct:.0f}",
              f"{r.store_pct:.0f}"] for r in self.rows],
            "Table 1: dynamic instruction counts and load/store mix",
        )


def _table1_cell(name: str, scale: float) -> Table1Row:
    # Under sharding every figure here comes straight from the shard
    # manifest's tallies - the cell performs zero shard I/O.
    with _workload_handle(name, scale) as trace:
        return Table1Row(
            name=name,
            mirrors=suite.spec(name).mirrors,
            instructions=len(trace),
            load_pct=100 * trace.load_fraction(),
            store_pct=100 * trace.store_fraction(),
        )


def table1(scale: float = 1.0,
           names: Sequence[str] = suite.ALL_WORKLOADS,
           jobs: Optional[int] = None) -> ExperimentResult:
    """T1: suite characteristics - dynamic counts and load/store mix."""
    return _result("table1", Table1Result(
        rows=engine.run_cells(_table1_cell, names, scale, jobs=jobs)))


# ----------------------------------------------------------------------
# F2 - Figure 2: static region-class breakdown
# ----------------------------------------------------------------------

@dataclass
class Figure2Result(_TableResult):
    breakdowns: List[RegionBreakdown]

    @property
    def average_multi_region_static(self) -> float:
        values = [b.multi_region_static_fraction for b in self.breakdowns]
        return sum(values) / max(1, len(values))

    @property
    def average_stack_only_static(self) -> float:
        values = [b.stack_only_static_fraction for b in self.breakdowns]
        return sum(values) / max(1, len(values))

    def table(self):
        rows = []
        for b in self.breakdowns:
            rows.append([b.name] + [
                reporting.percent(b.static_fraction(cls), 1)
                for cls in REGION_CLASSES])
        return (["Benchmark"] + list(REGION_CLASSES), rows,
                "Figure 2: static memory instructions by accessed "
                "region(s)")


def _figure2_cell(name: str, scale: float) -> RegionBreakdown:
    with _workload_handle(name, scale) as trace:
        return region_breakdown(trace)


def _figure2_shard(name: str, scale: float, chunk, index: int):
    """Per-shard Figure-2 partial: bounded per-PC region masks."""
    return pc_region_partial(chunk)


def _figure2_combine(name: str, scale: float,
                     partials: list) -> RegionBreakdown:
    _, masks, dynamic = fold_pc_partials(partials)
    return breakdown_from_partial(name, masks, dynamic)


def figure2(scale: float = 1.0,
            names: Sequence[str] = suite.ALL_WORKLOADS,
            jobs: Optional[int] = None) -> ExperimentResult:
    """F2: static memory instructions by accessed region(s).

    With sharding enabled and a trace cache active, fans out over
    every ``(workload, shard)`` pair - each shard's per-PC partial is
    computed in its own cell and the bounded partials fold in shard
    order, byte-identical to the monolithic reduction.
    """
    return _result("figure2", Figure2Result(
        breakdowns=engine.run_cells_sharded(
            _figure2_shard, _figure2_combine, names, scale, jobs=jobs,
            fallback=_figure2_cell)))


# ----------------------------------------------------------------------
# T2 - Table 2: sliding-window bandwidth statistics
# ----------------------------------------------------------------------

@dataclass
class Table2Result(_TableResult):
    stats: List[Tuple[RegionWindowStats, RegionWindowStats]]  # (w32, w64)

    def table(self):
        rows = []
        for w32, w64 in self.stats:
            rows.append([
                w32.name,
                reporting.mean_and_std(w32.data),
                reporting.mean_and_std(w32.heap),
                reporting.mean_and_std(w32.stack),
                reporting.mean_and_std(w64.data),
                reporting.mean_and_std(w64.heap),
                reporting.mean_and_std(w64.stack),
            ])
        return (["Benchmark", "D@32", "H@32", "S@32", "D@64", "H@64",
                 "S@64"], rows,
                "Table 2: mean (std) region accesses per 32/64-insn "
                "window")


#: The two window widths of the paper's Table 2.
_TABLE2_WINDOWS = (32, 64)


def _table2_cell(name: str, scale: float)\
        -> Tuple[RegionWindowStats, RegionWindowStats]:
    with _workload_handle(name, scale) as trace:
        return tuple(window_stats(trace, window)
                     for window in _TABLE2_WINDOWS)


def _table2_shard(name: str, scale: float, chunk, index: int):
    """Per-shard Table-2 partials (inner moments + boundary edges)."""
    return tuple(window_shard_partial(chunk, window)
                 for window in _TABLE2_WINDOWS)


def _table2_combine(name: str, scale: float, partials: list)\
        -> Tuple[RegionWindowStats, RegionWindowStats]:
    out = []
    for position, window in enumerate(_TABLE2_WINDOWS):
        moments = combine_window_partials(
            [p[position] for p in partials], window)
        out.append(stats_from_moments(name, window, *moments))
    return tuple(out)


def table2(scale: float = 1.0,
           names: Sequence[str] = suite.ALL_WORKLOADS,
           jobs: Optional[int] = None) -> ExperimentResult:
    """T2: per-region bandwidth and burstiness in sliding windows.

    Fans out over ``(workload, shard)`` when sharding is enabled: each
    shard contributes exact inner moments plus its boundary edges, the
    combine step reconstructs every window straddling a shard boundary,
    and the folded moments (and the published ``trace.window<W>.*``
    time-series) match the monolithic pass bit for bit.
    """
    return _result("table2", Table2Result(
        stats=engine.run_cells_sharded(
            _table2_shard, _table2_combine, names, scale, jobs=jobs,
            fallback=_table2_cell)))


# ----------------------------------------------------------------------
# F4 - Figure 4: prediction accuracy per scheme (unlimited ARPT)
# ----------------------------------------------------------------------

@dataclass
class Figure4Result(_TableResult):
    results: Dict[str, Dict[str, PredictionResult]]  # name -> scheme -> res

    def average_accuracy(self, scheme: str,
                         names: Optional[Sequence[str]] = None) -> float:
        names = names or list(self.results)
        return sum(self.results[n][scheme].accuracy
                   for n in names) / len(names)

    def table(self):
        schemes = [s.name for s in FIGURE4_SCHEMES]
        rows = []
        for name, by_scheme in self.results.items():
            row = [name,
                   reporting.percent(by_scheme["static"].definitive_fraction,
                                     1)]
            row += [reporting.percent(by_scheme[s].accuracy, 2)
                    for s in schemes]
            rows.append(row)
        return (["Benchmark", "mode-definitive"] + schemes, rows,
                "Figure 4: correct stack/non-stack classification")


def _figure4_cell(name: str, scale: float, schemes: Tuple[Scheme, ...])\
        -> Dict[str, PredictionResult]:
    with _workload_handle(name, scale) as trace:
        return {scheme.name: evaluate_scheme(trace, scheme)
                for scheme in schemes}


def figure4(scale: float = 1.0,
            names: Sequence[str] = suite.ALL_WORKLOADS,
            schemes: Sequence[Scheme] = FIGURE4_SCHEMES,
            jobs: Optional[int] = None) -> ExperimentResult:
    """F4: stack/non-stack classification accuracy per scheme."""
    cells = engine.run_cells(_figure4_cell, names, scale, tuple(schemes),
                             jobs=jobs)
    return _result("figure4", Figure4Result(results=dict(zip(names,
                                                             cells))))


# ----------------------------------------------------------------------
# T3 - Table 3: unlimited-ARPT occupancy per context type
# ----------------------------------------------------------------------

@dataclass
class Table3Result(_TableResult):
    occupancy: Dict[str, Dict[str, int]]   # name -> context -> entries

    def table(self):
        rows = []
        for name, by_ctx in self.occupancy.items():
            base = max(1, by_ctx["none"])
            rows.append([
                name, by_ctx["none"],
                f"{by_ctx['gbh']} ({(by_ctx['gbh'] - base) * 100 // base}%)",
                f"{by_ctx['cid']} ({(by_ctx['cid'] - base) * 100 // base}%)",
                f"{by_ctx['hybrid']} "
                f"({(by_ctx['hybrid'] - base) * 100 // base}%)",
            ])
        return (["Benchmark", "PC-only", "w/ GBH", "w/ CID", "w/ Hybrid"],
                rows, "Table 3: entries occupied in an unlimited ARPT")


def _table3_cell(name: str, scale: float) -> Dict[str, int]:
    with _workload_handle(name, scale) as trace:
        return occupancy_by_context(trace)


def table3(scale: float = 1.0,
           names: Sequence[str] = suite.ALL_WORKLOADS,
           jobs: Optional[int] = None) -> ExperimentResult:
    """T3: unlimited-ARPT occupancy per indexing context."""
    cells = engine.run_cells(_table3_cell, names, scale, jobs=jobs)
    return _result("table3", Table3Result(occupancy=dict(zip(names,
                                                             cells))))


# ----------------------------------------------------------------------
# F5 - Figure 5: accuracy vs ARPT size, with/without compiler hints
# ----------------------------------------------------------------------

@dataclass
class Figure5Result(_TableResult):
    # name -> size-key -> (accuracy, accuracy_with_hints); key str(size).
    results: Dict[str, Dict[str, Tuple[float, float]]]
    sizes: Tuple[Optional[int], ...] = FIGURE5_SIZES

    @staticmethod
    def size_key(size: Optional[int]) -> str:
        if size is None:
            return "unlimited"
        if size >= 1024:
            return f"{size // 1024}K"
        return str(size)

    def table(self):
        keys = [self.size_key(s) for s in self.sizes]
        rows = []
        for name, by_size in self.results.items():
            row = [name]
            for key in keys:
                accuracy, hinted = by_size[key]
                row.append(f"{100 * accuracy:.2f}/{100 * hinted:.2f}")
            rows.append(row)
        return (["Benchmark"] + [f"{k} (raw/hints)" for k in keys], rows,
                "Figure 5: 1BIT-HYBRID accuracy vs ARPT size, "
                "without/with compiler hints")


def _figure5_cell(name: str, scale: float,
                  sizes: Tuple[Optional[int], ...])\
        -> Dict[str, Tuple[float, float]]:
    with _workload_handle(name, scale) as trace:
        hints = hints_from_trace(trace)
        by_size: Dict[str, Tuple[float, float]] = {}
        for size in sizes:
            raw = evaluate_scheme(trace, "1bit-hybrid", table_size=size)
            hinted = evaluate_scheme(trace, "1bit-hybrid",
                                     table_size=size, hints=hints)
            by_size[Figure5Result.size_key(size)] = (raw.accuracy,
                                                     hinted.accuracy)
        return by_size


def figure5(scale: float = 1.0,
            names: Sequence[str] = suite.ALL_WORKLOADS,
            sizes: Tuple[Optional[int], ...] = FIGURE5_SIZES,
            jobs: Optional[int] = None)\
        -> ExperimentResult:
    """F5: 1BIT-HYBRID accuracy vs ARPT capacity, +/- compiler hints."""
    cells = engine.run_cells(_figure5_cell, names, scale, tuple(sizes),
                             jobs=jobs)
    return _result("figure5", Figure5Result(
        results=dict(zip(names, cells)), sizes=sizes))


# ----------------------------------------------------------------------
# S33 - Section 3.3: 4 KB stack-cache hit rate
# ----------------------------------------------------------------------

@dataclass
class Section33Result(_TableResult):
    results: List[StackCacheResult]

    @property
    def average_hit_rate(self) -> float:
        """Access-weighted average (programs with ~no stack traffic
        would otherwise distort the mean with a handful of cold misses).
        """
        accesses = sum(r.stack_accesses for r in self.results)
        hits = sum(r.hits for r in self.results)
        return hits / max(1, accesses)

    def table(self):
        rows = [[r.trace_name, r.stack_accesses,
                 reporting.percent(r.hit_rate, 2)] for r in self.results]
        return (["Benchmark", "Stack refs", "4KB LVC hit rate"], rows,
                "Section 3.3: stack-cache hit rate (paper: >99.5%, "
                "avg ~99.9%)")


def _section33_cell(name: str, scale: float,
                    size_bytes: int) -> StackCacheResult:
    with _workload(name, scale) as trace:
        return stack_cache_hit_rate(trace, size_bytes)


def section33(scale: float = 1.0,
              names: Sequence[str] = suite.ALL_WORKLOADS,
              size_bytes: int = 4 * 1024,
              jobs: Optional[int] = None) -> ExperimentResult:
    """S33: hit rate of a dedicated stack cache (paper: >99.5%)."""
    return _result("section33", Section33Result(results=engine.run_cells(
        _section33_cell, names, scale, size_bytes, jobs=jobs)))


# ----------------------------------------------------------------------
# F8 - Figure 8: relative performance of (N+M) configurations
# ----------------------------------------------------------------------

@dataclass
class Figure8Result(_TableResult):
    # name -> config name -> TimingResult
    results: Dict[str, Dict[str, TimingResult]]
    baseline: str = "(2+0)"

    def speedup(self, name: str, config: str) -> float:
        base = self.results[name][self.baseline].cycles
        return base / self.results[name][config].cycles

    def average_speedup(self, config: str,
                        names: Optional[Sequence[str]] = None) -> float:
        """Geometric-mean speedup over the baseline configuration."""
        names = names or list(self.results)
        logs = [math.log(self.speedup(n, config)) for n in names]
        return math.exp(sum(logs) / len(logs))

    def table(self):
        configs = list(next(iter(self.results.values())))
        rows = []
        for name in self.results:
            rows.append([name] + [f"{self.speedup(name, c):.3f}"
                                  for c in configs])
        int_names = [n for n in self.results
                     if n in suite.INTEGER_WORKLOADS]
        fp_names = [n for n in self.results if n in suite.FP_WORKLOADS]
        if int_names:
            rows.append(["GEOMEAN-int"] + [
                f"{self.average_speedup(c, int_names):.3f}"
                for c in configs])
        if fp_names:
            rows.append(["GEOMEAN-fp"] + [
                f"{self.average_speedup(c, fp_names):.3f}"
                for c in configs])
        return (["Benchmark"] + configs, rows,
                "Figure 8: performance relative to (2+0)")


def _figure8_cell(name: str, scale: float,
                  configs: Tuple[MachineConfig, ...])\
        -> Dict[str, TimingResult]:
    with _workload(name, scale) as trace:
        return {cfg.name: simulate(trace, cfg) for cfg in configs}


def figure8(scale: float = suite.TIMING_SCALE,
            names: Sequence[str] = suite.ALL_WORKLOADS,
            configs: Optional[Sequence[MachineConfig]] = None,
            jobs: Optional[int] = None)\
        -> ExperimentResult:
    """F8: cycle-level performance of the (N+M) configurations."""
    configs = tuple(configs) if configs is not None \
        else tuple(figure8_configs())
    cells = engine.run_cells(_figure8_cell, names, scale, configs,
                             jobs=jobs)
    return _result("figure8", Figure8Result(results=dict(zip(names,
                                                             cells))))


# ----------------------------------------------------------------------
# A1 - ablation: 2-bit vs 1-bit ARPT entries (paper footnote 8)
# ----------------------------------------------------------------------

@dataclass
class AblationTwoBitResult(_TableResult):
    accuracies: Dict[str, Tuple[float, float]]   # name -> (1bit, 2bit)

    def table(self):
        rows = [[n, reporting.percent(a, 3), reporting.percent(b, 3),
                 "1bit" if a >= b else "2bit"]
                for n, (a, b) in self.accuracies.items()]
        return (["Benchmark", "1-bit", "2-bit", "winner"], rows,
                "Ablation A1: ARPT hysteresis (paper: 2-bit consistently"
                " lower)")


def _two_bit_cell(name: str, scale: float) -> Tuple[float, float]:
    with _workload_handle(name, scale) as trace:
        one = evaluate_scheme(trace, "1bit-hybrid")
        two = evaluate_scheme(trace, "2bit-hybrid")
        return one.accuracy, two.accuracy


def ablation_two_bit(scale: float = 1.0,
                     names: Sequence[str] = suite.ALL_WORKLOADS,
                     jobs: Optional[int] = None)\
        -> ExperimentResult:
    """A1: 1-bit vs 2-bit ARPT entries (paper footnote 8)."""
    cells = engine.run_cells(_two_bit_cell, names, scale, jobs=jobs)
    return _result("ablation-2bit", AblationTwoBitResult(
        accuracies=dict(zip(names, cells))))


# ----------------------------------------------------------------------
# A2 - ablation: hybrid context bit split (paper footnote 7)
# ----------------------------------------------------------------------

@dataclass
class AblationContextResult(_TableResult):
    # name -> "gbh/cid" -> accuracy
    accuracies: Dict[str, Dict[str, float]]
    splits: Tuple[Tuple[int, int], ...]

    def table(self):
        keys = [f"{g}g+{c}c" for g, c in self.splits]
        rows = []
        for name, by_split in self.accuracies.items():
            rows.append([name] + [reporting.percent(by_split[k], 3)
                                  for k in keys])
        return (["Benchmark"] + keys, rows,
                "Ablation A2: hybrid context composition (paper uses "
                "8 GBH + 24 CID bits)")


def _context_bits_cell(name: str, scale: float,
                       splits: Tuple[Tuple[int, int], ...])\
        -> Dict[str, float]:
    with _workload_handle(name, scale) as trace:
        by_split = {}
        for gbh_bits, cid_bits in splits:
            result = evaluate_scheme(trace, "1bit-hybrid",
                                     gbh_bits=gbh_bits,
                                     cid_bits=cid_bits)
            by_split[f"{gbh_bits}g+{cid_bits}c"] = result.accuracy
        return by_split


def ablation_context_bits(scale: float = 1.0,
                          names: Sequence[str] = suite.ALL_WORKLOADS,
                          splits: Tuple[Tuple[int, int], ...] = (
                              (0, 32), (4, 28), (8, 24), (16, 16),
                              (24, 8), (32, 0)),
                          jobs: Optional[int] = None)\
        -> ExperimentResult:
    """A2: GBH/CID bit split of the hybrid context (footnote 7)."""
    cells = engine.run_cells(_context_bits_cell, names, scale, splits,
                             jobs=jobs)
    return _result("ablation-context", AblationContextResult(
        accuracies=dict(zip(names, cells)), splits=splits))


# ----------------------------------------------------------------------
# A8 - extension: ARPT-only vs compiler-assisted steering (Sec. 3.5.2)
# ----------------------------------------------------------------------

@dataclass
class HintSteeringResult(_TableResult):
    # name -> {'arpt': cycles, 'hinted': cycles, 'oracle': cycles,
    #          'arpt_pressure': entries, 'hinted_pressure': entries}
    rows: Dict[str, Dict[str, float]]

    def table(self):
        table_rows = []
        for name, row in self.rows.items():
            table_rows.append([
                name,
                f"{row['arpt'] / row['hinted']:.4f}",
                f"{row['arpt'] / row['oracle']:.4f}",
                int(row["arpt_predictions"]),
                int(row["hinted_predictions"]),
            ])
        return (["Benchmark", "hinted/arpt speedup",
                 "oracle/arpt speedup", "ARPT lookups (hw-only)",
                 "ARPT lookups (hinted)"], table_rows,
                "Extension A8: hardware-only ARPT steering vs "
                "Figure-6 compiler-assisted steering, (3+3) machine "
                "(paper Sec. 3.5.2: dynamic-only loses no noticeable "
                "performance)")


def _hint_steering_cell(name: str, scale: float) -> Dict[str, float]:
    from repro.predictor.static_hints import static_hints
    from repro.timing.config import decoupled_config
    compiled = suite.compile_workload(name, scale)
    hints = static_hints(compiled)
    with _workload(name, scale) as trace:
        arpt = simulate(trace, decoupled_config(3, 3))
        hinted = simulate(trace, decoupled_config(3, 3), hints=hints)
        oracle = simulate(trace, decoupled_config(3, 3,
                                                  steering="oracle"))
    return {
        "arpt": float(arpt.cycles),
        "hinted": float(hinted.cycles),
        "oracle": float(oracle.cycles),
        "arpt_predictions": float(arpt.arpt_predictions),
        "hinted_predictions": float(hinted.arpt_predictions),
    }


def ablation_hint_steering(scale: float = suite.TIMING_SCALE,
                           names: Sequence[str] = suite.ALL_WORKLOADS,
                           jobs: Optional[int] = None)\
        -> ExperimentResult:
    """A8: does compiler-assisted steering beat the ARPT in cycles?

    Section 3.5.2 concludes the hardware mechanism alone is accurate
    enough that existing binaries run "without losing noticeable
    performance"; this measures that loss directly on the (3+3)
    machine, with oracle steering as the zero-loss bound.
    """
    cells = engine.run_cells(_hint_steering_cell, names, scale, jobs=jobs)
    return _result("ablation-hint-steering", HintSteeringResult(
        rows=dict(zip(names, cells))))


# ----------------------------------------------------------------------
# A7 - extension: perfect vs gshare front end (paper Sec. 4.3 choice)
# ----------------------------------------------------------------------

@dataclass
class FrontEndResult(_TableResult):
    # name -> front_end -> config -> speedup over that front end's (2+0)
    speedups: Dict[str, Dict[str, Dict[str, float]]]
    # name -> front_end -> absolute (2+0) IPC
    baseline_ipc: Dict[str, Dict[str, float]]
    config_names: Tuple[str, ...] = ("(2+0)", "(3+3)", "(16+0)")
    front_ends: Tuple[str, ...] = ("perfect", "gshare")

    def average(self, front_end: str, config: str) -> float:
        logs = [math.log(per_fe[front_end][config])
                for per_fe in self.speedups.values()]
        return math.exp(sum(logs) / len(logs))

    def table(self):
        rows = []
        for name, per_fe in self.speedups.items():
            row = [name]
            for front_end in self.front_ends:
                row.append(f"{self.baseline_ipc[name][front_end]:.2f}")
                row += [f"{per_fe[front_end][c]:.3f}"
                        for c in self.config_names[1:]]
            rows.append(row)
        headers = ["Benchmark"]
        for front_end in self.front_ends:
            headers.append(f"{front_end} ipc(2+0)")
            headers += [f"{front_end} {c}" for c in self.config_names[1:]]
        return (headers, rows,
                "Extension A7: front-end sensitivity - perfect vs "
                "gshare branch prediction (speedups relative to the "
                "same front end's (2+0))")


def _front_end_cell(name: str, scale: float)\
        -> Tuple[Dict[str, Dict[str, float]], Dict[str, float]]:
    from dataclasses import replace as dc_replace

    from repro.timing.config import conventional_config, decoupled_config
    base_configs = {
        "(2+0)": conventional_config(2),
        "(3+3)": decoupled_config(3, 3),
        "(16+0)": conventional_config(16, name="(16+0)"),
    }
    per_fe: Dict[str, Dict[str, float]] = {}
    ipc: Dict[str, float] = {}
    with _workload(name, scale) as trace:
        for front_end in ("perfect", "gshare"):
            results = {}
            for label, cfg in base_configs.items():
                cfg = dc_replace(cfg, branch_predictor=front_end)
                results[label] = simulate(trace, cfg)
            baseline = results["(2+0)"]
            per_fe[front_end] = {
                label: baseline.cycles / results[label].cycles
                for label in base_configs}
            ipc[front_end] = baseline.ipc
    return per_fe, ipc


def ablation_front_end(scale: float = suite.TIMING_SCALE,
                       names: Sequence[str] = suite.ALL_WORKLOADS,
                       jobs: Optional[int] = None)\
        -> ExperimentResult:
    """The paper runs with perfect branch prediction "to assert the
    maximum pressure on the data memory bandwidth"; this quantifies how
    much a realistic gshare front end compresses the Figure 8 gaps."""
    cells = engine.run_cells(_front_end_cell, names, scale, jobs=jobs)
    return _result("ablation-front-end", FrontEndResult(
        speedups={name: per_fe for name, (per_fe, _) in zip(names, cells)},
        baseline_ipc={name: ipc for name, (_, ipc) in zip(names, cells)}))


# ----------------------------------------------------------------------
# A6 - extension: decouple heap instead of stack (paper Sec. 3.2.2)
# ----------------------------------------------------------------------

@dataclass
class HeapDecouplingResult(_TableResult):
    # name -> {'(2+0)': 1.0, 'stack (2+2)': x, 'heap (2+2)': y}
    speedups: Dict[str, Dict[str, float]]
    config_names: Tuple[str, ...] = ("(2+0)", "stack (2+2)",
                                     "heap (2+2)")

    def average(self, config: str) -> float:
        logs = [math.log(by_cfg[config])
                for by_cfg in self.speedups.values()]
        return math.exp(sum(logs) / len(logs))

    def table(self):
        rows = []
        for name, by_cfg in self.speedups.items():
            rows.append([name] + [f"{by_cfg[c]:.3f}"
                                  for c in self.config_names])
        rows.append(["GEOMEAN"] + [f"{self.average(c):.3f}"
                                   for c in self.config_names])
        return (["Benchmark"] + list(self.config_names), rows,
                "Extension A6: decoupling stack vs decoupling heap "
                "(speedup over (2+0); paper Sec. 3.2.2 predicts heap "
                "decoupling brings little benefit)")


def _heap_decoupling_cell(name: str, scale: float) -> Dict[str, float]:
    from repro.timing.config import conventional_config, decoupled_config
    configs = {
        "(2+0)": conventional_config(2),
        "stack (2+2)": decoupled_config(2, 2, steering="oracle"),
        "heap (2+2)": decoupled_config(2, 2, steering="oracle-heap"),
    }
    with _workload(name, scale) as trace:
        results = {label: simulate(trace, cfg)
                   for label, cfg in configs.items()}
    baseline = results["(2+0)"].cycles
    return {label: baseline / results[label].cycles for label in configs}


def ablation_heap_decoupling(scale: float = suite.TIMING_SCALE,
                             names: Sequence[str] = suite.ALL_WORKLOADS,
                             jobs: Optional[int] = None)\
        -> ExperimentResult:
    """Tests the paper's Section 3.2.2 conclusion directly: heap
    accesses are bursty and (for FP) rare, so giving *heap* its own
    pipeline should win much less than giving it to the stack."""
    cells = engine.run_cells(_heap_decoupling_cell, names, scale,
                             jobs=jobs)
    return _result("ablation-heap-decoupling", HeapDecouplingResult(
        speedups=dict(zip(names, cells))))


# ----------------------------------------------------------------------
# A5 - extension: ideal multi-porting vs interleaved banks vs decoupling
# ----------------------------------------------------------------------

@dataclass
class BankedResult(_TableResult):
    # name -> config name -> speedup over ported (2+0)
    speedups: Dict[str, Dict[str, float]]
    config_names: Tuple[str, ...]

    def average(self, config: str) -> float:
        logs = [math.log(by_cfg[config])
                for by_cfg in self.speedups.values()]
        return math.exp(sum(logs) / len(logs))

    def table(self):
        rows = []
        for name, by_cfg in self.speedups.items():
            rows.append([name] + [f"{by_cfg[c]:.3f}"
                                  for c in self.config_names])
        rows.append(["GEOMEAN"] + [f"{self.average(c):.3f}"
                                   for c in self.config_names])
        return (["Benchmark"] + list(self.config_names), rows,
                "Extension A5: perfect ports vs interleaved banks vs "
                "decoupling (speedup over ported (2+0))")


def _banked_configs() -> Tuple[MachineConfig, ...]:
    from repro.timing.config import conventional_config, decoupled_config
    return (
        conventional_config(2, name="(2+0)"),
        conventional_config(4, l1_latency=2, name="(4+0) ported"),
        conventional_config(4, l1_latency=2, port_policy="banks",
                            name="(4b+0) banked"),
        decoupled_config(2, 2, name="(2+2)"),
    )


def _banked_cell(name: str, scale: float) -> Dict[str, float]:
    configs = _banked_configs()
    with _workload(name, scale) as trace:
        results = {cfg.name: simulate(trace, cfg) for cfg in configs}
    baseline = results["(2+0)"].cycles
    return {cfg.name: baseline / results[cfg.name].cycles
            for cfg in configs}


def ablation_banked_cache(scale: float = suite.TIMING_SCALE,
                          names: Sequence[str] = suite.ALL_WORKLOADS,
                          jobs: Optional[int] = None)\
        -> ExperimentResult:
    """The paper assumes perfect multi-porting; a banked cache is the
    cheap alternative it is judged against.  Compares N-ported vs
    N-banked conventional designs against the (N/2 + N/2) decoupled one.
    """
    cells = engine.run_cells(_banked_cell, names, scale, jobs=jobs)
    return _result("ablation-banked", BankedResult(
        speedups=dict(zip(names, cells)),
        config_names=tuple(cfg.name for cfg in _banked_configs())))


# ----------------------------------------------------------------------
# A4 - extension: real Figure-6 compiler hints vs the profile ideal
# ----------------------------------------------------------------------

@dataclass
class StaticHintsRow:
    name: str
    coverage: float          # fraction of static mem insns tagged
    accuracy_none: float     # 8K ARPT, no hints
    accuracy_static: float   # 8K ARPT + Figure-6 compiler hints
    accuracy_ideal: float    # 8K ARPT + profile (upper-bound) hints


@dataclass
class StaticHintsResult(_TableResult):
    rows: List[StaticHintsRow]

    def table(self):
        table_rows = [
            [r.name, reporting.percent(r.coverage, 1),
             reporting.percent(r.accuracy_none, 3),
             reporting.percent(r.accuracy_static, 3),
             reporting.percent(r.accuracy_ideal, 3)]
            for r in self.rows]
        return (["Benchmark", "tag coverage", "no hints (8K)",
                 "Fig-6 hints", "profile hints"], table_rows,
                "Extension A4: real compiler analysis (paper Fig. 6) "
                "vs idealised profile hints, 8K-entry ARPT")


def _static_hints_cell(name: str, scale: float,
                       table_size: int) -> StaticHintsRow:
    from repro.predictor.static_hints import static_hint_stats, \
        static_hints
    compiled = suite.compile_workload(name, scale)
    fig6 = static_hints(compiled)
    stats = static_hint_stats(compiled)
    with _workload_handle(name, scale) as trace:
        ideal = hints_from_trace(trace)
        return StaticHintsRow(
            name=name,
            coverage=stats.coverage,
            accuracy_none=evaluate_scheme(
                trace, "1bit-hybrid", table_size=table_size).accuracy,
            accuracy_static=evaluate_scheme(
                trace, "1bit-hybrid", table_size=table_size,
                hints=fig6).accuracy,
            accuracy_ideal=evaluate_scheme(
                trace, "1bit-hybrid", table_size=table_size,
                hints=ideal).accuracy,
        )


def ablation_static_hints(scale: float = 1.0,
                          names: Sequence[str] = suite.ALL_WORKLOADS,
                          table_size: int = 8 * 1024,
                          jobs: Optional[int] = None)\
        -> ExperimentResult:
    """A4: real Figure-6 compiler hints vs the profile-ideal hints."""
    return _result("ablation-static-hints", StaticHintsResult(
        rows=engine.run_cells(_static_hints_cell, names, scale,
                              table_size, jobs=jobs)))


# ----------------------------------------------------------------------
# A3 - ablation: LVC size sweep
# ----------------------------------------------------------------------

@dataclass
class AblationLvcResult(_TableResult):
    # name -> size -> hit rate
    hit_rates: Dict[str, Dict[int, float]]
    sizes: Tuple[int, ...]

    def table(self):
        rows = []
        for name, by_size in self.hit_rates.items():
            rows.append([name] + [reporting.percent(by_size[s], 2)
                                  for s in self.sizes])
        return (["Benchmark"] + [f"{s // 1024}KB" for s in self.sizes],
                rows, "Ablation A3: stack-cache hit rate vs LVC size")


def _lvc_size_cell(name: str, scale: float,
                   sizes: Tuple[int, ...]) -> Dict[int, float]:
    with _workload(name, scale) as trace:
        return {size: stack_cache_hit_rate(trace, size).hit_rate
                for size in sizes}


def ablation_lvc_size(scale: float = 1.0,
                      names: Sequence[str] = suite.ALL_WORKLOADS,
                      sizes: Tuple[int, ...] = (1024, 2048, 4096, 8192,
                                                16384),
                      jobs: Optional[int] = None)\
        -> ExperimentResult:
    """A3: stack-cache hit rate across LVC capacities."""
    cells = engine.run_cells(_lvc_size_cell, names, scale, sizes,
                             jobs=jobs)
    return _result("ablation-lvc-size", AblationLvcResult(
        hit_rates=dict(zip(names, cells)), sizes=sizes))
