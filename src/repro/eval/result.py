"""The uniform result type every experiment driver returns.

Historically each driver returned its own shape (typed dataclasses,
dicts of dicts, tuples); :class:`ExperimentResult` unifies them: one
container carrying the render-ready table (headers + rows + title),
the per-cell metric snapshots collected during the run, the wall-clock
stage breakdown, and the original typed payload under ``data``.

The typed payload is reached explicitly - ``figure4(...).data.results``
- with no attribute forwarding: an unknown attribute on
:class:`ExperimentResult` raises ``AttributeError`` like any dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Any, Dict, List, Optional

from repro import metrics
from repro.eval import reporting
from repro.eval.engine import StageTimes


@dataclass
class ExperimentResult:
    """Uniform container for one experiment run.

    ``rows`` are render-ready cells (consumed directly by
    :func:`repro.eval.reporting.format_table`); the typed
    per-experiment payload lives under ``data``.
    """

    experiment: str                      # driver id, e.g. "figure4"
    title: str                           # paper-style table caption
    headers: List[str]
    rows: List[List[object]]
    #: Per-workload-cell metric snapshots (collection is opt-in; empty
    #: when the metrics registry was disabled during the run).
    metrics: Dict[str, Dict[str, dict]] = field(default_factory=dict)
    #: Wall-clock stage breakdown accumulated while the driver ran.
    stage_times: Optional[StageTimes] = None
    #: The legacy typed payload (Table1Result, Figure4Result, ...).
    data: Any = None

    def render(self) -> str:
        """The paper-style text table."""
        return reporting.format_table(self.headers, self.rows,
                                      title=self.title)

    def metric_totals(self) -> Dict[str, dict]:
        """All cells' metrics merged deterministically."""
        return reduce(metrics.merge_snapshots, self.metrics.values(), {})
