"""The uniform result type every experiment driver returns.

Historically each driver returned its own shape (typed dataclasses,
dicts of dicts, tuples); :class:`ExperimentResult` unifies them: one
container carrying the render-ready table (headers + rows + title),
the per-cell metric snapshots collected during the run, the wall-clock
stage breakdown, and the original typed payload under ``data``.

Migration shim: attribute lookups that miss on :class:`ExperimentResult`
are forwarded to the legacy payload with a ``DeprecationWarning``, so
``figure4(...).results`` and friends keep working for one release;
new code should write ``figure4(...).data.results``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import reduce
from typing import Any, Dict, List, Optional

from repro import metrics
from repro.eval import reporting
from repro.eval.engine import StageTimes


@dataclass
class ExperimentResult:
    """Uniform container for one experiment run.

    ``rows`` are render-ready cells (consumed directly by
    :func:`repro.eval.reporting.format_table`); the typed
    per-experiment payload lives under ``data``.
    """

    experiment: str                      # driver id, e.g. "figure4"
    title: str                           # paper-style table caption
    headers: List[str]
    rows: List[List[object]]
    #: Per-workload-cell metric snapshots (collection is opt-in; empty
    #: when the metrics registry was disabled during the run).
    metrics: Dict[str, Dict[str, dict]] = field(default_factory=dict)
    #: Wall-clock stage breakdown accumulated while the driver ran.
    stage_times: Optional[StageTimes] = None
    #: The legacy typed payload (Table1Result, Figure4Result, ...).
    data: Any = None

    def render(self) -> str:
        """The paper-style text table."""
        return reporting.format_table(self.headers, self.rows,
                                      title=self.title)

    def metric_totals(self) -> Dict[str, dict]:
        """All cells' metrics merged deterministically."""
        return reduce(metrics.merge_snapshots, self.metrics.values(), {})

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal lookup fails; forward to the legacy
        # payload so pre-redesign call sites keep working.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            data = object.__getattribute__(self, "data")
        except AttributeError:
            data = None
        if data is not None and hasattr(data, name):
            warnings.warn(
                f"ExperimentResult.{name} is forwarded to the legacy "
                f"{type(data).__name__} payload; use .data.{name}",
                DeprecationWarning, stacklevel=2)
            return getattr(data, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")
