"""Experiment drivers reproducing every table and figure of the paper."""

from repro.eval import reporting
from repro.eval.experiments import (FIGURE5_SIZES, ablation_banked_cache,
                                    ablation_context_bits,
                                    ablation_front_end,
                                    ablation_heap_decoupling,
                                    ablation_hint_steering,
                                    ablation_lvc_size,
                                    ablation_static_hints,
                                    ablation_two_bit, figure2, figure4,
                                    figure5, figure8, section33, table1,
                                    table2, table3)

__all__ = [
    "reporting",
    "FIGURE5_SIZES",
    "ablation_banked_cache",
    "ablation_context_bits",
    "ablation_front_end",
    "ablation_heap_decoupling",
    "ablation_hint_steering",
    "ablation_lvc_size",
    "ablation_static_hints",
    "ablation_two_bit",
    "figure2",
    "figure4",
    "figure5",
    "figure8",
    "section33",
    "table1",
    "table2",
    "table3",
]
