"""Experiment drivers reproducing every table and figure of the paper.

Every driver returns an :class:`ExperimentResult`; cell execution goes
through :func:`repro.eval.engine.run_cells`, the one public execution
entry point (serial or ``--jobs`` process fan-out, with deterministic
per-cell metrics collection).
"""

from repro.eval import checkpoint, engine, faults, reporting
from repro.eval.checkpoint import CellJournal
from repro.eval.engine import run_cells
from repro.eval.faults import CellFailure, CellTimeout, RetryPolicy
from repro.eval.experiments import (FIGURE5_SIZES, ablation_banked_cache,
                                    ablation_context_bits,
                                    ablation_front_end,
                                    ablation_heap_decoupling,
                                    ablation_hint_steering,
                                    ablation_lvc_size,
                                    ablation_static_hints,
                                    ablation_two_bit, figure2, figure4,
                                    figure5, figure8, section33, table1,
                                    table2, table3)
from repro.eval.result import ExperimentResult

__all__ = [
    "CellFailure",
    "CellJournal",
    "CellTimeout",
    "ExperimentResult",
    "RetryPolicy",
    "checkpoint",
    "engine",
    "faults",
    "reporting",
    "run_cells",
    "FIGURE5_SIZES",
    "ablation_banked_cache",
    "ablation_context_bits",
    "ablation_front_end",
    "ablation_heap_decoupling",
    "ablation_hint_steering",
    "ablation_lvc_size",
    "ablation_static_hints",
    "ablation_two_bit",
    "figure2",
    "figure4",
    "figure5",
    "figure8",
    "section33",
    "table1",
    "table2",
    "table3",
]
