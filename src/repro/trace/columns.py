"""Columnar (structure-of-arrays) trace backbone.

A :class:`ColumnarTrace` holds one NumPy array per
:class:`~repro.trace.records.TraceRecord` field, plus a validity mask
for the optional ``value`` column (``value is None`` in record form).
Bulk analytics - the Figure 2 region breakdown, the Table 2 sliding
windows, the Figure 4/5 predictor replay - operate on these arrays
directly, so a warm-cache experiment never pays for millions of Python
objects; only the cycle-level timing machine, which walks records one
at a time through a stateful pipeline, materialises
:class:`TraceRecord` objects (lazily, via :meth:`to_records`).

Three construction paths, in decreasing order of frequency:

* **zero-copy from disk** - :func:`repro.trace.serialize.load_trace`
  hands the arrays it deserialised straight to ``ColumnarTrace``;
* **from the simulator's row buffer** - the functional simulator
  appends one plain tuple per retired instruction and
  :meth:`from_rows` columnises the buffer once at end of run;
* **from record objects** - :meth:`from_records` converts a
  materialised record list (synthetic test traces, legacy producers).

Conversions publish ``trace.columnar.{builds,materializations,
records}`` counters into the active metrics registry so their overhead
is observable (no-ops when collection is disabled).
"""

from __future__ import annotations

import gc
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.records import (OC_LOAD, OC_STORE, TraceRecord)

#: ``(field, dtype)`` for every TraceRecord column except ``value``,
#: in the positional order of ``TraceRecord.__init__``.
COLUMN_DTYPES: Tuple[Tuple[str, type], ...] = (
    ("pc", np.int64),
    ("op_class", np.int8),
    ("dst", np.int8),
    ("src1", np.int8),
    ("src2", np.int8),
    ("addr", np.int64),
    ("mode", np.int8),
    ("region", np.int8),
    ("taken", np.bool_),
    ("ra", np.int64),
)

_FIELDS = tuple(name for name, _ in COLUMN_DTYPES)


def _publish_conversion(kind: str, count: int) -> None:
    """Count one records<->columns conversion (off = one attr check)."""
    from repro import metrics
    registry = metrics.active()
    if not registry.enabled:
        return
    ns = registry.scoped("trace").scoped("columnar")
    ns.counter(kind).inc()
    ns.counter("records").inc(count)


class ColumnarTrace:
    """One NumPy array per trace column (+ ``value`` validity mask)."""

    __slots__ = ("pc", "op_class", "dst", "src1", "src2", "addr", "mode",
                 "region", "taken", "ra", "value", "value_valid")

    def __init__(self, pc, op_class, dst, src1, src2, addr, mode, region,
                 taken, ra, value, value_valid) -> None:
        self.pc = np.asarray(pc, dtype=np.int64)
        self.op_class = np.asarray(op_class, dtype=np.int8)
        self.dst = np.asarray(dst, dtype=np.int8)
        self.src1 = np.asarray(src1, dtype=np.int8)
        self.src2 = np.asarray(src2, dtype=np.int8)
        self.addr = np.asarray(addr, dtype=np.int64)
        self.mode = np.asarray(mode, dtype=np.int8)
        self.region = np.asarray(region, dtype=np.int8)
        self.taken = np.asarray(taken, dtype=np.bool_)
        self.ra = np.asarray(ra, dtype=np.int64)
        self.value = np.asarray(value, dtype=np.int64)
        self.value_valid = np.asarray(value_valid, dtype=np.bool_)
        n = self.pc.shape[0]
        for field in ("op_class", "dst", "src1", "src2", "addr", "mode",
                      "region", "taken", "ra", "value", "value_valid"):
            if getattr(self, field).shape != (n,):
                raise ValueError(
                    f"column {field!r} has shape "
                    f"{getattr(self, field).shape}, expected ({n},)")

    def __len__(self) -> int:
        return self.pc.shape[0]

    # -- construction ---------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord])\
            -> "ColumnarTrace":
        """Columnise a materialised record list (one C pass per field)."""
        n = len(records)
        columns = [np.fromiter((getattr(r, name) for r in records),
                               dtype=dtype, count=n)
                   for name, dtype in COLUMN_DTYPES]
        value = np.fromiter(
            (0 if r.value is None else r.value for r in records),
            dtype=np.int64, count=n)
        valid = np.fromiter((r.value is not None for r in records),
                            dtype=np.bool_, count=n)
        _publish_conversion("builds", n)
        return cls(*columns, value, valid)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple],
                  publish: bool = True) -> "ColumnarTrace":
        """Columnise the simulator's row buffer (tuples in field order:
        ``(pc, op_class, dst, src1, src2, addr, mode, region, taken,
        ra, value)``).

        ``publish=False`` suppresses the ``trace.columnar.*`` counters:
        the sharded spill path columnises many bounded buffers per run
        and publishes the build once at writer finish, so a spilled
        build counts exactly like a monolithic one.
        """
        n = len(rows)
        if n == 0:
            return cls.empty()
        transposed = list(zip(*rows))
        columns = [np.fromiter(col, dtype=dtype, count=n)
                   for col, (_, dtype) in zip(transposed, COLUMN_DTYPES)]
        raw_values = transposed[len(COLUMN_DTYPES)]
        value = np.fromiter((0 if v is None else v for v in raw_values),
                            dtype=np.int64, count=n)
        valid = np.fromiter((v is not None for v in raw_values),
                            dtype=np.bool_, count=n)
        if publish:
            _publish_conversion("builds", n)
        return cls(*columns, value, valid)

    @classmethod
    def empty(cls) -> "ColumnarTrace":
        zeros = [np.zeros(0, dtype=dtype) for _, dtype in COLUMN_DTYPES]
        return cls(*zeros, np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.bool_))

    # -- materialisation ------------------------------------------------

    def to_records(self) -> List[TraceRecord]:
        """Materialise :class:`TraceRecord` objects for the columns.

        Bulk-converts each column to Python scalars first (one C pass
        per column), then builds the records with collection paused:
        nothing allocated here can be cyclic garbage, and letting the
        GC rescan every live object per threshold crossing is a ~7x
        slowdown on million-record traces.
        """
        n = len(self)
        lists = [getattr(self, name).tolist() for name in _FIELDS]
        values = self.value.tolist()
        if not bool(self.value_valid.all()):
            valid = self.value_valid.tolist()
            values = [v if ok else None for v, ok in zip(values, valid)]
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            # Column order matches TraceRecord's positional signature.
            records = list(map(TraceRecord, *lists, values))
        finally:
            if gc_was_enabled:
                gc.enable()
        _publish_conversion("materializations", n)
        return records

    # -- derived masks ---------------------------------------------------

    def memory_mask(self) -> np.ndarray:
        """Boolean mask selecting load/store rows."""
        op = self.op_class
        return (op == OC_LOAD) | (op == OC_STORE)
