"""Sliding-instruction-window bandwidth statistics (the paper's Table 2).

For every retired instruction, count how many of the last W instructions
were data, heap, and stack references.  The mean of those counts measures
each region's bandwidth demand over a W-wide instruction window (the
processor's effective scheduling window); the standard deviation measures
burstiness.  The paper calls accesses *strictly bursty* when the standard
deviation exceeds the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.trace.records import (REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)

REGION_NAMES = {REGION_DATA: "data", REGION_HEAP: "heap",
                REGION_STACK: "stack"}


@dataclass(frozen=True)
class WindowStats:
    """Mean and standard deviation of per-window access counts."""

    mean: float
    std: float
    samples: int

    @property
    def strictly_bursty(self) -> bool:
        """The paper's burstiness criterion: std > mean."""
        return self.std > self.mean


@dataclass(frozen=True)
class RegionWindowStats:
    """Table-2 row for one program at one window size."""

    name: str
    window: int
    data: WindowStats
    heap: WindowStats
    stack: WindowStats

    def stats_for(self, region_code: int) -> WindowStats:
        return {REGION_DATA: self.data, REGION_HEAP: self.heap,
                REGION_STACK: self.stack}[region_code]


class SlidingWindowProfiler:
    """O(N) streaming computation of the per-region window statistics."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window size must be positive")
        self.window = window
        # Ring buffer of region codes (-1 for non-memory instructions).
        self._ring = [-1] * window
        self._fill = 0
        self._pos = 0
        self._counts = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._sums = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._sumsq = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._samples = 0

    def observe(self, record: TraceRecord) -> None:
        ring = self._ring
        window = self.window
        counts = self._counts
        if self._fill == window:
            old = ring[self._pos]
            if old >= 0:
                counts[old] -= 1
        else:
            self._fill += 1
        region = record.region if record.is_mem else -1
        ring[self._pos] = region
        if region >= 0:
            counts[region] += 1
        self._pos = (self._pos + 1) % window
        if self._fill == window:
            self._samples += 1
            for code in (REGION_DATA, REGION_HEAP, REGION_STACK):
                count = counts[code]
                self._sums[code] += count
                self._sumsq[code] += count * count

    def observe_trace(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.observe(record)

    def _stats(self, code: int) -> WindowStats:
        n = self._samples
        if n == 0:
            return WindowStats(mean=0.0, std=0.0, samples=0)
        mean = self._sums[code] / n
        variance = max(0.0, self._sumsq[code] / n - mean * mean)
        return WindowStats(mean=mean, std=math.sqrt(variance), samples=n)

    def result(self, name: str = "") -> RegionWindowStats:
        return RegionWindowStats(
            name=name, window=self.window,
            data=self._stats(REGION_DATA),
            heap=self._stats(REGION_HEAP),
            stack=self._stats(REGION_STACK),
        )


def _window_moments(trace: Trace, window: int)\
        -> Tuple[int, Dict[int, int], Dict[int, int]]:
    """``(samples, sums, sumsq)`` of per-window region counts.

    Cumulative-sum formulation of the sliding window: for the region
    indicator array ``x``, the count of region references in the window
    ending at instruction ``i`` (i >= window-1) is
    ``csum[i+1] - csum[i+1-window]``.  Exact integer arithmetic, so the
    moments match :class:`SlidingWindowProfiler` (the retained scalar
    reference) bit for bit.
    """
    if window <= 0:
        raise ValueError("window size must be positive")
    columns = trace.columns
    region = np.where(columns.memory_mask(), columns.region, -1)
    n = len(region)
    samples = max(0, n - window + 1)
    sums: Dict[int, int] = {}
    sumsq: Dict[int, int] = {}
    for code in (REGION_DATA, REGION_HEAP, REGION_STACK):
        if samples == 0:
            sums[code] = 0
            sumsq[code] = 0
            continue
        csum = np.concatenate(
            ([0], np.cumsum((region == code).astype(np.int64))))
        counts = csum[window:] - csum[:-window]
        sums[code] = int(counts.sum())
        sumsq[code] = int(np.dot(counts, counts))
    return samples, sums, sumsq


def window_stats(trace: Trace, window: int) -> RegionWindowStats:
    """One-shot Table-2 statistics for a trace at one window size.

    Computed vectorised over the columnar view (cumulative sums of the
    region indicator arrays); :class:`SlidingWindowProfiler` is the
    scalar reference it is tested against.

    When metrics collection is enabled, publishes one
    ``trace.window<W>.<region>`` time-series per region carrying the
    exact moments (count, sum, sum of squares) of the per-window access
    counts - the inputs to Table 2's mean/std burstiness analysis.
    """
    from repro import metrics
    samples, sums, sumsq = _window_moments(trace, window)
    registry = metrics.active()
    if registry.enabled:
        ns = registry.scoped("trace").scoped(f"window{window}")
        for code, region in REGION_NAMES.items():
            ns.timeseries(region, interval=window).observe_moments(
                samples, sums[code], sumsq[code])

    def stats(code: int) -> WindowStats:
        if samples == 0:
            return WindowStats(mean=0.0, std=0.0, samples=0)
        mean = sums[code] / samples
        variance = max(0.0, sumsq[code] / samples - mean * mean)
        return WindowStats(mean=mean, std=math.sqrt(variance),
                           samples=samples)

    return RegionWindowStats(
        name=trace.name, window=window,
        data=stats(REGION_DATA),
        heap=stats(REGION_HEAP),
        stack=stats(REGION_STACK),
    )
