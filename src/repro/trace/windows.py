"""Sliding-instruction-window bandwidth statistics (the paper's Table 2).

For every retired instruction, count how many of the last W instructions
were data, heap, and stack references.  The mean of those counts measures
each region's bandwidth demand over a W-wide instruction window (the
processor's effective scheduling window); the standard deviation measures
burstiness.  The paper calls accesses *strictly bursty* when the standard
deviation exceeds the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.trace.records import (REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)

REGION_NAMES = {REGION_DATA: "data", REGION_HEAP: "heap",
                REGION_STACK: "stack"}


@dataclass(frozen=True)
class WindowStats:
    """Mean and standard deviation of per-window access counts."""

    mean: float
    std: float
    samples: int

    @property
    def strictly_bursty(self) -> bool:
        """The paper's burstiness criterion: std > mean."""
        return self.std > self.mean


@dataclass(frozen=True)
class RegionWindowStats:
    """Table-2 row for one program at one window size."""

    name: str
    window: int
    data: WindowStats
    heap: WindowStats
    stack: WindowStats

    def stats_for(self, region_code: int) -> WindowStats:
        return {REGION_DATA: self.data, REGION_HEAP: self.heap,
                REGION_STACK: self.stack}[region_code]


class SlidingWindowProfiler:
    """O(N) streaming computation of the per-region window statistics."""

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window size must be positive")
        self.window = window
        # Ring buffer of region codes (-1 for non-memory instructions).
        self._ring = [-1] * window
        self._fill = 0
        self._pos = 0
        self._counts = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._sums = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._sumsq = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
        self._samples = 0

    def observe(self, record: TraceRecord) -> None:
        ring = self._ring
        window = self.window
        counts = self._counts
        if self._fill == window:
            old = ring[self._pos]
            if old >= 0:
                counts[old] -= 1
        else:
            self._fill += 1
        region = record.region if record.is_mem else -1
        ring[self._pos] = region
        if region >= 0:
            counts[region] += 1
        self._pos = (self._pos + 1) % window
        if self._fill == window:
            self._samples += 1
            for code in (REGION_DATA, REGION_HEAP, REGION_STACK):
                count = counts[code]
                self._sums[code] += count
                self._sumsq[code] += count * count

    def observe_trace(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.observe(record)

    def _stats(self, code: int) -> WindowStats:
        n = self._samples
        if n == 0:
            return WindowStats(mean=0.0, std=0.0, samples=0)
        mean = self._sums[code] / n
        variance = max(0.0, self._sumsq[code] / n - mean * mean)
        return WindowStats(mean=mean, std=math.sqrt(variance), samples=n)

    def result(self, name: str = "") -> RegionWindowStats:
        return RegionWindowStats(
            name=name, window=self.window,
            data=self._stats(REGION_DATA),
            heap=self._stats(REGION_HEAP),
            stack=self._stats(REGION_STACK),
        )


def _mapped_region(columns) -> np.ndarray:
    """Region codes with non-memory rows mapped to -1 (int64)."""
    return np.where(columns.memory_mask(), columns.region,
                    -1).astype(np.int64)


def _moments_of_ext(ext: np.ndarray, window: int)\
        -> Tuple[int, Dict[int, int], Dict[int, int]]:
    """Moments of the windows *ending inside* ``ext``.

    Cumulative-sum formulation of the sliding window: for the region
    indicator array ``x``, the count of region references in the window
    ending at instruction ``i`` (i >= window-1) is
    ``csum[i+1] - csum[i+1-window]``.  Exact integer arithmetic, so the
    moments match :class:`SlidingWindowProfiler` (the retained scalar
    reference) bit for bit.
    """
    samples = max(0, len(ext) - window + 1)
    sums: Dict[int, int] = {}
    sumsq: Dict[int, int] = {}
    for code in (REGION_DATA, REGION_HEAP, REGION_STACK):
        if samples == 0:
            sums[code] = 0
            sumsq[code] = 0
            continue
        csum = np.concatenate(
            ([0], np.cumsum((ext == code).astype(np.int64))))
        counts = csum[window:] - csum[:-window]
        sums[code] = int(counts.sum())
        sumsq[code] = int(np.dot(counts, counts))
    return samples, sums, sumsq


def _add_moments(acc, part) -> None:
    samples, sums, sumsq = part
    acc[0] += samples
    for code in (REGION_DATA, REGION_HEAP, REGION_STACK):
        acc[1][code] += sums[code]
        acc[2][code] += sumsq[code]


def _empty_moments():
    zeros = {REGION_DATA: 0, REGION_HEAP: 0, REGION_STACK: 0}
    return [0, dict(zeros), dict(zeros)]


def _window_moments(trace, window: int)\
        -> Tuple[int, Dict[int, int], Dict[int, int]]:
    """``(samples, sums, sumsq)`` for a ``Trace`` or ``ShardedTrace``.

    The sharded path streams chunk-by-chunk with a *window remainder*
    carry: each chunk is prepended with the last ``min(window-1, rows
    so far)`` region codes, so every window that ends inside the chunk
    - including those straddling the shard boundary - is counted
    exactly once.  All moments are exact integers, making the fold
    byte-identical to the one-pass result at any shard size.
    """
    if window <= 0:
        raise ValueError("window size must be positive")
    from repro.trace.shards import ShardedTrace
    if not isinstance(trace, ShardedTrace):
        return _moments_of_ext(_mapped_region(trace.columns), window)
    acc = _empty_moments()
    carry = np.zeros(0, dtype=np.int64)
    for chunk in trace.chunks():
        ext = np.concatenate((carry, _mapped_region(chunk)))
        _add_moments(acc, _moments_of_ext(ext, window))
        carry = ext[max(0, len(ext) - (window - 1)):] if window > 1 \
            else ext[:0]
    return acc[0], acc[1], acc[2]


def window_shard_partial(columns, window: int) -> dict:
    """Shard-local Table-2 partial for the (cell x shard) fan-out.

    Covers the windows lying *fully inside* this shard, plus the first
    and last ``min(window-1, rows)`` mapped region codes.  The combine
    step (:func:`combine_window_partials`) reconstructs every
    boundary-straddling window from consecutive tails and heads - at
    most ``window - 1`` codes each - so shard tasks never read their
    neighbours.
    """
    if window <= 0:
        raise ValueError("window size must be positive")
    region = _mapped_region(columns)
    edge = min(window - 1, len(region))
    samples, sums, sumsq = _moments_of_ext(region, window)
    return {"rows": len(region), "samples": samples, "sums": sums,
            "sumsq": sumsq,
            "head": region[:edge], "tail": region[len(region) - edge:]}


def combine_window_partials(partials, window: int)\
        -> Tuple[int, Dict[int, int], Dict[int, int]]:
    """Fold ordered per-shard partials into whole-trace moments.

    Walks the shards in trace order keeping the window-remainder carry
    (the last ``window - 1`` codes seen); each shard contributes its
    inner moments plus the boundary windows counted over
    ``carry + head``.  Exact integers throughout - byte-identical to
    the monolithic pass for every shard size, including shards smaller
    than the window (where ``head == tail ==`` the whole shard, so the
    carry remains complete).
    """
    acc = _empty_moments()
    carry = np.zeros(0, dtype=np.int64)
    for part in partials:
        _add_moments(acc, (part["samples"], part["sums"],
                           part["sumsq"]))
        if window > 1:
            boundary = np.concatenate((carry, part["head"]))
            _add_moments(acc, _moments_of_ext(boundary, window))
            carry = np.concatenate(
                (carry, part["tail"]))[-(window - 1):]
    return acc[0], acc[1], acc[2]


def stats_from_moments(name: str, window: int, samples: int,
                       sums: Dict[int, int], sumsq: Dict[int, int],
                       publish: bool = True) -> RegionWindowStats:
    """Finish Table-2 statistics (and metric publication) from exact
    moments - shared by the monolithic, streaming, and fan-out paths
    so all three publish and round identically."""
    from repro import metrics
    if publish:
        registry = metrics.active()
        if registry.enabled:
            ns = registry.scoped("trace").scoped(f"window{window}")
            for code, region in REGION_NAMES.items():
                ns.timeseries(region, interval=window).observe_moments(
                    samples, sums[code], sumsq[code])

    def stats(code: int) -> WindowStats:
        if samples == 0:
            return WindowStats(mean=0.0, std=0.0, samples=0)
        mean = sums[code] / samples
        variance = max(0.0, sumsq[code] / samples - mean * mean)
        return WindowStats(mean=mean, std=math.sqrt(variance),
                           samples=samples)

    return RegionWindowStats(
        name=name, window=window,
        data=stats(REGION_DATA),
        heap=stats(REGION_HEAP),
        stack=stats(REGION_STACK),
    )


def window_stats(trace, window: int) -> RegionWindowStats:
    """One-shot Table-2 statistics for a trace at one window size.

    Computed vectorised over the columnar view (cumulative sums of the
    region indicator arrays); :class:`SlidingWindowProfiler` is the
    scalar reference it is tested against.  A
    :class:`~repro.trace.shards.ShardedTrace` streams shard-by-shard
    with byte-identical results.

    When metrics collection is enabled, publishes one
    ``trace.window<W>.<region>`` time-series per region carrying the
    exact moments (count, sum, sum of squares) of the per-window access
    counts - the inputs to Table 2's mean/std burstiness analysis.
    """
    samples, sums, sumsq = _window_moments(trace, window)
    return stats_from_moments(trace.name, window, samples, sums, sumsq)
