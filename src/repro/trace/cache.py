"""On-disk trace cache keyed by ``(workload, scale, format version)``.

Functional simulation dominates experiment wall-clock; archiving each
workload's trace once and replaying it through predictors, caches, and
timing configurations amortises that cost across every driver, CLI
invocation, and benchmark run (the SimpleScalar-era workflow the paper
alludes to).

A cache is a directory of ``save_trace`` files named

    ``<workload>__s<scale>__v<format version>.npz``

so bumping :data:`repro.trace.serialize._FORMAT_VERSION` invalidates
every archived trace at once (stale files simply stop being looked up),
and the same directory can hold traces for many scales side by side.

Activation, in precedence order:

1. :func:`configure` - explicit, process-wide (the CLI's
   ``--trace-cache DIR`` and the benchmark conftest use this);
2. the ``REPRO_TRACE_CACHE`` environment variable;
3. otherwise caching is off and producers run every time.

Integrity and concurrency guarantees:

* **Atomic writes** - entries are written to a temp file and
  ``os.replace``-d into place, so readers never observe a partial
  archive;
* **Verified loads** - every archive embeds a content checksum
  (:mod:`repro.trace.serialize`); a file that is truncated,
  zero-byte, bit-rotten, or of the wrong format version is
  *quarantined* (renamed aside with a ``.quarantined`` suffix),
  counted in :attr:`CacheStats.corrupt`, and regenerated - corruption
  costs a re-simulation, never a crash and never wrong data;
* **Advisory write locks** - concurrent writers of the same entry
  serialise on a per-entry ``flock`` lock file, so two processes
  missing the same trace produce it once, not twice; a lock-less
  platform degrades to last-writer-wins atomic replaces.

Warm loads are zero-copy: ``load_trace`` hands the deserialised arrays
straight to the trace's columnar backbone
(:class:`repro.trace.columns.ColumnarTrace`), so a cache hit allocates
no per-record Python objects - vectorised consumers replay the arrays
directly and only the timing machine materialises records.
"""

from __future__ import annotations

import os
import shutil
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

try:
    import fcntl
except ImportError:          # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro import quarantine
from repro.testing import faults as fault_injection
from repro.trace import serialize, shards
from repro.trace.records import Trace
from repro.trace.serialize import load_trace, save_trace
from repro.trace.shards import ShardedTrace

#: Environment variable naming the default cache directory.
ENV_VAR = "REPRO_TRACE_CACHE"

#: Total cache size bound in bytes (0/unset = unbounded).  When the
#: bound is exceeded after a store, whole entries - a monolithic
#: ``.npz`` or an entire shard-set directory - are evicted atomically
#: in least-recently-used order (hits refresh an entry's mtime).
MAX_BYTES_ENV_VAR = "REPRO_TRACE_CACHE_MAX_BYTES"

#: Suffix given to corrupt entries moved aside for post-mortems
#: (collected on cache open, see :mod:`repro.quarantine`).
QUARANTINE_SUFFIX = quarantine.SUFFIX


def _max_bytes() -> int:
    """The configured cache size bound (0 = unbounded)."""
    raw = os.environ.get(MAX_BYTES_ENV_VAR)
    if raw is None or not raw.strip():
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return value if value > 0 else 0


def _entry_size(path: Path) -> int:
    """Bytes held by one entry (shard sets sum their files)."""
    try:
        if path.is_dir():
            return sum(child.stat().st_size
                       for child in path.iterdir() if child.is_file())
        return path.stat().st_size
    except OSError:
        return 0


@dataclass
class CacheStats:
    """Counters and per-stage wall-clock for one cache instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0            # entries quarantined as unreadable
    lock_waits: int = 0         # stores that waited on another writer
    load_seconds: float = 0.0   # reading archived traces (incl. saves)
    sim_seconds: float = 0.0    # running the producer (functional sim)
    quarantine_gc: int = 0      # expired quarantined files collected
    evictions: int = 0          # whole entries evicted by the LRU bound

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.corrupt,
                          self.lock_waits, self.load_seconds,
                          self.sim_seconds, self.quarantine_gc,
                          self.evictions)


@dataclass
class TraceCache:
    """A directory of archived workload traces."""

    directory: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"trace cache path {self.directory} exists and is not "
                f"a directory")
        # Opening the cache garbage-collects expired quarantined
        # entries (bounded by REPRO_QUARANTINE_MAX_AGE_DAYS /
        # REPRO_QUARANTINE_MAX_FILES) so post-mortem copies never
        # accumulate without limit.
        self.stats.quarantine_gc += quarantine.collect(self.directory)

    def key(self, name: str, scale: float) -> str:
        return f"{name}__s{scale:g}__v{serialize._FORMAT_VERSION}"

    def path_for(self, name: str, scale: float) -> Path:
        return self.directory / f"{self.key(name, scale)}.npz"

    def load(self, name: str, scale: float) -> Optional[Trace]:
        """The archived trace, or None on a miss.

        A file that exists but fails to deserialise or verify - in any
        way - is quarantined and reported as a miss, so the caller
        regenerates it.
        """
        path = self.path_for(name, scale)
        if not path.exists():
            return None
        started = time.perf_counter()
        try:
            trace = load_trace(path)
        except Exception:
            # Truncated, zero-byte, checksum-mismatched, or
            # wrong-version file: move it aside and treat as a miss.
            self._quarantine(path)
            return None
        self.stats.load_seconds += time.perf_counter() - started
        self._touch(path)
        return trace

    def _quarantine(self, path: Path) -> None:
        """Move one entry - file or shard-set directory - aside."""
        self.stats.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name
                                            + QUARANTINE_SUFFIX))
        except OSError:
            try:
                if path.is_dir():
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    path.unlink()
            except OSError:
                pass

    def _touch(self, path: Path) -> None:
        """Refresh an entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path)
        except OSError:
            pass

    @contextmanager
    def _entry_lock(self, path: Path):
        """Advisory per-entry writer lock (yields True if we waited).

        ``flock`` locks are per open-file-description, so this must
        not be nested for the same entry within one process (the
        public methods never do).  Platforms without ``fcntl`` yield
        immediately - atomic replaces still keep readers safe.
        """
        if fcntl is None:        # pragma: no cover - non-POSIX
            yield False
            return
        lock_dir = self.directory / ".locks"
        lock_dir.mkdir(parents=True, exist_ok=True)
        lock_path = lock_dir / (path.name + ".lock")
        with open(lock_path, "ab") as fh:
            waited = False
            try:
                fcntl.flock(fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.stats.lock_waits += 1
                waited = True
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield waited
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _write(self, name: str, path: Path, trace: Trace) -> None:
        """Atomic entry write; caller holds the entry lock."""
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            save_trace(trace, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        fault_injection.fire_cache_store(name, path)

    def store(self, name: str, scale: float, trace: Trace) -> Path:
        """Archive a trace atomically; returns the final path."""
        started = time.perf_counter()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name, scale)
        with self._entry_lock(path):
            self._write(name, path, trace)
        self.stats.load_seconds += time.perf_counter() - started
        self.enforce_size_bound(keep=path)
        return path

    def fetch(self, name: str, scale: float,
              producer: Optional[Callable[[str, float], Trace]] = None)\
            -> Trace:
        """The trace for ``(name, scale)``: archived if present, else
        produced (default producer: ``suite.run``) and archived.

        On a miss the entry's writer lock is taken before producing;
        if another process wrote the entry while we waited, its
        archive is loaded instead of simulating a second time.
        """
        trace = self.load(name, scale)
        if trace is not None:
            self.stats.hits += 1
            return trace
        if producer is None:
            from repro.workloads import suite
            producer = suite.run
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name, scale)
        with self._entry_lock(path) as waited:
            if waited:
                trace = self.load(name, scale)
                if trace is not None:
                    self.stats.hits += 1
                    return trace
            started = time.perf_counter()
            trace = producer(name, scale)
            self.stats.sim_seconds += time.perf_counter() - started
            self.stats.misses += 1
            started = time.perf_counter()
            self._write(name, path, trace)
            self.stats.load_seconds += time.perf_counter() - started
        self.enforce_size_bound(keep=path)
        return trace

    # -- sharded entries (format v3) ------------------------------------

    def sharded_key(self, name: str, scale: float,
                    shard_rows: int) -> str:
        return (f"{name}__s{scale:g}__r{shard_rows}"
                f"__v{shards.SHARD_FORMAT_VERSION}")

    def sharded_path_for(self, name: str, scale: float,
                         shard_rows: int) -> Path:
        """The entry *directory* holding the manifest and shards."""
        return self.directory / self.sharded_key(name, scale,
                                                 shard_rows)

    def _open_sharded(self, path: Path, name: str,
                      shard_rows: int) -> Optional[ShardedTrace]:
        """Open a shard-set entry; quarantine + miss on any damage.

        The returned view quarantines the *whole entry* if a lazy
        chunk load later fails its CRC, so the next fetch misses and
        regenerates (shards of one trace are only valid together).
        """
        if not (path / shards.MANIFEST_NAME).exists():
            return None
        try:
            trace = shards.load_sharded(
                path, on_corrupt=lambda exc: self._quarantine(path))
            if trace.name != name or trace.shard_rows != shard_rows:
                raise serialize.TraceIntegrityError(
                    f"shard manifest identity mismatch in {path}: "
                    f"{trace.name!r} @ {trace.shard_rows} rows/shard")
        except Exception:
            self._quarantine(path)
            return None
        return trace

    def load_sharded(self, name: str, scale: float,
                     shard_rows: int) -> Optional[ShardedTrace]:
        """The archived shard set, or None on a miss."""
        path = self.sharded_path_for(name, scale, shard_rows)
        started = time.perf_counter()
        trace = self._open_sharded(path, name, shard_rows)
        if trace is None:
            return None
        self.stats.load_seconds += time.perf_counter() - started
        self._touch(path / shards.MANIFEST_NAME)
        self._touch(path)
        return trace

    def fetch_sharded(self, name: str, scale: float, shard_rows: int,
                      producer: Optional[Callable] = None)\
            -> ShardedTrace:
        """The sharded trace for ``(name, scale, shard_rows)``:
        archived if present, else produced into a temp directory and
        published atomically (``producer(name, scale, writer)``,
        default :func:`repro.trace.shards.simulate_sharded` - the
        spilling functional simulation, bounded RSS).
        """
        trace = self.load_sharded(name, scale, shard_rows)
        if trace is not None:
            self.stats.hits += 1
            return trace
        if producer is None:
            producer = shards.simulate_sharded
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.sharded_path_for(name, scale, shard_rows)
        with self._entry_lock(path) as waited:
            if waited:
                trace = self.load_sharded(name, scale, shard_rows)
                if trace is not None:
                    self.stats.hits += 1
                    return trace
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
            try:
                started = time.perf_counter()
                writer = shards.ShardWriter(tmp, name, shard_rows)
                producer(name, scale, writer)
                self.stats.sim_seconds += time.perf_counter() - started
                self.stats.misses += 1
                started = time.perf_counter()
                try:
                    os.replace(tmp, path)
                except OSError:
                    # A stale entry raced into place; replace it.
                    shutil.rmtree(path, ignore_errors=True)
                    os.replace(tmp, path)
                self.stats.load_seconds += time.perf_counter() - started
            finally:
                if tmp.exists():
                    shutil.rmtree(tmp, ignore_errors=True)
            fault_injection.fire_cache_store(
                name, path / shards.MANIFEST_NAME)
        self.enforce_size_bound(keep=path)
        trace = self._open_sharded(path, name, shard_rows)
        if trace is None:
            raise RuntimeError(
                f"sharded trace entry {path} unreadable immediately "
                f"after production")
        return trace

    # -- size bound (LRU eviction) --------------------------------------

    def _entries(self):
        """Every evictable entry as ``(path, mtime, size)``."""
        try:
            children = list(self.directory.iterdir())
        except OSError:
            return
        for path in children:
            name = path.name
            if (name.startswith(".")
                    or name.endswith(QUARANTINE_SUFFIX)):
                continue
            try:
                if path.is_dir():
                    manifest = path / shards.MANIFEST_NAME
                    if not manifest.exists():
                        continue
                    mtime = manifest.stat().st_mtime
                elif name.endswith(".npz"):
                    mtime = path.stat().st_mtime
                else:
                    continue
            except OSError:      # raced away
                continue
            yield path, mtime, _entry_size(path)

    def _evict(self, path: Path) -> bool:
        """Atomically remove one whole entry (rename, then delete, so
        readers see either the complete entry or none of it)."""
        victim = path.with_name(f".{path.name}.{os.getpid()}.evict")
        try:
            os.replace(path, victim)
        except OSError:
            return False
        try:
            if victim.is_dir():
                shutil.rmtree(victim, ignore_errors=True)
            else:
                victim.unlink()
        except OSError:
            pass
        self.stats.evictions += 1
        return True

    def enforce_size_bound(self, keep: Optional[Path] = None) -> int:
        """Evict least-recently-used entries until the cache fits
        ``REPRO_TRACE_CACHE_MAX_BYTES`` (no-op when unbounded).

        ``keep`` - typically the entry just written - is never evicted,
        so one oversized trace cannot thrash itself.  Returns the
        number of entries evicted.
        """
        limit = _max_bytes()
        if not limit:
            return 0
        entries = sorted(self._entries(), key=lambda e: (e[1], str(e[0])))
        total = sum(size for _, _, size in entries)
        removed = 0
        for path, _, size in entries:
            if total <= limit:
                break
            if keep is not None and path == keep:
                continue
            if self._evict(path):
                total -= size
                removed += 1
        return removed


# -- process-wide active cache -----------------------------------------

#: (configured?, cache) - once configure() runs, the env var no longer
#: applies; configure(None) explicitly disables caching.
_explicit: Optional[TraceCache] = None
_explicitly_set = False
_from_env: Optional[TraceCache] = None


def configure(directory: Union[str, Path, None]) -> Optional[TraceCache]:
    """Set (or, with None, clear) the process-wide trace cache."""
    global _explicit, _explicitly_set
    _explicitly_set = True
    _explicit = TraceCache(Path(directory)) if directory else None
    return _explicit


def reset() -> None:
    """Forget explicit configuration; fall back to the environment."""
    global _explicit, _explicitly_set, _from_env
    _explicit = None
    _explicitly_set = False
    _from_env = None


def active_cache() -> Optional[TraceCache]:
    """The cache in effect: explicit > ``REPRO_TRACE_CACHE`` > none."""
    global _from_env
    if _explicitly_set:
        return _explicit
    directory = os.environ.get(ENV_VAR)
    if not directory:
        _from_env = None
        return None
    if _from_env is None or _from_env.directory != Path(directory):
        _from_env = TraceCache(Path(directory))
    return _from_env
