"""Dynamic-trace representation.

The functional simulator emits one :class:`TraceRecord` per retired
instruction.  Records carry everything the downstream consumers need:

* the profiler (Figure 2 / Table 2) needs PC, memory address, and region;
* the access-region predictor (Figures 4-5, Table 3) additionally needs
  the addressing mode, branch outcomes (for global branch history), and
  the link-register value (for caller identification);
* the timing simulator needs register dependences, op classes, and result
  values (for the stride value predictor).

Records use ``__slots__``: traces run to millions of instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.trace.columns import ColumnarTrace

from repro.isa.instructions import Op
from repro.runtime.layout import Region

# Operation classes (functional-unit classes in the timing model).
OC_IALU = 0
OC_IMUL = 1
OC_IDIV = 2
OC_FALU = 3
OC_FMUL = 4
OC_FDIV = 5
OC_LOAD = 6
OC_STORE = 7
OC_BRANCH = 8
OC_JUMP = 9
OC_CALL = 10
OC_RET = 11
OC_SYSCALL = 12

OP_CLASS_NAMES = {
    OC_IALU: "ialu", OC_IMUL: "imul", OC_IDIV: "idiv",
    OC_FALU: "falu", OC_FMUL: "fmul", OC_FDIV: "fdiv",
    OC_LOAD: "load", OC_STORE: "store", OC_BRANCH: "branch",
    OC_JUMP: "jump", OC_CALL: "call", OC_RET: "ret",
    OC_SYSCALL: "syscall",
}

#: Region codes kept as small ints in records for speed.
REGION_DATA = 0
REGION_HEAP = 1
REGION_STACK = 2

REGION_OF_CODE = {
    REGION_DATA: Region.DATA,
    REGION_HEAP: Region.HEAP,
    REGION_STACK: Region.STACK,
}

# Addressing-mode codes (see isa.instructions.AddrMode).
MODE_CONSTANT = 0
MODE_STACK = 1
MODE_GLOBAL = 2
MODE_OTHER = 3

#: Map non-memory opcodes to their op class; memory/branch/jump classes
#: are assigned by the simulator directly.
_OP_CLASS: Dict[Op, int] = {}
for _op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
            Op.SLT, Op.SLE, Op.SEQ, Op.SNE, Op.ADDI, Op.ANDI, Op.ORI,
            Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI, Op.SLTI, Op.LI, Op.LA,
            Op.LFA, Op.MOV, Op.NOP):
    _OP_CLASS[_op] = OC_IALU
for _op in (Op.MUL,):
    _OP_CLASS[_op] = OC_IMUL
for _op in (Op.DIV, Op.REM):
    _OP_CLASS[_op] = OC_IDIV
for _op in (Op.FADD, Op.FSUB, Op.FNEG, Op.FABS, Op.FMOV, Op.FLT, Op.FLE,
            Op.FEQ, Op.CVTIF, Op.CVTFI):
    _OP_CLASS[_op] = OC_FALU
for _op in (Op.FMUL,):
    _OP_CLASS[_op] = OC_FMUL
for _op in (Op.FDIV, Op.FSQRT):
    _OP_CLASS[_op] = OC_FDIV


def op_class_of(op: Op) -> int:
    return _OP_CLASS[op]


class TraceRecord:
    """One retired dynamic instruction."""

    __slots__ = ("pc", "op_class", "dst", "src1", "src2", "addr", "mode",
                 "region", "taken", "ra", "value")

    def __init__(self, pc: int, op_class: int, dst: int = -1,
                 src1: int = -1, src2: int = -1, addr: int = 0,
                 mode: int = -1, region: int = -1, taken: bool = False,
                 ra: int = 0, value: Optional[int] = None) -> None:
        self.pc = pc
        self.op_class = op_class
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.mode = mode          # addressing mode code; -1 for non-memory
        self.region = region      # region code; -1 for non-memory
        self.taken = taken        # branch outcome
        self.ra = ra              # link-register value (memory records)
        self.value = value        # integer result value, when produced

    @property
    def is_load(self) -> bool:
        return self.op_class == OC_LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class == OC_STORE

    @property
    def is_mem(self) -> bool:
        return self.op_class in (OC_LOAD, OC_STORE)

    @property
    def is_branch(self) -> bool:
        return self.op_class == OC_BRANCH

    @property
    def is_stack(self) -> bool:
        return self.region == REGION_STACK

    def __repr__(self) -> str:
        name = OP_CLASS_NAMES[self.op_class]
        if self.is_mem:
            return (f"TraceRecord({name} pc={self.pc:#x} addr={self.addr:#x}"
                    f" region={self.region})")
        return f"TraceRecord({name} pc={self.pc:#x})"


class Trace:
    """A complete dynamic trace of one program execution.

    A trace is backed by *either* a list of :class:`TraceRecord`
    objects, a :class:`~repro.trace.columns.ColumnarTrace`
    structure-of-arrays view, or both.  Each representation is derived
    lazily from the other and cached:

    * ``trace.columns`` builds (once) the columnar view the vectorised
      profiler and predictor paths consume;
    * ``trace.records`` materialises (once) record objects for the
      consumers that truly need per-record traversal - the cycle-level
      timing machine.

    ``load_trace`` and the functional simulator construct traces
    column-first, so the profiling experiments never allocate a record
    object at all.
    """

    __slots__ = ("name", "output", "exit_code", "_records", "_columns",
                 "_load_count", "_store_count", "_memory_records")

    def __init__(self, name: str,
                 records: Optional[List[TraceRecord]] = None,
                 output: Optional[List[object]] = None,
                 exit_code: int = 0,
                 columns: Optional["ColumnarTrace"] = None) -> None:
        self.name = name
        if records is None and columns is None:
            records = []
        self._records = records
        self._columns = columns
        self.output = output if output is not None else []
        self.exit_code = exit_code
        self._load_count: Optional[int] = None
        self._store_count: Optional[int] = None
        self._memory_records: Optional[List[TraceRecord]] = None

    @property
    def records(self) -> List[TraceRecord]:
        """The record-object view (materialised from columns on first
        access, then cached)."""
        if self._records is None:
            self._records = self._columns.to_records()
        return self._records

    @property
    def columns(self) -> "ColumnarTrace":
        """The structure-of-arrays view (built from the record list on
        first access, then cached)."""
        if self._columns is None:
            from repro.trace.columns import ColumnarTrace
            self._columns = ColumnarTrace.from_records(self._records)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """Whether the columnar view already exists (no conversion)."""
        return self._columns is not None

    @property
    def has_records(self) -> bool:
        """Whether record objects are already materialised."""
        return self._records is not None

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._columns)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        backing = "records" if self._records is not None else "columns"
        return (f"Trace(name={self.name!r}, n={len(self)}, "
                f"backing={backing})")

    @property
    def instruction_count(self) -> int:
        return len(self)

    @property
    def load_count(self) -> int:
        if self._load_count is None:
            import numpy as np
            self._load_count = int(np.count_nonzero(
                self.columns.op_class == OC_LOAD))
        return self._load_count

    @property
    def store_count(self) -> int:
        if self._store_count is None:
            import numpy as np
            self._store_count = int(np.count_nonzero(
                self.columns.op_class == OC_STORE))
        return self._store_count

    @property
    def memory_records(self) -> List[TraceRecord]:
        if self._memory_records is None:
            self._memory_records = [r for r in self.records
                                    if r.op_class in (OC_LOAD, OC_STORE)]
        return self._memory_records

    def load_fraction(self) -> float:
        return self.load_count / max(1, len(self))

    def store_fraction(self) -> float:
        return self.store_count / max(1, len(self))
