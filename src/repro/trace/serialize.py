"""Trace persistence: save/load dynamic traces as compressed ``.npz``.

Functional simulation is the slowest stage of many experiments; saving
a trace once and replaying it through predictors, caches, and timing
configurations amortises that cost (this mirrors how trace-driven
studies of the paper's era archived SimpleScalar traces).

Records are stored column-wise in int64 arrays - about 90 bytes/record
in memory becomes ~10 bytes/record on disk after compression.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.records import Trace, TraceRecord

#: Sentinel for "no result value" (record.value is None).
_NO_VALUE = np.int64(-(2 ** 62))

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (``.npz``, compressed)."""
    records = trace.records
    n = len(records)
    columns = {
        "pc": np.empty(n, dtype=np.int64),
        "op_class": np.empty(n, dtype=np.int8),
        "dst": np.empty(n, dtype=np.int8),
        "src1": np.empty(n, dtype=np.int8),
        "src2": np.empty(n, dtype=np.int8),
        "addr": np.empty(n, dtype=np.int64),
        "mode": np.empty(n, dtype=np.int8),
        "region": np.empty(n, dtype=np.int8),
        "taken": np.empty(n, dtype=np.bool_),
        "ra": np.empty(n, dtype=np.int64),
        "value": np.empty(n, dtype=np.int64),
    }
    for i, record in enumerate(records):
        columns["pc"][i] = record.pc
        columns["op_class"][i] = record.op_class
        columns["dst"][i] = record.dst
        columns["src1"][i] = record.src1
        columns["src2"][i] = record.src2
        columns["addr"][i] = record.addr
        columns["mode"][i] = record.mode
        columns["region"][i] = record.region
        columns["taken"][i] = record.taken
        columns["ra"][i] = record.ra
        columns["value"][i] = (_NO_VALUE if record.value is None
                               else record.value)
    meta = json.dumps({
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "output": trace.output,
        "exit_code": trace.exit_code,
    })
    np.savez_compressed(str(path), meta=np.frombuffer(
        meta.encode("utf-8"), dtype=np.uint8), **columns)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(str(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')}")
        pcs = data["pc"]
        op_classes = data["op_class"]
        dsts = data["dst"]
        src1s = data["src1"]
        src2s = data["src2"]
        addrs = data["addr"]
        modes = data["mode"]
        regions = data["region"]
        takens = data["taken"]
        ras = data["ra"]
        values = data["value"]
        records = []
        for i in range(len(pcs)):
            raw_value = values[i]
            records.append(TraceRecord(
                pc=int(pcs[i]),
                op_class=int(op_classes[i]),
                dst=int(dsts[i]),
                src1=int(src1s[i]),
                src2=int(src2s[i]),
                addr=int(addrs[i]),
                mode=int(modes[i]),
                region=int(regions[i]),
                taken=bool(takens[i]),
                ra=int(ras[i]),
                value=None if raw_value == _NO_VALUE else int(raw_value),
            ))
    return Trace(name=meta["name"], records=records,
                 output=meta["output"], exit_code=meta["exit_code"])
