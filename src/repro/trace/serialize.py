"""Trace persistence: save/load dynamic traces as compressed ``.npz``.

Functional simulation is the slowest stage of many experiments; saving
a trace once and replaying it through predictors, caches, and timing
configurations amortises that cost (this mirrors how trace-driven
studies of the paper's era archived SimpleScalar traces).  The on-disk
cache in :mod:`repro.trace.cache` builds on these primitives.

Records are stored column-wise in int64 arrays - about 90 bytes/record
in memory becomes ~10 bytes/record on disk after compression.  The
on-disk layout is exactly the in-memory
:class:`~repro.trace.columns.ColumnarTrace` schema, so ``save_trace``
writes the columnar view directly and ``load_trace`` rebuilds a trace
*zero-copy* from the deserialised arrays - no per-record object is
constructed on a warm cache load; consumers that need record objects
materialise them lazily through ``Trace.records``.

Every file embeds a CRC-32 over the column bytes and trace identity;
``load_trace`` recomputes and compares it, raising
:class:`TraceIntegrityError` on any mismatch, so silent on-disk
corruption (bit rot, partial writes that still unzip) can never leak
wrong data into an experiment - the trace cache quarantines the file
and regenerates instead.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.columns import COLUMN_DTYPES, ColumnarTrace
from repro.trace.records import Trace

#: Sentinel for "no result value" (record.value is None).  Result
#: values equal to the sentinel itself cannot round-trip and are
#: rejected at save time rather than silently loaded back as None.
_NO_VALUE = np.int64(-(2 ** 62))

#: v2 added the embedded content checksum; v1 files are rejected (the
#: cache never looks them up - its keys embed the version - so in
#: practice a bump just makes stale archives regenerate).
_FORMAT_VERSION = 2


class TraceIntegrityError(ValueError):
    """A trace file failed its version or checksum validation."""

#: (column, dtype) for every TraceRecord field except ``value``, which
#: needs the None-sentinel treatment.  Shared with the in-memory
#: columnar schema so the formats cannot drift apart.
_COLUMNS = COLUMN_DTYPES


def _normalised(path: Union[str, Path]) -> Path:
    """The exact file both :func:`save_trace` and :func:`load_trace` use.

    ``np.savez_compressed`` silently appends ``.npz`` to *names* lacking
    the suffix, which used to make ``load_trace(path)`` fail on the very
    path the caller passed to ``save_trace``.  Both functions now agree
    on the caller's path verbatim (save opens the file itself, so numpy
    never rewrites the name).
    """
    return Path(path)


def _checksum(payload: dict, name: str, output, exit_code: int) -> int:
    """CRC-32 over the serialised column bytes and trace identity.

    Computed on the exact arrays written to (or read from) disk - the
    ``value`` column already carries the None sentinel - so save and
    load agree bit-for-bit.
    """
    crc = zlib.crc32(json.dumps(
        [name, output, exit_code], sort_keys=True).encode("utf-8"))
    for column, _ in _COLUMNS:
        crc = zlib.crc32(np.ascontiguousarray(payload[column]).tobytes(),
                         crc)
    crc = zlib.crc32(np.ascontiguousarray(payload["value"]).tobytes(),
                     crc)
    return crc & 0xFFFFFFFF


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to exactly ``path`` (``.npz`` layout, compressed).

    The file is written at the path given - with or without an ``.npz``
    suffix - so ``load_trace`` round-trips on the same path.  Saving
    goes through the trace's columnar view (built and cached on the
    trace if it does not exist yet), so a trace that was loaded or
    simulated column-first serialises without touching record objects.
    """
    columns = trace.columns
    if bool(np.any((columns.value == _NO_VALUE) & columns.value_valid)):
        raise ValueError(
            f"trace contains a result value equal to the None sentinel "
            f"({int(_NO_VALUE)}); it would not survive a round-trip")
    payload = {name: getattr(columns, name) for name, _ in _COLUMNS}
    payload["value"] = np.where(columns.value_valid, columns.value,
                                _NO_VALUE)
    meta = json.dumps({
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "output": trace.output,
        "exit_code": trace.exit_code,
        "checksum": _checksum(payload, trace.name, trace.output,
                              trace.exit_code),
    })
    with open(_normalised(path), "wb") as fh:
        np.savez_compressed(fh, meta=np.frombuffer(
            meta.encode("utf-8"), dtype=np.uint8), **payload)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    The deserialised arrays become the trace's columnar backbone
    as-is; record objects are only materialised if a consumer asks
    for ``trace.records``.
    """
    with np.load(str(_normalised(path))) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise TraceIntegrityError(
                f"unsupported trace format version {meta.get('version')}")
        arrays = [data[name] for name, _ in _COLUMNS]
        raw_values = data["value"]
    payload = {name: array for (name, _), array in zip(_COLUMNS, arrays)}
    payload["value"] = raw_values
    expected = meta.get("checksum")
    actual = _checksum(payload, meta["name"], meta["output"],
                       meta["exit_code"])
    if expected != actual:
        raise TraceIntegrityError(
            f"trace checksum mismatch for {path}: stored "
            f"{expected!r}, computed {actual}")
    valid = raw_values != _NO_VALUE
    columns = ColumnarTrace(*arrays,
                            np.where(valid, raw_values, 0), valid)
    return Trace(name=meta["name"], columns=columns,
                 output=meta["output"], exit_code=meta["exit_code"])
