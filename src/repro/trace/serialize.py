"""Trace persistence: save/load dynamic traces as compressed ``.npz``.

Functional simulation is the slowest stage of many experiments; saving
a trace once and replaying it through predictors, caches, and timing
configurations amortises that cost (this mirrors how trace-driven
studies of the paper's era archived SimpleScalar traces).  The on-disk
cache in :mod:`repro.trace.cache` builds on these primitives.

Records are stored column-wise in int64 arrays - about 90 bytes/record
in memory becomes ~10 bytes/record on disk after compression.  Columns
are built and decoded with bulk numpy conversions rather than
per-element indexing: this is the hot path whenever the trace cache is
warm.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.records import Trace, TraceRecord

#: Sentinel for "no result value" (record.value is None).  Result
#: values equal to the sentinel itself cannot round-trip and are
#: rejected at save time rather than silently loaded back as None.
_NO_VALUE = np.int64(-(2 ** 62))

_FORMAT_VERSION = 1

#: (column, dtype) for every TraceRecord field except ``value``, which
#: needs the None-sentinel treatment.
_COLUMNS = (
    ("pc", np.int64),
    ("op_class", np.int8),
    ("dst", np.int8),
    ("src1", np.int8),
    ("src2", np.int8),
    ("addr", np.int64),
    ("mode", np.int8),
    ("region", np.int8),
    ("taken", np.bool_),
    ("ra", np.int64),
)


def _normalised(path: Union[str, Path]) -> Path:
    """The exact file both :func:`save_trace` and :func:`load_trace` use.

    ``np.savez_compressed`` silently appends ``.npz`` to *names* lacking
    the suffix, which used to make ``load_trace(path)`` fail on the very
    path the caller passed to ``save_trace``.  Both functions now agree
    on the caller's path verbatim (save opens the file itself, so numpy
    never rewrites the name).
    """
    return Path(path)


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to exactly ``path`` (``.npz`` layout, compressed).

    The file is written at the path given - with or without an ``.npz``
    suffix - so ``load_trace`` round-trips on the same path.
    """
    records = trace.records
    n = len(records)
    columns = {
        name: np.fromiter((getattr(r, name) for r in records),
                          dtype=dtype, count=n)
        for name, dtype in _COLUMNS
    }
    values = np.fromiter(
        (_NO_VALUE if r.value is None else r.value for r in records),
        dtype=np.int64, count=n)
    none_mask = np.fromiter((r.value is None for r in records),
                            dtype=np.bool_, count=n)
    if bool(np.any((values == _NO_VALUE) & ~none_mask)):
        raise ValueError(
            f"trace contains a result value equal to the None sentinel "
            f"({int(_NO_VALUE)}); it would not survive a round-trip")
    columns["value"] = values
    meta = json.dumps({
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "output": trace.output,
        "exit_code": trace.exit_code,
    })
    with open(_normalised(path), "wb") as fh:
        np.savez_compressed(fh, meta=np.frombuffer(
            meta.encode("utf-8"), dtype=np.uint8), **columns)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(str(_normalised(path))) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')}")
        columns = [data[name] for name, _ in _COLUMNS]
        raw_values = data["value"]
    # Bulk-convert numpy columns to Python scalars (C-level, one pass
    # per column) instead of indexing numpy scalars per record.
    lists = [column.tolist() for column in columns]
    values = raw_values.tolist()
    if bool((raw_values == _NO_VALUE).any()):
        sentinel = int(_NO_VALUE)
        values = [None if v == sentinel else v for v in values]
    # Constructing n records triggers collections that rescan every
    # object already alive (the previous workload's trace, typically) -
    # a ~7x slowdown on warm cache loads.  Nothing allocated here can
    # be cyclic garbage, so pause collection for the bulk build.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # _COLUMNS order matches TraceRecord's positional signature.
        records = list(map(TraceRecord, *lists, values))
    finally:
        if gc_was_enabled:
            gc.enable()
    return Trace(name=meta["name"], records=records,
                 output=meta["output"], exit_code=meta["exit_code"])
