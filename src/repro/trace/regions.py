"""Per-static-instruction access-region analysis (the paper's Figure 2).

Classifies every static memory instruction by the set of regions it
touches at run time: "D" (data only), "H" (heap only), "S" (stack only),
and the multi-region classes "D/H", "D/S", "H/S", "D/H/S".  The paper's
central observation - *access region locality* - is that the multi-region
classes are tiny (1.8-1.9% of static instructions on average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.trace.records import (REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)

#: Canonical class labels in the paper's presentation order.
REGION_CLASSES = ("D", "H", "S", "D/H", "D/S", "H/S", "D/H/S")

_CLASS_OF_MASK = {
    0b001: "D",
    0b010: "H",
    0b100: "S",
    0b011: "D/H",
    0b101: "D/S",
    0b110: "H/S",
    0b111: "D/H/S",
}

_BIT_OF_REGION = {REGION_DATA: 0b001, REGION_HEAP: 0b010, REGION_STACK: 0b100}

MULTI_REGION_CLASSES = ("D/H", "D/S", "H/S", "D/H/S")


@dataclass
class RegionBreakdown:
    """Figure-2 style breakdown for one program."""

    name: str
    static_counts: Dict[str, int] = field(default_factory=dict)
    dynamic_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_static(self) -> int:
        return sum(self.static_counts.values())

    @property
    def total_dynamic(self) -> int:
        return sum(self.dynamic_counts.values())

    def static_fraction(self, cls: str) -> float:
        return self.static_counts.get(cls, 0) / max(1, self.total_static)

    def dynamic_fraction(self, cls: str) -> float:
        return self.dynamic_counts.get(cls, 0) / max(1, self.total_dynamic)

    @property
    def multi_region_static_fraction(self) -> float:
        """Fraction of static memory instructions accessing >1 region."""
        return sum(self.static_fraction(c) for c in MULTI_REGION_CLASSES)

    @property
    def multi_region_dynamic_fraction(self) -> float:
        """Fraction of dynamic references from multi-region instructions."""
        return sum(self.dynamic_fraction(c) for c in MULTI_REGION_CLASSES)

    @property
    def stack_only_static_fraction(self) -> float:
        return self.static_fraction("S")


class RegionClassifier:
    """Streams trace records and accumulates the per-PC region sets."""

    def __init__(self) -> None:
        self._region_mask: Dict[int, int] = {}   # pc -> region bit mask
        self._dynamic: Dict[int, int] = {}       # pc -> dynamic ref count

    def observe(self, record: TraceRecord) -> None:
        if record.region < 0:
            return
        bit = _BIT_OF_REGION[record.region]
        pc = record.pc
        self._region_mask[pc] = self._region_mask.get(pc, 0) | bit
        self._dynamic[pc] = self._dynamic.get(pc, 0) + 1

    def observe_trace(self, trace: Iterable[TraceRecord]) -> None:
        masks = self._region_mask
        dyn = self._dynamic
        for record in trace:
            if record.region < 0:
                continue
            bit = _BIT_OF_REGION[record.region]
            pc = record.pc
            masks[pc] = masks.get(pc, 0) | bit
            dyn[pc] = dyn.get(pc, 0) + 1

    def class_of_pc(self, pc: int) -> str:
        return _CLASS_OF_MASK[self._region_mask[pc]]

    def breakdown(self, name: str = "") -> RegionBreakdown:
        static_counts = {cls: 0 for cls in REGION_CLASSES}
        dynamic_counts = {cls: 0 for cls in REGION_CLASSES}
        for pc, mask in self._region_mask.items():
            cls = _CLASS_OF_MASK[mask]
            static_counts[cls] += 1
            dynamic_counts[cls] += self._dynamic[pc]
        return RegionBreakdown(name=name, static_counts=static_counts,
                               dynamic_counts=dynamic_counts)

    def single_region_pcs(self) -> Dict[int, bool]:
        """PC -> is_stack for instructions that touch exactly one region.

        This is the paper's idealised *compiler hint* information
        (Section 3.5.2): an instruction the profile shows to access a
        single region is assumed classifiable by the compiler.
        """
        result: Dict[int, bool] = {}
        for pc, mask in self._region_mask.items():
            if mask in (0b001, 0b010):
                result[pc] = False
            elif mask == 0b100:
                result[pc] = True
        return result


def pc_region_partial(columns) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]:
    """Per-static-PC region bitmasks for one columnar chunk.

    Returns ``(pcs, masks, dynamic)``: the distinct memory-instruction
    PCs (sorted), each PC's OR of region bits (1=data, 2=heap, 4=stack
    - the same encoding as ``_BIT_OF_REGION``), and each PC's dynamic
    reference count.  One sort + two grouped reductions replace the
    scalar classifier's per-record dict updates.  This is also the
    shard-local partial of the streaming/fan-out Figure 2 path: masks
    OR and dynamic counts sum across shards (exact integers, any
    order), so folding per-shard partials is byte-identical to one
    whole-trace pass.
    """
    region = columns.region
    mem = region >= 0
    pcs = columns.pc[mem]
    bits = np.left_shift(1, region[mem].astype(np.int64))
    order = np.argsort(pcs, kind="stable")
    pcs = pcs[order]
    starts = np.flatnonzero(np.concatenate(
        ([True], pcs[1:] != pcs[:-1]))) if len(pcs) else np.zeros(
            0, dtype=np.int64)
    if len(pcs) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    masks = np.bitwise_or.reduceat(bits[order], starts)
    dynamic = np.diff(np.append(starts, len(pcs)))
    return pcs[starts], masks, dynamic


def fold_pc_partials(partials) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]:
    """Merge per-shard ``(pcs, masks, dynamic)`` partials into one.

    Masks OR and dynamic counts add per PC - both exact integer
    reductions, so the result does not depend on shard size or fold
    order.
    """
    partials = [p for p in partials if len(p[0])]
    if not partials:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    if len(partials) == 1:
        return partials[0]
    pcs = np.concatenate([p[0] for p in partials])
    masks = np.concatenate([p[1] for p in partials])
    dynamic = np.concatenate([p[2] for p in partials])
    order = np.argsort(pcs, kind="stable")
    pcs = pcs[order]
    starts = np.flatnonzero(np.concatenate(
        ([True], pcs[1:] != pcs[:-1])))
    return (pcs[starts],
            np.bitwise_or.reduceat(masks[order], starts),
            np.add.reduceat(dynamic[order], starts))


def _pc_region_masks(trace) -> Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]:
    """Per-static-PC region info for a ``Trace`` *or* ``ShardedTrace``.

    A sharded trace streams shard-by-shard, folding the bounded
    per-shard partials as it goes - the accumulator holds one entry
    per distinct PC, never a whole trace.
    """
    from repro.trace.shards import ShardedTrace
    if isinstance(trace, ShardedTrace):
        accumulated = None
        for chunk in trace.chunks():
            partial = pc_region_partial(chunk)
            accumulated = partial if accumulated is None \
                else fold_pc_partials((accumulated, partial))
        if accumulated is None:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        return accumulated
    return pc_region_partial(trace.columns)


def breakdown_from_partial(name: str, masks: np.ndarray,
                           dynamic: np.ndarray) -> RegionBreakdown:
    """Fold per-PC masks/counts into the Figure-2 breakdown."""
    static_by_mask = np.bincount(masks, minlength=8)
    dynamic_by_mask = np.bincount(masks, weights=dynamic, minlength=8)
    static_counts = {cls: 0 for cls in REGION_CLASSES}
    dynamic_counts = {cls: 0 for cls in REGION_CLASSES}
    for mask, cls in _CLASS_OF_MASK.items():
        static_counts[cls] = int(static_by_mask[mask])
        dynamic_counts[cls] = int(dynamic_by_mask[mask])
    return RegionBreakdown(name=name, static_counts=static_counts,
                           dynamic_counts=dynamic_counts)


def region_breakdown(trace) -> RegionBreakdown:
    """One-shot Figure-2 breakdown of a trace (vectorised).

    Equivalent to streaming the trace through
    :class:`RegionClassifier` (the retained scalar reference) but
    computed with grouped NumPy reductions over the columnar view.
    Accepts a :class:`~repro.trace.shards.ShardedTrace` and streams it
    chunk-wise with byte-identical results.
    """
    _, masks, dynamic = _pc_region_masks(trace)
    return breakdown_from_partial(trace.name, masks, dynamic)


def single_region_pcs(trace) -> Dict[int, bool]:
    """PC -> is_stack for single-region instructions (vectorised).

    Columnar counterpart of
    :meth:`RegionClassifier.single_region_pcs`, feeding the idealised
    compiler-hint scheme without materialising records.  Streams
    sharded traces like :func:`region_breakdown`.
    """
    pcs, masks, _ = _pc_region_masks(trace)
    single = (masks == 0b001) | (masks == 0b010) | (masks == 0b100)
    return dict(zip((pcs[single]).tolist(),
                    (masks[single] == 0b100).tolist()))
