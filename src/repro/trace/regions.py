"""Per-static-instruction access-region analysis (the paper's Figure 2).

Classifies every static memory instruction by the set of regions it
touches at run time: "D" (data only), "H" (heap only), "S" (stack only),
and the multi-region classes "D/H", "D/S", "H/S", "D/H/S".  The paper's
central observation - *access region locality* - is that the multi-region
classes are tiny (1.8-1.9% of static instructions on average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.trace.records import (REGION_DATA, REGION_HEAP, REGION_STACK,
                                 Trace, TraceRecord)

#: Canonical class labels in the paper's presentation order.
REGION_CLASSES = ("D", "H", "S", "D/H", "D/S", "H/S", "D/H/S")

_CLASS_OF_MASK = {
    0b001: "D",
    0b010: "H",
    0b100: "S",
    0b011: "D/H",
    0b101: "D/S",
    0b110: "H/S",
    0b111: "D/H/S",
}

_BIT_OF_REGION = {REGION_DATA: 0b001, REGION_HEAP: 0b010, REGION_STACK: 0b100}

MULTI_REGION_CLASSES = ("D/H", "D/S", "H/S", "D/H/S")


@dataclass
class RegionBreakdown:
    """Figure-2 style breakdown for one program."""

    name: str
    static_counts: Dict[str, int] = field(default_factory=dict)
    dynamic_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_static(self) -> int:
        return sum(self.static_counts.values())

    @property
    def total_dynamic(self) -> int:
        return sum(self.dynamic_counts.values())

    def static_fraction(self, cls: str) -> float:
        return self.static_counts.get(cls, 0) / max(1, self.total_static)

    def dynamic_fraction(self, cls: str) -> float:
        return self.dynamic_counts.get(cls, 0) / max(1, self.total_dynamic)

    @property
    def multi_region_static_fraction(self) -> float:
        """Fraction of static memory instructions accessing >1 region."""
        return sum(self.static_fraction(c) for c in MULTI_REGION_CLASSES)

    @property
    def multi_region_dynamic_fraction(self) -> float:
        """Fraction of dynamic references from multi-region instructions."""
        return sum(self.dynamic_fraction(c) for c in MULTI_REGION_CLASSES)

    @property
    def stack_only_static_fraction(self) -> float:
        return self.static_fraction("S")


class RegionClassifier:
    """Streams trace records and accumulates the per-PC region sets."""

    def __init__(self) -> None:
        self._region_mask: Dict[int, int] = {}   # pc -> region bit mask
        self._dynamic: Dict[int, int] = {}       # pc -> dynamic ref count

    def observe(self, record: TraceRecord) -> None:
        if record.region < 0:
            return
        bit = _BIT_OF_REGION[record.region]
        pc = record.pc
        self._region_mask[pc] = self._region_mask.get(pc, 0) | bit
        self._dynamic[pc] = self._dynamic.get(pc, 0) + 1

    def observe_trace(self, trace: Iterable[TraceRecord]) -> None:
        masks = self._region_mask
        dyn = self._dynamic
        for record in trace:
            if record.region < 0:
                continue
            bit = _BIT_OF_REGION[record.region]
            pc = record.pc
            masks[pc] = masks.get(pc, 0) | bit
            dyn[pc] = dyn.get(pc, 0) + 1

    def class_of_pc(self, pc: int) -> str:
        return _CLASS_OF_MASK[self._region_mask[pc]]

    def breakdown(self, name: str = "") -> RegionBreakdown:
        static_counts = {cls: 0 for cls in REGION_CLASSES}
        dynamic_counts = {cls: 0 for cls in REGION_CLASSES}
        for pc, mask in self._region_mask.items():
            cls = _CLASS_OF_MASK[mask]
            static_counts[cls] += 1
            dynamic_counts[cls] += self._dynamic[pc]
        return RegionBreakdown(name=name, static_counts=static_counts,
                               dynamic_counts=dynamic_counts)

    def single_region_pcs(self) -> Dict[int, bool]:
        """PC -> is_stack for instructions that touch exactly one region.

        This is the paper's idealised *compiler hint* information
        (Section 3.5.2): an instruction the profile shows to access a
        single region is assumed classifiable by the compiler.
        """
        result: Dict[int, bool] = {}
        for pc, mask in self._region_mask.items():
            if mask in (0b001, 0b010):
                result[pc] = False
            elif mask == 0b100:
                result[pc] = True
        return result


def region_breakdown(trace: Trace) -> RegionBreakdown:
    """One-shot Figure-2 breakdown of a trace."""
    classifier = RegionClassifier()
    classifier.observe_trace(trace.records)
    return classifier.breakdown(trace.name)
