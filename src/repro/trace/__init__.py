"""Dynamic traces and region-locality profiling."""

from repro.trace.columns import ColumnarTrace
from repro.trace.records import (OC_BRANCH, OC_CALL, OC_IALU, OC_LOAD,
                                 OC_RET, OC_STORE, REGION_DATA, REGION_HEAP,
                                 REGION_STACK, Trace, TraceRecord)
from repro.trace.serialize import load_trace, save_trace

__all__ = [
    "OC_BRANCH", "OC_CALL", "OC_IALU", "OC_LOAD", "OC_RET", "OC_STORE",
    "REGION_DATA", "REGION_HEAP", "REGION_STACK",
    "ColumnarTrace", "Trace", "TraceRecord",
    "load_trace", "save_trace",
]
