"""Out-of-core sharded traces: bounded column chunks + a manifest.

A :class:`ShardedTrace` stores one dynamic trace as a sequence of
fixed-size column shards - each shard a compressed ``.npz`` holding the
same structure-of-arrays layout as :mod:`repro.trace.serialize` (format
v3) - plus a ``manifest.json`` carrying per-shard row counts, CRC-32
checksums, and op-class/region tallies.  The shard is the native unit
of storage, caching, and parallelism:

* the functional simulator *spills* its row buffer into a
  :class:`ShardWriter` every ``shard_rows`` retired instructions, so
  producing a ``--scale 100`` trace never holds more than one shard of
  rows in RAM;
* consumers iterate :meth:`ShardedTrace.chunks` - one
  :class:`ColumnarTrace` at a time, CRC-verified lazily on load - and
  fold shard-local partials with explicit carry state (see
  ``repro.trace.{regions,windows}`` and ``repro.predictor.evaluate``),
  producing results byte-identical to the in-RAM columnar path;
* the eval engine fans out over (cell x shard) so one experiment can
  use every core.

Sharding is governed by one knob: ``--shard-rows N`` /
``REPRO_SHARD_ROWS`` (0 or unset = off, everything stays monolithic).
Aggregate tallies (instructions, loads, stores, branches, syscalls,
per-region counts) live in the manifest, so Table 1 style summaries
and the engine's ``cpu.*`` trace metrics need no shard I/O at all.

Corruption handling mirrors the monolithic cache: a shard whose bytes
do not match the manifest CRC raises
:class:`~repro.trace.serialize.TraceIntegrityError` after invoking the
owner's ``on_corrupt`` hook (the trace cache quarantines the whole
entry atomically there), and the engine's per-cell retry regenerates.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from pathlib import Path
from typing import (Callable, Iterable, Iterator, List, Optional,
                    Sequence, Union)

import numpy as np

from repro.trace.columns import (COLUMN_DTYPES, ColumnarTrace,
                                 _publish_conversion)
from repro.trace.records import (OC_BRANCH, OC_LOAD, OC_STORE,
                                 OC_SYSCALL, REGION_DATA, REGION_HEAP,
                                 REGION_STACK, Trace)
from repro.trace.serialize import _NO_VALUE, TraceIntegrityError

#: Sharded entries are format v3 (v2 is the monolithic single-file
#: layout).  Cache keys embed the version, so a bump regenerates.
SHARD_FORMAT_VERSION = 3

#: Manifest file name inside a shard-set directory.
MANIFEST_NAME = "manifest.json"

#: Environment knob: rows per shard; 0/unset disables sharding.
ENV_VAR = "REPRO_SHARD_ROWS"

#: Per-N sampling for ``trace:shard`` spans (1 = trace every shard).
SPAN_SAMPLE_ENV_VAR = "REPRO_SPAN_SAMPLE"

#: Aggregate tallies kept per shard in the manifest; summed they are
#: exactly what ``engine._publish_trace_metrics`` derives from a
#: monolithic trace's columns.
COUNT_FIELDS = ("instructions", "loads", "stores", "branches",
                "syscalls", "region_data", "region_heap", "region_stack")


class ShardStats:
    """Process-level shard traffic counters (resilience reporting)."""

    __slots__ = ("produced", "loaded", "corrupt")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.produced = 0
        self.loaded = 0
        self.corrupt = 0

    def snapshot(self) -> dict:
        return {"trace.shards.produced": self.produced,
                "trace.shards.loaded": self.loaded,
                "trace.shards.corrupt": self.corrupt}


#: Module-wide counters surfaced through ``engine.resilience_snapshot``
#: (explicitly *not* part of the deterministic metrics guarantee).
STATS = ShardStats()


# -- shard-size knob ----------------------------------------------------

_shard_rows: Optional[int] = None
_explicitly_set = False
_warned_invalid = False


def set_shard_rows(rows: Optional[int]) -> None:
    """Set the rows-per-shard knob (``None`` defers to the env var,
    ``0`` forces sharding off)."""
    global _shard_rows, _explicitly_set
    if rows is None:
        _shard_rows = None
        _explicitly_set = False
        return
    rows = int(rows)
    if rows < 0:
        raise ValueError(f"shard rows must be >= 0, got {rows}")
    _shard_rows = rows
    _explicitly_set = True


def get_shard_rows() -> int:
    """Effective rows-per-shard (0 = sharding disabled).

    Precedence: explicit :func:`set_shard_rows` > ``REPRO_SHARD_ROWS``
    environment variable > off.  Invalid env values warn once and fall
    back to off, mirroring ``REPRO_JOBS`` handling.
    """
    global _warned_invalid
    if _explicitly_set:
        return _shard_rows or 0
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return 0
    try:
        value = int(raw)
        if value < 0:
            raise ValueError(raw)
    except ValueError:
        if not _warned_invalid:
            warnings.warn(f"ignoring invalid {ENV_VAR}={raw!r} "
                          f"(expected a non-negative integer)",
                          RuntimeWarning, stacklevel=2)
            _warned_invalid = True
        return 0
    return value


def sharding_enabled() -> bool:
    """Whether traces should be produced/consumed shard-wise."""
    return get_shard_rows() > 0


def span_sample_every() -> int:
    """Record every Nth ``trace:shard`` span (``REPRO_SPAN_SAMPLE``,
    default 1 = all; invalid or < 1 values fall back to 1)."""
    raw = os.environ.get(SPAN_SAMPLE_ENV_VAR)
    if raw is None or not raw.strip():
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value >= 1 else 1


# -- shard payloads ------------------------------------------------------

def _chunk_payload(chunk: ColumnarTrace) -> dict:
    """The exact arrays written to disk (``value`` carries the None
    sentinel, as in the monolithic v2 layout)."""
    if bool(np.any((chunk.value == _NO_VALUE) & chunk.value_valid)):
        raise ValueError(
            f"trace contains a result value equal to the None sentinel "
            f"({int(_NO_VALUE)}); it would not survive a round-trip")
    payload = {name: getattr(chunk, name) for name, _ in COLUMN_DTYPES}
    payload["value"] = np.where(chunk.value_valid, chunk.value, _NO_VALUE)
    return payload


def _shard_checksum(payload: dict, rows: int) -> int:
    """CRC-32 over the shard's serialised column bytes and shape."""
    crc = zlib.crc32(json.dumps(
        [SHARD_FORMAT_VERSION, rows]).encode("utf-8"))
    for column, _ in COLUMN_DTYPES:
        crc = zlib.crc32(np.ascontiguousarray(payload[column]).tobytes(),
                         crc)
    crc = zlib.crc32(np.ascontiguousarray(payload["value"]).tobytes(),
                     crc)
    return crc & 0xFFFFFFFF


def _shard_counts(chunk: ColumnarTrace) -> dict:
    """Aggregate tallies for one shard (manifest bookkeeping)."""
    op = chunk.op_class
    # Regions are tallied over memory operations only, matching the
    # engine's `cpu.region.*` metric definitions exactly.
    region = chunk.region[(op == OC_LOAD) | (op == OC_STORE)]
    return {
        "instructions": len(chunk),
        "loads": int(np.count_nonzero(op == OC_LOAD)),
        "stores": int(np.count_nonzero(op == OC_STORE)),
        "branches": int(np.count_nonzero(op == OC_BRANCH)),
        "syscalls": int(np.count_nonzero(op == OC_SYSCALL)),
        "region_data": int(np.count_nonzero(region == REGION_DATA)),
        "region_heap": int(np.count_nonzero(region == REGION_HEAP)),
        "region_stack": int(np.count_nonzero(region == REGION_STACK)),
    }


def _load_shard(path: Path, meta: dict) -> ColumnarTrace:
    """Read one shard file and verify it against its manifest entry."""
    try:
        with np.load(str(path)) as data:
            embedded = json.loads(bytes(data["meta"]).decode("utf-8"))
            arrays = [data[name] for name, _ in COLUMN_DTYPES]
            raw_values = data["value"]
    except TraceIntegrityError:
        raise
    except Exception as exc:
        raise TraceIntegrityError(
            f"unreadable trace shard {path}: {exc}") from exc
    if embedded.get("version") != SHARD_FORMAT_VERSION:
        raise TraceIntegrityError(
            f"unsupported shard format version "
            f"{embedded.get('version')} in {path}")
    payload = {name: array
               for (name, _), array in zip(COLUMN_DTYPES, arrays)}
    payload["value"] = raw_values
    if len(raw_values) != meta["rows"]:
        raise TraceIntegrityError(
            f"shard {path} holds {len(raw_values)} rows, manifest "
            f"says {meta['rows']}")
    actual = _shard_checksum(payload, meta["rows"])
    if actual != meta["crc"]:
        raise TraceIntegrityError(
            f"shard checksum mismatch for {path}: manifest "
            f"{meta['crc']!r}, computed {actual}")
    valid = raw_values != _NO_VALUE
    return ColumnarTrace(*arrays, np.where(valid, raw_values, 0), valid)


# -- writers -------------------------------------------------------------

class _WriterBase:
    """Shared spill-sink bookkeeping for disk and memory writers."""

    def __init__(self, name: str, shard_rows: int) -> None:
        if shard_rows <= 0:
            raise ValueError(f"shard rows must be positive, "
                             f"got {shard_rows}")
        self.name = name
        self.shard_rows = int(shard_rows)
        self.shards: List[dict] = []
        self._total_rows = 0
        self._finished = False

    def append_rows(self, rows: Sequence[tuple]) -> None:
        """Columnise one simulator row buffer and store it as a shard.

        Publication of ``trace.columnar.*`` is deferred to
        :meth:`finish` so a spilled build counts exactly like one
        monolithic ``from_rows`` call (byte-identical metrics).
        """
        self.append(ColumnarTrace.from_rows(rows, publish=False))

    def append(self, chunk: ColumnarTrace) -> None:
        if self._finished:
            raise RuntimeError("shard writer already finished")
        if len(chunk) == 0:
            return
        meta = {"rows": len(chunk), "counts": _shard_counts(chunk)}
        self._store(len(self.shards), chunk, meta)
        self.shards.append(meta)
        self._total_rows += len(chunk)
        STATS.produced += 1

    def _store(self, index: int, chunk: ColumnarTrace,
               meta: dict) -> None:
        raise NotImplementedError

    def _finish_meta(self, output, exit_code: int) -> dict:
        self._finished = True
        # Mirror ColumnarTrace.from_rows: an empty build publishes
        # nothing (from_rows returns empty() before the counter inc).
        if self._total_rows:
            _publish_conversion("builds", self._total_rows)
        return {
            "version": SHARD_FORMAT_VERSION,
            "name": self.name,
            "shard_rows": self.shard_rows,
            "total_rows": self._total_rows,
            "output": list(output),
            "exit_code": int(exit_code),
            "shards": self.shards,
        }


class ShardWriter(_WriterBase):
    """Writes bounded ``.npz`` column shards plus a manifest into a
    directory (the trace cache points it at a fresh entry dir)."""

    def __init__(self, directory: Union[str, Path], name: str,
                 shard_rows: int) -> None:
        super().__init__(name, shard_rows)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _store(self, index: int, chunk: ColumnarTrace,
               meta: dict) -> None:
        payload = _chunk_payload(chunk)
        meta["file"] = f"shard-{index:05d}.npz"
        meta["crc"] = _shard_checksum(payload, len(chunk))
        embedded = json.dumps({"version": SHARD_FORMAT_VERSION,
                               "index": index, "rows": len(chunk)})
        with open(self.directory / meta["file"], "wb") as fh:
            np.savez_compressed(fh, meta=np.frombuffer(
                embedded.encode("utf-8"), dtype=np.uint8), **payload)

    def finish(self, output, exit_code: int) -> "ShardedTrace":
        """Write the manifest atomically and return the finished view."""
        manifest = self._finish_meta(output, exit_code)
        path = self.directory / MANIFEST_NAME
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(manifest), encoding="utf-8")
        os.replace(tmp, path)
        return ShardedTrace(manifest, directory=self.directory)


class MemoryShardWriter(_WriterBase):
    """Same spill protocol, chunks kept in RAM (no disk cache active).

    Peak memory matches the monolithic path - this backing exists so
    the streaming reductions and their carry-state contracts run (and
    are tested) identically with or without a cache directory.
    """

    def __init__(self, name: str, shard_rows: int) -> None:
        super().__init__(name, shard_rows)
        self._chunks: List[ColumnarTrace] = []

    def _store(self, index: int, chunk: ColumnarTrace,
               meta: dict) -> None:
        self._chunks.append(chunk)

    def finish(self, output, exit_code: int) -> "ShardedTrace":
        manifest = self._finish_meta(output, exit_code)
        return ShardedTrace(manifest, resident_chunks=self._chunks)


# -- the sharded view ----------------------------------------------------

class ShardedTrace:
    """A trace stored as bounded column shards (disk or memory backed).

    Offers the aggregate surface the streaming reductions and Table 1
    need (``len``, load/store fractions, per-shard tallies) without
    touching shard bytes; :meth:`chunk`/:meth:`chunks` load and
    CRC-verify one shard at a time.
    """

    __slots__ = ("name", "output", "exit_code", "shard_rows",
                 "total_rows", "_shards", "_directory", "_chunks",
                 "_on_corrupt", "_counts", "_sample_every")

    def __init__(self, manifest: dict,
                 directory: Optional[Union[str, Path]] = None,
                 resident_chunks: Optional[List[ColumnarTrace]] = None,
                 on_corrupt: Optional[Callable[[Exception], None]] = None)\
            -> None:
        if manifest.get("version") != SHARD_FORMAT_VERSION:
            raise TraceIntegrityError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')}")
        if directory is None and resident_chunks is None:
            raise ValueError("a sharded trace needs a directory or "
                             "resident chunks")
        self.name = manifest["name"]
        self.output = list(manifest["output"])
        self.exit_code = int(manifest["exit_code"])
        self.shard_rows = int(manifest["shard_rows"])
        self.total_rows = int(manifest["total_rows"])
        self._shards = list(manifest["shards"])
        self._directory = Path(directory) if directory is not None \
            else None
        self._chunks = resident_chunks
        self._on_corrupt = on_corrupt
        self._counts: Optional[dict] = None
        self._sample_every = span_sample_every()
        if sum(meta["rows"] for meta in self._shards) != self.total_rows:
            raise TraceIntegrityError(
                f"shard manifest for {self.name!r} is inconsistent: "
                f"per-shard rows do not sum to {self.total_rows}")

    # -- aggregate surface (manifest-only, no shard I/O) -----------------

    def __len__(self) -> int:
        return self.total_rows

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def instruction_count(self) -> int:
        return self.total_rows

    def counts(self) -> dict:
        """Summed per-shard tallies (see :data:`COUNT_FIELDS`)."""
        if self._counts is None:
            self._counts = {
                field: sum(meta["counts"][field]
                           for meta in self._shards)
                for field in COUNT_FIELDS}
        return self._counts

    @property
    def load_count(self) -> int:
        return self.counts()["loads"]

    @property
    def store_count(self) -> int:
        return self.counts()["stores"]

    def load_fraction(self) -> float:
        return self.load_count / max(1, self.total_rows)

    def store_fraction(self) -> float:
        return self.store_count / max(1, self.total_rows)

    def shard_meta(self, index: int) -> dict:
        """The manifest entry (rows/crc/counts) for shard ``index``."""
        return self._shards[index]

    # -- shard access ----------------------------------------------------

    def chunk(self, index: int) -> ColumnarTrace:
        """Load (and CRC-verify) shard ``index`` as a ColumnarTrace.

        On integrity failure the owner's ``on_corrupt`` hook runs first
        (the trace cache quarantines the whole entry there), then
        :class:`TraceIntegrityError` propagates so the engine's retry
        regenerates the entry.
        """
        if self._chunks is not None:
            return self._chunks[index]
        meta = self._shards[index]
        path = self._directory / meta["file"]
        from repro.obs import spans
        if index % self._sample_every == 0:
            context = spans.span("trace:shard", workload=self.name,
                                 shard=index, rows=meta["rows"])
        else:
            context = spans.NULL_SPAN
        with context:
            try:
                chunk = _load_shard(path, meta)
            except TraceIntegrityError as exc:
                STATS.corrupt += 1
                if self._on_corrupt is not None:
                    self._on_corrupt(exc)
                raise
        STATS.loaded += 1
        return chunk

    def chunks(self) -> Iterator[ColumnarTrace]:
        """Yield every shard in order, one at a time (re-iterable)."""
        for index in range(len(self._shards)):
            yield self.chunk(index)

    def materialize(self) -> Trace:
        """Concatenate every shard into an ordinary in-RAM trace."""
        parts = list(self.chunks())
        if not parts:
            columns = ColumnarTrace.empty()
        else:
            fields = [np.concatenate([getattr(part, name)
                                      for part in parts])
                      for name, _ in COLUMN_DTYPES]
            value = np.concatenate([part.value for part in parts])
            valid = np.concatenate([part.value_valid for part in parts])
            columns = ColumnarTrace(*fields, value, valid)
        return Trace(name=self.name, columns=columns,
                     output=list(self.output), exit_code=self.exit_code)

    def __repr__(self) -> str:
        backing = "memory" if self._chunks is not None else "disk"
        return (f"ShardedTrace(name={self.name!r}, n={self.total_rows}, "
                f"shards={self.num_shards}, rows/shard={self.shard_rows}, "
                f"backing={backing})")


# -- manifest I/O --------------------------------------------------------

def read_manifest(directory: Union[str, Path]) -> dict:
    """Parse and sanity-check a shard-set manifest.

    Raises :class:`TraceIntegrityError` on missing/corrupt manifests
    (callers quarantine the whole entry, never individual files).
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise TraceIntegrityError(f"shard manifest missing: {path}")
    except Exception as exc:
        raise TraceIntegrityError(
            f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or "shards" not in manifest:
        raise TraceIntegrityError(f"malformed shard manifest: {path}")
    return manifest


def load_sharded(directory: Union[str, Path],
                 on_corrupt: Optional[Callable[[Exception], None]] = None)\
        -> ShardedTrace:
    """Open a shard-set directory written by :class:`ShardWriter`."""
    return ShardedTrace(read_manifest(directory), directory=directory,
                        on_corrupt=on_corrupt)


# -- producers and helpers ----------------------------------------------

def simulate_sharded(name: str, scale: float, writer: _WriterBase)\
        -> ShardedTrace:
    """Functionally simulate a workload, spilling rows into ``writer``.

    The simulator's row buffer is flushed every ``writer.shard_rows``
    retired instructions, so peak RSS is bounded by the shard size
    regardless of ``--scale``.
    """
    from repro.cpu.functional import FunctionalSimulator
    from repro.workloads import suite
    compiled = suite.compile_workload(name, scale)
    simulator = FunctionalSimulator(compiled,
                                    max_steps=suite.step_ceiling(scale))
    stub = simulator.run(sink=writer.append_rows,
                         spill_rows=writer.shard_rows)
    return writer.finish(stub.output, stub.exit_code)


def shard_trace(trace: Trace, shard_rows: int) -> ShardedTrace:
    """Re-chunk an in-RAM trace into a memory-backed sharded view
    (array slices are zero-copy; used by tests and fallbacks)."""
    writer = MemoryShardWriter(trace.name, shard_rows)
    columns = trace.columns
    from repro import metrics
    with metrics.collecting():    # publication deferred/discarded:
        for start in range(0, len(columns), shard_rows):
            stop = min(start + shard_rows, len(columns))
            writer.append(ColumnarTrace(
                *(getattr(columns, name)[start:stop]
                  for name, _ in COLUMN_DTYPES),
                columns.value[start:stop],
                columns.value_valid[start:stop]))
        return writer.finish(trace.output, trace.exit_code)


def iter_chunks(trace) -> Iterable[ColumnarTrace]:
    """Uniform chunk iteration over ``Trace`` or ``ShardedTrace``."""
    if isinstance(trace, ShardedTrace):
        return trace.chunks()
    return iter((trace.columns,))
