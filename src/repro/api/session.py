"""The :class:`Session` facade and its request/response dataclasses.

One programmatic entry point for everything the reproduction can
compute: region-locality profiles, access-region prediction accuracy,
Figure-8 timing sweeps, and every paper experiment/ablation driver.
The batch CLI, the experiment engine, and the ``repro serve`` daemon
all route through this module, so a query answered by any of them is
byte-identical to the same query answered by the others.

A :class:`Session` runs in one of two postures:

* **batch** (``resident=False``, the CLI default): each query fans its
  per-workload cells through :func:`repro.eval.engine.run_cells`
  (honouring ``--jobs`` process parallelism, retries, checkpoints) and
  traces are evicted as soon as a cell finishes - the one-shot,
  bounded-memory posture of a command-line invocation.
* **resident** (``resident=True``, the serving posture): traces stay
  pinned in an in-session LRU, responses are memoised by their
  normalised request, and queries are computed in-process so many
  server threads can share one session.  Warm requests skip both trace
  regeneration and replay; the ``api.*`` counters in the session's
  metrics registry expose the hit/miss traffic.

Both postures share the same pure formatting functions
(:func:`regions_line`, :func:`predict_line`, :func:`timing_block`) and
the same experiment drivers, which is what makes served payloads
byte-identical to batch CLI stdout.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro import eval as evaluation
from repro import metrics
from repro.eval import engine
from repro.eval.result import ExperimentResult
from repro.obs import spans
from repro.predictor import evaluate_scheme, scheme_by_name
from repro.timing import figure8_configs, simulate
from repro.trace import cache as trace_cache
from repro.trace import shards as trace_shards
from repro.trace.records import Trace
from repro.trace.regions import region_breakdown
from repro.trace.windows import window_stats
from repro.workloads import suite

#: Default workload scale per query family (mirrors the CLI defaults).
DEFAULT_REGIONS_SCALE = 0.5
DEFAULT_PREDICT_SCALE = 0.5
DEFAULT_TIMING_SCALE = 0.25
DEFAULT_EXPERIMENT_SCALE = 1.0

#: Default prediction scheme (the paper's 1-bit hybrid ARPT).
DEFAULT_SCHEME = "1bit-hybrid"

#: Experiment drivers by id - the one registry the CLI, the server,
#: and programmatic callers all dispatch through.
EXPERIMENTS = {
    "table1": evaluation.table1,
    "figure2": evaluation.figure2,
    "table2": evaluation.table2,
    "figure4": evaluation.figure4,
    "table3": evaluation.table3,
    "figure5": evaluation.figure5,
    "section33": evaluation.section33,
    "figure8": evaluation.figure8,
    "a1": evaluation.ablation_two_bit,
    "a2": evaluation.ablation_context_bits,
    "a3": evaluation.ablation_lvc_size,
    "a4": evaluation.ablation_static_hints,
    "a5": evaluation.ablation_banked_cache,
    "a6": evaluation.ablation_heap_decoupling,
    "a7": evaluation.ablation_front_end,
    "a8": evaluation.ablation_hint_steering,
}

#: Every experiment id, sorted (the CLI builds its choices from this).
EXPERIMENT_IDS: Tuple[str, ...] = tuple(sorted(EXPERIMENTS))


def resolve_names(names: Sequence[str]) -> Tuple[str, ...]:
    """Validated workload tuple; empty input means the full suite.

    Raises ``ValueError`` (with the known-name list) on unknown names.
    """
    if not names:
        return tuple(suite.ALL_WORKLOADS)
    for name in names:
        suite.spec(name)        # raises with the known-name list
    return tuple(names)


# -- deadlines -----------------------------------------------------------

class DeadlineExceeded(RuntimeError):
    """A request ran past its deadline at a stage boundary.

    Carries enough to answer "where did the budget go": ``stage`` is
    the boundary that found the deadline expired (the work about to be
    abandoned), ``deadline_ms`` the original budget, and ``stages`` the
    ``(label, elapsed_ms)`` pairs for every stage that *did* complete -
    the server returns them in the 504 response so a timed-out client
    still learns which workloads were served within budget.
    ``budgets`` is the parallel ``(label, remaining_ms)`` view: how
    much budget was left *after* each completed stage (``stages``
    keeps its pair shape for existing consumers).
    """

    def __init__(self, stage: str, deadline_ms: float,
                 stages: Sequence[Tuple[str, float]],
                 budgets: Sequence[Tuple[str, float]] = ()) -> None:
        self.stage = stage
        self.deadline_ms = float(deadline_ms)
        self.stages = tuple((label, round(float(ms), 3))
                            for label, ms in stages)
        self.budgets = tuple((label, round(float(ms), 3))
                             for label, ms in budgets)
        super().__init__(
            f"deadline of {self.deadline_ms:.0f}ms exceeded at stage "
            f"{stage!r} ({len(self.stages)} stage(s) completed)")


class _DeadlineState:
    """Per-thread deadline bookkeeping (see :func:`deadline_scope`)."""

    __slots__ = ("expires", "deadline_ms", "mark", "current", "stages",
                 "budgets")

    def __init__(self, expires: float, deadline_ms: float) -> None:
        self.expires = expires
        self.deadline_ms = deadline_ms
        self.mark = time.monotonic()
        self.current: Optional[str] = None
        self.stages: List[Tuple[str, float]] = []
        self.budgets: List[Tuple[str, float]] = []

    def close_current(self) -> Optional[float]:
        """Attribute the elapsed time to the stage in progress.

        Returns the budget remaining (ms, may be negative) recorded
        for the closed stage, or None when no stage was open.
        """
        now = time.monotonic()
        remaining: Optional[float] = None
        if self.current is not None:
            remaining = (self.expires - now) * 1000.0
            self.stages.append((self.current,
                                (now - self.mark) * 1000.0))
            self.budgets.append((self.current, remaining))
            self.current = None
        self.mark = now
        return remaining


_deadline_local = threading.local()


@contextmanager
def deadline_scope(timeout_ms: Optional[float],
                   anchor: Optional[float] = None):
    """Bound the work inside the ``with`` block by a wall-clock budget.

    Session operations call :func:`check_deadline` at stage boundaries
    (per-workload, per-phase); once ``timeout_ms`` has elapsed since
    ``anchor`` (default: scope entry, measured on ``time.monotonic``)
    the next boundary raises :class:`DeadlineExceeded` instead of
    starting more work.  ``timeout_ms`` of ``None`` or ``<= 0`` means
    no deadline.  Scopes are per-thread and do not nest: the innermost
    scope wins, and the previous one is restored on exit.
    """
    if not timeout_ms or timeout_ms <= 0:
        yield None
        return
    anchor = anchor if anchor is not None else time.monotonic()
    state = _DeadlineState(anchor + timeout_ms / 1000.0,
                           float(timeout_ms))
    previous = getattr(_deadline_local, "state", None)
    _deadline_local.state = state
    try:
        yield state
    finally:
        _deadline_local.state = previous


def current_deadline() -> Optional[_DeadlineState]:
    """The active deadline state for this thread, if any."""
    return getattr(_deadline_local, "state", None)


def check_deadline(stage: str) -> None:
    """Stage boundary: note the completed stage, fail if out of budget.

    ``stage`` names the work *about to start*; the time since the last
    boundary is attributed to the stage that just finished.  Raises
    :class:`DeadlineExceeded` (carrying the completed-stage timings)
    when the active scope's budget is spent, so the expensive work
    named ``stage`` is never started; a no-op when no deadline scope
    is active.
    """
    state = current_deadline()
    if state is None:
        return
    remaining = state.close_current()
    if remaining is not None:
        # Decorate whatever span is open (serve:request, api:trace,
        # cli:*) with the budget left at this boundary - the last
        # write wins, so a 504 post-mortem's span shows the remaining
        # budget when the request last crossed a boundary.
        spans.annotate("budget_ms", round(remaining, 3))
    if time.monotonic() >= state.expires:
        raise DeadlineExceeded(stage, state.deadline_ms, state.stages,
                               state.budgets)
    state.current = stage


# -- request / response dataclasses -------------------------------------

@dataclass(frozen=True)
class RegionsRequest:
    """A region-locality profile query (Figure 2 / Table 2 style)."""

    names: Tuple[str, ...] = ()       # empty = full suite
    scale: float = DEFAULT_REGIONS_SCALE


@dataclass(frozen=True)
class RegionsResponse:
    """Per-workload region-profile lines (CLI ``regions`` payload)."""

    request: RegionsRequest
    lines: Tuple[str, ...]

    @property
    def text(self) -> str:
        """Exactly what the batch CLI prints to stdout."""
        return "".join(line + "\n" for line in self.lines)


@dataclass(frozen=True)
class PredictRequest:
    """An access-region prediction-accuracy query."""

    names: Tuple[str, ...] = ()       # empty = full suite
    scale: float = DEFAULT_PREDICT_SCALE
    scheme: str = DEFAULT_SCHEME


@dataclass(frozen=True)
class PredictResponse:
    """Per-workload prediction-accuracy lines (CLI ``predict`` payload)."""

    request: PredictRequest
    lines: Tuple[str, ...]

    @property
    def text(self) -> str:
        """Exactly what the batch CLI prints to stdout."""
        return "".join(line + "\n" for line in self.lines)


@dataclass(frozen=True)
class TimingRequest:
    """A Figure-8 timing-configuration sweep query."""

    names: Tuple[str, ...] = ()       # empty = full suite
    scale: float = DEFAULT_TIMING_SCALE


@dataclass(frozen=True)
class TimingResponse:
    """Per-workload Figure-8 blocks (CLI ``timing`` payload)."""

    request: TimingRequest
    lines: Tuple[str, ...]            # one multi-line block per workload

    @property
    def text(self) -> str:
        """Exactly what the batch CLI prints to stdout."""
        return "".join(block + "\n" for block in self.lines)


@dataclass(frozen=True)
class ExperimentRequest:
    """One paper experiment or ablation run (``table1`` .. ``a8``)."""

    experiment: str
    names: Tuple[str, ...] = ()       # empty = the driver's default set
    scale: Optional[float] = None     # None = DEFAULT_EXPERIMENT_SCALE


@dataclass(frozen=True)
class ExperimentResponse:
    """A rendered experiment table plus its full typed result."""

    request: ExperimentRequest
    rendered: str                     # the paper-style text table
    result: ExperimentResult = field(compare=False, repr=False,
                                     default=None)

    @property
    def text(self) -> str:
        """Exactly what the batch CLI prints to stdout."""
        return self.rendered + "\n"


# -- pure per-workload formatting (shared by batch and resident) --------

def regions_line(name: str, trace: Trace) -> str:
    """One region-profile line for an already-materialised trace."""
    breakdown = region_breakdown(trace)
    w32 = window_stats(trace, 32)
    classes = " ".join(
        f"{cls}:{100 * breakdown.static_fraction(cls):.0f}%"
        for cls in ("D", "H", "S"))
    return (f"{name:<12} {len(trace):>9,} insns  {classes}  "
            f"multi:{100 * breakdown.multi_region_static_fraction:.1f}%  "
            f"win32 D/H/S: {w32.data.mean:.1f}/{w32.heap.mean:.1f}/"
            f"{w32.stack.mean:.1f}")


def predict_line(name: str, trace: Trace, scheme: str) -> str:
    """One prediction-accuracy line for an already-materialised trace."""
    result = evaluate_scheme(trace, scheme)
    return (f"{name:<12} {scheme:<12} "
            f"accuracy {100 * result.accuracy:6.2f}%  "
            f"mode-definitive {100 * result.definitive_fraction:5.1f}%  "
            f"ARPT entries {result.occupancy}")


def timing_block(name: str, trace: Trace) -> str:
    """One workload's Figure-8 sweep block."""
    lines = [f"{name} ({len(trace):,} instructions):"]
    baseline: Optional[int] = None
    for config in figure8_configs():
        result = simulate(trace, config)
        if baseline is None:
            baseline = result.cycles
        lines.append(f"  {config.name:<12} ipc {result.ipc:5.2f}  "
                     f"vs (2+0): {baseline / result.cycles:.3f}")
    return "\n".join(lines)


# -- engine cell wrappers (module-level so --jobs can pickle them) ------

def regions_cell(name: str, scale: float) -> str:
    """One region-profile cell routed through the engine.

    Uses the streaming trace handle: with ``--shard-rows`` set the
    region/window reductions fold shard-by-shard and peak memory stays
    bounded by the shard size, not the trace length.
    """
    trace = engine.trace_handle(name, scale)
    try:
        return regions_line(name, trace)
    finally:
        suite.evict(name, scale)


def predict_cell(name: str, scale: float, scheme: str) -> str:
    """One prediction-accuracy cell routed through the engine."""
    trace = engine.trace_handle(name, scale)
    try:
        return predict_line(name, trace, scheme)
    finally:
        suite.evict(name, scale)


def timing_cell(name: str, scale: float) -> str:
    """One Figure-8 sweep cell routed through the engine."""
    trace = engine.trace_for(name, scale)
    try:
        return timing_block(name, trace)
    finally:
        suite.evict(name, scale)


# -- the facade ---------------------------------------------------------

class Session:
    """The embeddable programmatic API for the whole reproduction.

    See the module docstring for the batch/resident split.  All public
    methods are safe to call from multiple threads on a resident
    session: memoised responses are immutable, computation is
    serialised behind one lock, and warm-path lookups are lock-free
    dictionary reads.

    ``jobs`` overrides the engine's process fan-out per query (``None``
    defers to the engine's own default, i.e. ``--jobs``/``REPRO_JOBS``);
    resident sessions default to in-process serial execution because
    the server provides concurrency across requests instead.
    ``shard_rows`` streams traces as bounded row shards (the CLI's
    ``--shard-rows``); batch queries then fold their reductions
    shard-by-shard in bounded memory, byte-identical to in-RAM runs.
    """

    def __init__(self, resident: bool = False,
                 jobs: Optional[int] = None,
                 registry: Optional[metrics.MetricsRegistry] = None,
                 max_resident_traces: int = 16,
                 shard_rows: Optional[int] = None) -> None:
        self.resident = resident
        self.jobs = jobs if jobs is not None else (1 if resident else None)
        # ``shard_rows`` mirrors the CLI's ``--shard-rows``: a process-
        # wide knob (like the engine's jobs default), applied here so
        # programmatic sessions stream out-of-core without touching the
        # environment.  None defers to $REPRO_SHARD_ROWS / off.
        if shard_rows is not None:
            trace_shards.set_shard_rows(shard_rows)
        #: The session-private metrics registry (always collecting;
        #: independent of the process-global ``repro.metrics`` switch).
        self.metrics = registry if registry is not None \
            else metrics.MetricsRegistry()
        self.max_resident_traces = max_resident_traces
        self._api_ns = self.metrics.scoped("api")
        self._traces: "OrderedDict[Tuple[str, float], Trace]" = \
            OrderedDict()
        self._responses: Dict[object, object] = {}
        self._lock = threading.Lock()          # serialises computation
        self._counter_lock = threading.Lock()  # warm-path counter bumps
        #: Optional observer of resident-LRU traffic.  Called with
        #: ``"hit"`` / ``"miss"`` / ``"evict"`` as they happen; the
        #: serve layer points this at its admission controller so
        #: cache thrash drives load shedding.  Must be fast and must
        #: not call back into the session (it may run under the
        #: session lock).
        self.trace_events: Optional[Callable[[str], None]] = None

    # -- internal helpers ----------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._api_ns.counter(name).inc(amount)

    _TRACE_COUNTERS = {"hit": "trace.hits", "miss": "trace.misses",
                       "evict": "trace.evictions"}

    def _note_trace(self, kind: str) -> None:
        """Count one resident-LRU event and tell the observer."""
        self._count(self._TRACE_COUNTERS[kind])
        listener = self.trace_events
        if listener is not None:
            listener(kind)

    def _fetch_trace(self, name: str, scale: float) -> Trace:
        """A resident trace, loading (cache or simulate) on first use.

        Must be called with :attr:`_lock` held; counts hits/misses/
        evictions into ``api.trace.*`` so the warm path (and LRU
        churn) is observable.
        """
        key = (name, float(scale))
        trace = self._traces.get(key)
        if trace is not None:
            self._note_trace("hit")
            self._traces.move_to_end(key)
            return trace
        with spans.span("api:trace", workload=name, scale=scale):
            cache = trace_cache.active_cache()
            if cache is None:
                trace = suite.run(name, scale)
            else:
                trace = cache.fetch(name, scale, producer=suite.run)
            # Residency is this session's job; drop the suite memo's
            # duplicate reference so memory is bounded by our LRU only.
            suite.evict(name, scale)
            trace.columns      # pay the columnar conversion at load time
        self._traces[key] = trace
        # The miss is noted *after* insertion so a listener that
        # snapshots the resident set (the serve warm manifest) sees
        # the trace it was just told about.
        self._note_trace("miss")
        while len(self._traces) > self.max_resident_traces:
            self._traces.popitem(last=False)
            self._note_trace("evict")
        return trace

    def _memoised(self, op: str, key, compute):
        """Resident-mode response memo with compute-once semantics."""
        hit = self._responses.get(key)
        if hit is not None:
            self._count(f"{op}.memo.hits")
            return hit
        with self._lock:
            hit = self._responses.get(key)
            if hit is not None:
                self._count(f"{op}.memo.hits")
                return hit
            self._count(f"{op}.memo.misses")
            response = compute()
            self._responses[key] = response
            return response

    # -- residency management ------------------------------------------

    def warm(self, pairs: Iterable[Tuple[str, float]]) -> List[Tuple[str, float]]:
        """Pin ``(workload, scale)`` traces in memory ahead of traffic.

        Returns the validated pairs actually warmed.  Only meaningful
        on resident sessions (a batch session evicts after each cell).
        """
        warmed = []
        for name, scale in pairs:
            suite.spec(name)            # validate before any work
            with self._lock:
                self._fetch_trace(name, float(scale))
            warmed.append((name, float(scale)))
        return warmed

    def warmed(self) -> Tuple[Tuple[str, float], ...]:
        """The ``(workload, scale)`` pairs currently resident."""
        return tuple(self._traces.keys())

    def memoised_count(self) -> int:
        """How many responses the memo table currently holds."""
        return len(self._responses)

    def evict_residents(self) -> int:
        """Force-drop every resident trace (memoised responses stay).

        Returns how many traces were evicted.  Each eviction is
        counted and reported to :attr:`trace_events` exactly like an
        LRU capacity eviction, so this is also the hook the serve
        fault injector uses (``serve:oom-evict``) to drive the
        backpressure path deterministically.
        """
        with self._lock:
            count = len(self._traces)
            self._traces.clear()
        for _ in range(count):
            self._note_trace("evict")
        return count

    def close(self) -> None:
        """Drop resident traces and memoised responses."""
        with self._lock:
            self._traces.clear()
            self._responses.clear()

    # -- request normalisation / memo probing ---------------------------

    def _normalise(self, request):
        """The canonical (memo-keying) form of any request dataclass.

        Mirrors exactly what each query method does before computing,
        so a normalised request equals the memo key of its response.
        Raises ``ValueError`` on unknown workloads/schemes/experiments.
        """
        if isinstance(request, RegionsRequest):
            return replace(request, names=resolve_names(request.names),
                           scale=float(request.scale))
        if isinstance(request, PredictRequest):
            scheme_by_name(request.scheme)
            return replace(request, names=resolve_names(request.names),
                           scale=float(request.scale))
        if isinstance(request, TimingRequest):
            return replace(request, names=resolve_names(request.names),
                           scale=float(request.scale))
        if isinstance(request, ExperimentRequest):
            if request.experiment not in EXPERIMENTS:
                raise ValueError(
                    f"unknown experiment {request.experiment!r}; "
                    f"known: {list(EXPERIMENT_IDS)}")
            scale = request.scale if request.scale is not None \
                else DEFAULT_EXPERIMENT_SCALE
            names = tuple(resolve_names(request.names)) \
                if request.names else ()
            return replace(request, names=names, scale=float(scale))
        raise TypeError(f"not a request dataclass: {request!r}")

    def probe(self, request) -> bool:
        """True when ``request`` already has a memoised response.

        The cost oracle for admission control: a probed-warm request
        is answered from the memo table (a dictionary lookup), so the
        serve layer keeps admitting it even while shedding expensive
        cold work.  Always False on batch sessions and for requests
        that fail validation (those are cheap to reject anyway).
        """
        if not self.resident:
            return False
        try:
            key = self._normalise(request)
        except (TypeError, ValueError):
            return False
        return key in self._responses

    # -- queries --------------------------------------------------------

    def regions(self, request: Optional[RegionsRequest] = None)\
            -> RegionsResponse:
        """Region-locality profile lines, one per workload."""
        request = self._normalise(
            request if request is not None else RegionsRequest())
        if not self.resident:
            check_deadline("regions:run_cells")
            lines = tuple(engine.run_cells(
                regions_cell, request.names, request.scale,
                jobs=self.jobs))
            return RegionsResponse(request, lines)

        def one(name: str) -> str:
            check_deadline(f"regions:{name}")
            return regions_line(name,
                                self._fetch_trace(name, request.scale))

        return self._memoised("regions", request, lambda: RegionsResponse(
            request, tuple(one(name) for name in request.names)))

    def predict(self, request: Optional[PredictRequest] = None)\
            -> PredictResponse:
        """Prediction-accuracy lines, one per workload."""
        request = self._normalise(
            request if request is not None else PredictRequest())
        if not self.resident:
            check_deadline("predict:run_cells")
            lines = tuple(engine.run_cells(
                predict_cell, request.names, request.scale,
                request.scheme, jobs=self.jobs))
            return PredictResponse(request, lines)

        def one(name: str) -> str:
            check_deadline(f"predict:{name}")
            return predict_line(name,
                                self._fetch_trace(name, request.scale),
                                request.scheme)

        return self._memoised("predict", request, lambda: PredictResponse(
            request, tuple(one(name) for name in request.names)))

    def timing(self, request: Optional[TimingRequest] = None)\
            -> TimingResponse:
        """Figure-8 configuration sweep blocks, one per workload."""
        request = self._normalise(
            request if request is not None else TimingRequest())
        if not self.resident:
            check_deadline("timing:run_cells")
            lines = tuple(engine.run_cells(
                timing_cell, request.names, request.scale,
                jobs=self.jobs))
            return TimingResponse(request, lines)

        def one(name: str) -> str:
            check_deadline(f"timing:{name}")
            return timing_block(name,
                                self._fetch_trace(name, request.scale))

        return self._memoised("timing", request, lambda: TimingResponse(
            request, tuple(one(name) for name in request.names)))

    def experiment(self, request: ExperimentRequest) -> ExperimentResponse:
        """Run one paper experiment/ablation driver.

        Mirrors the batch CLI exactly: the scale defaults to
        :data:`DEFAULT_EXPERIMENT_SCALE` and names are passed to the
        driver only when explicitly given (so each driver's own default
        workload set applies otherwise).
        """
        request = self._normalise(request)

        def compute() -> ExperimentResponse:
            # Experiments run as one opaque driver call; the deadline
            # boundary here stops a request that spent its budget
            # queueing from starting a multi-second sweep.
            check_deadline(f"experiment:{request.experiment}")
            driver = EXPERIMENTS[request.experiment]
            kwargs = {"scale": request.scale}
            if request.names:
                kwargs["names"] = request.names
            if self.jobs is not None:
                kwargs["jobs"] = self.jobs
            result = driver(**kwargs)
            return ExperimentResponse(request, result.render(), result)

        if not self.resident:
            return compute()
        return self._memoised("experiment", request, compute)
