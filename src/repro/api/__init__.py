"""Public programmatic API: the :class:`Session` facade.

``repro.api`` is the stable surface embedders program against.  The
batch CLI subcommands, the experiment engine's callers, and the
``repro serve`` daemon all route through it, which is what guarantees
that the same query answered by any entry point produces byte-identical
payloads.

Typical use::

    from repro import api

    session = api.Session(resident=True)
    session.warm([("db_vortex", 0.2)])
    response = session.predict(api.PredictRequest(
        names=("db_vortex",), scale=0.2))
    print(response.text, end="")

Everything exported here is covered by ``tests/test_public_api.py``
and the surface-pinning test in ``tests/serve/``.
"""

from repro.api.session import (DEFAULT_EXPERIMENT_SCALE,
                               DEFAULT_PREDICT_SCALE,
                               DEFAULT_REGIONS_SCALE, DEFAULT_SCHEME,
                               DEFAULT_TIMING_SCALE, EXPERIMENT_IDS,
                               EXPERIMENTS, DeadlineExceeded,
                               ExperimentRequest, ExperimentResponse,
                               PredictRequest, PredictResponse,
                               RegionsRequest, RegionsResponse, Session,
                               TimingRequest, TimingResponse,
                               check_deadline, current_deadline,
                               deadline_scope,
                               predict_cell, predict_line, regions_cell,
                               regions_line, resolve_names, timing_block,
                               timing_cell)

__all__ = [
    "Session",
    "DeadlineExceeded",
    "deadline_scope",
    "check_deadline",
    "current_deadline",
    "RegionsRequest",
    "RegionsResponse",
    "PredictRequest",
    "PredictResponse",
    "TimingRequest",
    "TimingResponse",
    "ExperimentRequest",
    "ExperimentResponse",
    "EXPERIMENTS",
    "EXPERIMENT_IDS",
    "DEFAULT_REGIONS_SCALE",
    "DEFAULT_PREDICT_SCALE",
    "DEFAULT_TIMING_SCALE",
    "DEFAULT_EXPERIMENT_SCALE",
    "DEFAULT_SCHEME",
    "resolve_names",
    "regions_line",
    "predict_line",
    "timing_block",
    "regions_cell",
    "predict_cell",
    "timing_cell",
]
