"""Lexer for MiniC, the small C-like language the workloads are written in.

MiniC exists so that the benchmark suite is produced by a *real compiler*
with a real stack discipline: the paper's static region heuristics read the
addressing mode ($sp/$fp/$gp/other) of each memory instruction, and only
compiled code exercises those heuristics faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset({
    "int", "float", "void", "if", "else", "while", "for", "return",
    "break", "continue",
})

# Multi-character operators must be matched before their prefixes.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str    # 'int', 'float', 'ident', 'keyword', 'op', 'string', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


class LexError(Exception):
    """Raised on malformed input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


class Lexer:
    """Hand-rolled scanner producing a flat token list."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> List[Token]:
        return list(self._tokens())

    def _tokens(self) -> Iterator[Token]:
        src = self._source
        n = len(src)
        while self._pos < n:
            ch = src[self._pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self._pos += 1
                self._line += 1
                self._col = 1
            elif src.startswith("//", self._pos):
                self._skip_line_comment()
            elif src.startswith("/*", self._pos):
                self._skip_block_comment()
            elif ch.isdigit() or (ch == "." and self._peek_digit(1)):
                yield self._number()
            elif ch.isalpha() or ch == "_":
                yield self._identifier()
            else:
                yield self._operator()
        yield Token("eof", "", self._line, self._col)

    def _advance(self, count: int) -> None:
        self._pos += count
        self._col += count

    def _peek_digit(self, offset: int) -> bool:
        pos = self._pos + offset
        return pos < len(self._source) and self._source[pos].isdigit()

    def _skip_line_comment(self) -> None:
        end = self._source.find("\n", self._pos)
        if end == -1:
            self._pos = len(self._source)
        else:
            self._pos = end  # newline handled by main loop

    def _skip_block_comment(self) -> None:
        end = self._source.find("*/", self._pos + 2)
        if end == -1:
            raise LexError("unterminated block comment", self._line, self._col)
        skipped = self._source[self._pos:end + 2]
        newlines = skipped.count("\n")
        if newlines:
            self._line += newlines
            self._col = len(skipped) - skipped.rfind("\n")
        else:
            self._col += len(skipped)
        self._pos = end + 2

    def _number(self) -> Token:
        start = self._pos
        line, col = self._line, self._col
        src = self._source
        n = len(src)
        is_float = False
        if src.startswith("0x", start) or src.startswith("0X", start):
            self._advance(2)
            while self._pos < n and (src[self._pos].isdigit()
                                     or src[self._pos] in "abcdefABCDEF"):
                self._advance(1)
            return Token("int", src[start:self._pos], line, col)
        while self._pos < n and src[self._pos].isdigit():
            self._advance(1)
        if self._pos < n and src[self._pos] == ".":
            is_float = True
            self._advance(1)
            while self._pos < n and src[self._pos].isdigit():
                self._advance(1)
        if self._pos < n and src[self._pos] in "eE":
            is_float = True
            self._advance(1)
            if self._pos < n and src[self._pos] in "+-":
                self._advance(1)
            if self._pos >= n or not src[self._pos].isdigit():
                raise LexError("malformed exponent", self._line, self._col)
            while self._pos < n and src[self._pos].isdigit():
                self._advance(1)
        kind = "float" if is_float else "int"
        return Token(kind, src[start:self._pos], line, col)

    def _identifier(self) -> Token:
        start = self._pos
        line, col = self._line, self._col
        src = self._source
        n = len(src)
        while self._pos < n and (src[self._pos].isalnum() or src[self._pos] == "_"):
            self._advance(1)
        text = src[start:self._pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)

    def _operator(self) -> Token:
        line, col = self._line, self._col
        for op in OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token("op", op, line, col)
        raise LexError(
            f"unexpected character {self._source[self._pos]!r}", line, col
        )


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex a full MiniC source string."""
    return Lexer(source).tokenize()
