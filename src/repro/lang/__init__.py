"""MiniC language front end: lexer, parser, AST, type system."""

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.types import FLOAT, INT, INT_PTR, FLOAT_PTR, VOID, Type

__all__ = [
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse",
    "FLOAT",
    "INT",
    "INT_PTR",
    "FLOAT_PTR",
    "VOID",
    "Type",
]
