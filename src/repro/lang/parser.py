"""Recursive-descent parser for MiniC.

Grammar (EBNF sketch)::

    program     = { global_decl | func_def } ;
    type        = ( "int" | "float" | "void" ) { "*" } ;
    global_decl = type ident [ "[" int "]" ] [ "=" init ] ";" ;
    func_def    = type ident "(" [ params ] ")" block ;
    stmt        = block | if | while | for | return | break | continue
                | decl | expr ";" | ";" ;
    expr        = assignment with C-like precedence below ;

Precedence, loosest first: ``||``, ``&&``, ``|``, ``^``, ``&``, equality,
relational, shift, additive, multiplicative, cast/unary, postfix.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.fold import fold_int_binary
from repro.lang.lexer import Token, tokenize
from repro.lang.types import Type

_TYPE_KEYWORDS = ("int", "float", "void")


class ParseError(Exception):
    """Raised on syntactically invalid MiniC."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        want = text if text is not None else kind
        raise ParseError(f"expected {want!r}", self._peek())

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS

    # -- top level ---------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while not self._check("eof"):
            if not self._at_type():
                raise ParseError("expected a declaration", self._peek())
            # Distinguish function definitions from globals: after the
            # type and identifier, a '(' introduces a function.
            save = self._pos
            self._parse_type()
            self._expect("ident")
            is_function = self._check("op", "(")
            self._pos = save
            if is_function:
                unit.functions.append(self._function_def())
            else:
                unit.globals.append(self._var_decl())
        return unit

    def _parse_type(self) -> Type:
        tok = self._expect("keyword")
        if tok.text not in _TYPE_KEYWORDS:
            raise ParseError("expected a type", tok)
        depth = 0
        while self._match("op", "*"):
            depth += 1
        return Type(tok.text, depth)

    def _function_def(self) -> ast.FuncDef:
        line = self._peek().line
        return_type = self._parse_type()
        name = self._expect("ident").text
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._check("op", ")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect("ident").text
                params.append(ast.Param(line=line, param_type=ptype, name=pname))
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        body = self._block()
        return ast.FuncDef(line=line, return_type=return_type, name=name,
                           params=params, body=body)

    def _var_decl(self) -> ast.VarDecl:
        line = self._peek().line
        var_type = self._parse_type()
        name = self._expect("ident").text
        array_size: Optional[int] = None
        if self._match("op", "["):
            size_tok = self._expect("int")
            array_size = int(size_tok.text, 0)
            if array_size <= 0:
                raise ParseError("array size must be positive", size_tok)
            self._expect("op", "]")
        initializers: List[ast.Expr] = []
        if self._match("op", "="):
            if self._match("op", "{"):
                if array_size is None:
                    raise ParseError("brace initializer on a scalar",
                                     self._peek())
                while True:
                    initializers.append(self._expression())
                    if not self._match("op", ","):
                        break
                self._expect("op", "}")
                if len(initializers) > array_size:
                    raise ParseError("too many initializers", self._peek())
            else:
                initializers.append(self._expression())
        self._expect("op", ";")
        return ast.VarDecl(line=line, var_type=var_type, name=name,
                           array_size=array_size, initializers=initializers)

    # -- statements ---------------------------------------------------------

    def _block(self) -> ast.Block:
        line = self._expect("op", "{").line
        statements: List[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise ParseError("unterminated block", self._peek())
            statements.append(self._statement())
        self._expect("op", "}")
        return ast.Block(line=line, statements=statements)

    def _statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == "op" and tok.text == "{":
            return self._block()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._if_stmt()
            if tok.text == "while":
                return self._while_stmt()
            if tok.text == "for":
                return self._for_stmt()
            if tok.text == "return":
                return self._return_stmt()
            if tok.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=tok.line)
            if tok.text in _TYPE_KEYWORDS:
                return self._var_decl()
        if tok.kind == "op" and tok.text == ";":
            self._advance()
            return ast.Block(line=tok.line)  # empty statement
        expr = self._expression()
        self._expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _if_stmt(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        then_branch = self._statement()
        else_branch = None
        if self._match("keyword", "else"):
            else_branch = self._statement()
        return ast.If(line=line, condition=condition,
                      then_branch=then_branch, else_branch=else_branch)

    def _while_stmt(self) -> ast.While:
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        body = self._statement()
        return ast.While(line=line, condition=condition, body=body)

    def _for_stmt(self) -> ast.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if self._at_type():
            init = self._var_decl()
        elif not self._check("op", ";"):
            init = ast.ExprStmt(line=line, expr=self._expression())
            self._expect("op", ";")
        else:
            self._expect("op", ";")
        condition = None
        if not self._check("op", ";"):
            condition = self._expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._expression()
        self._expect("op", ")")
        body = self._statement()
        return ast.For(line=line, init=init, condition=condition,
                       step=step, body=body)

    def _return_stmt(self) -> ast.Return:
        line = self._expect("keyword", "return").line
        value = None
        if not self._check("op", ";"):
            value = self._expression()
        self._expect("op", ";")
        return ast.Return(line=line, value=value)

    # -- expressions ---------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._logical_or()
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("=", "+=", "-=", "*=", "/=", "%="):
            self._advance()
            value = self._assignment()
            return ast.Assign(line=tok.line, op=tok.text, target=left,
                              value=value)
        return left

    def _binary_chain(self, sub, ops) -> ast.Expr:
        left = sub()
        while True:
            tok = self._peek()
            if tok.kind == "op" and tok.text in ops:
                self._advance()
                right = sub()
                # Constant folding: literal op literal collapses at
                # parse time with exact run-time (C) semantics.
                if isinstance(left, ast.IntLiteral) \
                        and isinstance(right, ast.IntLiteral):
                    folded = fold_int_binary(tok.text, left.value,
                                             right.value)
                    if folded is not None:
                        left = ast.IntLiteral(line=tok.line, value=folded)
                        continue
                left = ast.Binary(line=tok.line, op=tok.text, left=left,
                                  right=right)
            else:
                return left

    def _logical_or(self) -> ast.Expr:
        return self._binary_chain(self._logical_and, ("||",))

    def _logical_and(self) -> ast.Expr:
        return self._binary_chain(self._bitor, ("&&",))

    def _bitor(self) -> ast.Expr:
        return self._binary_chain(self._bitxor, ("|",))

    def _bitxor(self) -> ast.Expr:
        return self._binary_chain(self._bitand, ("^",))

    def _bitand(self) -> ast.Expr:
        # '&' as a binary operator; unary address-of is handled in _unary.
        return self._binary_chain(self._equality, ("&",))

    def _equality(self) -> ast.Expr:
        return self._binary_chain(self._relational, ("==", "!="))

    def _relational(self) -> ast.Expr:
        return self._binary_chain(self._shift, ("<", ">", "<=", ">="))

    def _shift(self) -> ast.Expr:
        return self._binary_chain(self._additive, ("<<", ">>"))

    def _additive(self) -> ast.Expr:
        return self._binary_chain(self._multiplicative, ("+", "-"))

    def _multiplicative(self) -> ast.Expr:
        return self._binary_chain(self._cast, ("*", "/", "%"))

    def _cast(self) -> ast.Expr:
        if self._check("op", "(") and self._at_type(1):
            line = self._advance().line  # '('
            to_type = self._parse_type()
            self._expect("op", ")")
            operand = self._cast()
            return ast.Cast(line=line, to_type=to_type, operand=operand)
        return self._unary()

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!", "*", "&"):
            self._advance()
            operand = self._cast()
            # Fold negated literals so that constant array indices such
            # as p[-1] become immediate displacements in codegen.
            if tok.text == "-" and isinstance(operand, ast.IntLiteral):
                return ast.IntLiteral(line=tok.line, value=-operand.value)
            if tok.text == "-" and isinstance(operand, ast.FloatLiteral):
                return ast.FloatLiteral(line=tok.line, value=-operand.value)
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self._check("op", "["):
                line = self._advance().line
                index = self._expression()
                self._expect("op", "]")
                expr = ast.Index(line=line, base=expr, index=index)
            elif self._check("op", "(") and isinstance(expr, ast.Identifier):
                line = self._advance().line
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._expression())
                        if not self._match("op", ","):
                            break
                self._expect("op", ")")
                expr = ast.Call(line=line, name=expr.name, args=args)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._advance()
            return ast.IntLiteral(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "float":
            self._advance()
            return ast.FloatLiteral(line=tok.line, value=float(tok.text))
        if tok.kind == "ident":
            self._advance()
            return ast.Identifier(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            self._advance()
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise ParseError("expected an expression", tok)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(tokenize(source)).parse()
