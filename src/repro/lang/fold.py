"""Compile-time constant folding for integer expressions.

Applied while parsing (an optimising compiler folds constants long
before codegen).  Semantics mirror the functional simulator exactly:
64-bit two's-complement wrap, C truncating division, arithmetic right
shift.  Expressions that could fault (division by zero, oversized
shifts) are left unfolded so they fault at run time like any other.
"""

from __future__ import annotations

from typing import Optional

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _wrap(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def fold_int_binary(op: str, left: int, right: int) -> Optional[int]:
    """Result of ``left op right`` under MiniC semantics, or None when
    the operation cannot (or should not) be folded."""
    if op == "+":
        return _wrap(left + right)
    if op == "-":
        return _wrap(left - right)
    if op == "*":
        return _wrap(left * right)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        if 0 <= right < 64:
            return _wrap(left << right)
        return None
    if op == ">>":
        if 0 <= right < 64:
            return left >> right
        return None
    if op == "/":
        if right != 0:
            return _wrap(_c_div(left, right))
        return None
    if op == "%":
        if right != 0:
            return _wrap(left - _c_div(left, right) * right)
        return None
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    return None
