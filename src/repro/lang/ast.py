"""Abstract syntax tree for MiniC.

Nodes are plain dataclasses.  Every node carries the source line for error
reporting.  The tree is produced by :mod:`repro.lang.parser` and consumed
by :mod:`repro.compiler.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang.types import Type


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """Unary operation: '-', '!', '*' (deref), '&' (address-of)."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is '=' or a compound form like '+='."""

    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Index(Expr):
    """Array / pointer subscript ``base[index]``."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    to_type: Optional[Type] = None
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    """Local or global variable declaration.

    ``array_size`` is None for scalars.  ``initializers`` holds one
    expression for scalars, or any prefix of the array for arrays.
    """

    var_type: Optional[Type] = None
    name: str = ""
    array_size: Optional[int] = None
    initializers: List[Expr] = field(default_factory=list)


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param(Node):
    param_type: Optional[Type] = None
    name: str = ""


@dataclass
class FuncDef(Node):
    return_type: Optional[Type] = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class TranslationUnit(Node):
    """A whole MiniC source file: globals and function definitions."""

    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")
