"""MiniC type system.

Every scalar occupies one machine word (8 bytes), so arrays and pointer
arithmetic scale by whole words.  Types are interned value objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Type:
    """A MiniC type: ``int``, ``float``, ``void``, or a pointer chain."""

    base: str                  # 'int' | 'float' | 'void'
    pointer_depth: int = 0

    def __post_init__(self) -> None:
        if self.base not in ("int", "float", "void"):
            raise ValueError(f"unknown base type {self.base!r}")
        if self.pointer_depth < 0:
            raise ValueError("negative pointer depth")

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_int(self) -> bool:
        return self.base == "int" and self.pointer_depth == 0

    @property
    def is_float(self) -> bool:
        return self.base == "float" and self.pointer_depth == 0

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointer_depth == 0

    @property
    def is_arithmetic(self) -> bool:
        return self.pointer_depth == 0 and self.base in ("int", "float")

    def pointer_to(self) -> "Type":
        return Type(self.base, self.pointer_depth + 1)

    def pointee(self) -> "Type":
        if not self.is_pointer:
            raise ValueError(f"cannot dereference non-pointer {self}")
        return Type(self.base, self.pointer_depth - 1)

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


INT = Type("int")
FLOAT = Type("float")
VOID = Type("void")
INT_PTR = INT.pointer_to()
FLOAT_PTR = FLOAT.pointer_to()


def common_arithmetic_type(left: Type, right: Type) -> Optional[Type]:
    """Usual arithmetic conversions: float wins over int."""
    if not (left.is_arithmetic and right.is_arithmetic):
        return None
    if left.is_float or right.is_float:
        return FLOAT
    return INT


def assignable(target: Type, value: Type) -> bool:
    """Whether ``value`` may be assigned to an lvalue of type ``target``.

    Pointer types must match exactly except that integer expressions may
    seed pointers (address literals / malloc results are int-typed until
    cast) - MiniC is deliberately permissive there, like early C.
    """
    if target == value:
        return True
    if target.is_arithmetic and value.is_arithmetic:
        return True
    if target.is_pointer and (value.is_int or value.is_pointer):
        return True
    if target.is_int and value.is_pointer:
        return True
    return False
