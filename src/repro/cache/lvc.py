"""Stack-cache (LVC) hit-rate experiments.

Section 3.3 of the paper argues stack references exhibit such strong
locality that a tiny dedicated cache suffices, citing a 4 KB stack cache
with a >99.5% hit rate (average ~99.9%) on SPEC95.  This module replays
the stack references of a trace through an LVC of configurable size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.cache.cache import local_variable_cache
from repro.trace.records import OC_STORE, REGION_STACK, Trace


@dataclass
class StackCacheResult:
    trace_name: str
    size_bytes: int
    stack_accesses: int
    hits: int

    @property
    def hit_rate(self) -> float:
        return self.hits / max(1, self.stack_accesses)


def stack_cache_hit_rate(trace: Trace,
                         size_bytes: int = 4 * 1024) -> StackCacheResult:
    """Replay a trace's stack references through a direct-mapped LVC."""
    cache = local_variable_cache(size_bytes)
    # The cache replay itself is stateful and sequential, but the stack
    # subsequence is pre-extracted from the columnar view so the loop
    # iterates plain Python ints instead of record attributes.
    columns = trace.columns
    stack = columns.region == REGION_STACK
    addresses = columns.addr[stack].tolist()
    is_store = (columns.op_class[stack] == OC_STORE).tolist()
    accesses = len(addresses)
    hits = 0
    access = cache.access
    for address, store in zip(addresses, is_store):
        if access(address, store):
            hits += 1
    from repro import metrics
    registry = metrics.active()
    if registry.enabled:
        ns = registry.scoped(f"lvc.{size_bytes}B")
        ns.counter("stack_accesses").inc(accesses)
        ns.counter("hits").inc(hits)
    return StackCacheResult(trace_name=trace.name, size_bytes=size_bytes,
                            stack_accesses=accesses, hits=hits)


def lvc_size_sweep(trace: Trace,
                   sizes: Iterable[int] = (1024, 2048, 4096, 8192,
                                           16384)) -> List[StackCacheResult]:
    """Hit rate across LVC sizes (the A3 ablation in DESIGN.md)."""
    return [stack_cache_hit_rate(trace, size) for size in sizes]
