"""Two-level cache hierarchy with a shared L2 behind split L1s.

The data-decoupled design attaches the L1 data cache and the Local
Variable Cache to separate memory pipelines; both miss into a shared L2,
which misses into main memory (paper Table 4: 12-cycle L2, 50-cycle
memory, fully interleaved - so no memory-bank contention is modelled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.cache import Cache


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    l1_hit: bool
    l2_hit: bool = True   # meaningful only when l1_hit is False


class Hierarchy:
    """An L1 (data cache or LVC) backed by a shared L2 and memory."""

    def __init__(self, l1: Cache, l2: Cache, memory_latency: int = 50)\
            -> None:
        self.l1 = l1
        self.l2 = l2
        self.memory_latency = memory_latency

    def access(self, addr: int, is_write: bool = False) -> AccessResult:
        """Reference an address; returns the total access latency."""
        if self.l1.access(addr, is_write):
            return AccessResult(latency=self.l1.config.latency, l1_hit=True)
        if self.l2.access(addr, is_write):
            latency = self.l1.config.latency + self.l2.config.latency
            return AccessResult(latency=latency, l1_hit=False, l2_hit=True)
        latency = (self.l1.config.latency + self.l2.config.latency
                   + self.memory_latency)
        return AccessResult(latency=latency, l1_hit=False, l2_hit=False)


class PortManager:
    """Per-cycle port arbitration for one cache.

    ``ports`` accesses may start per cycle; an acquisition attempt for a
    full cycle fails and the requester retries next cycle (modelling the
    queuing delay the paper's bandwidth experiments measure).

    The address argument to :meth:`try_acquire` is ignored here - a
    true multi-ported cache serves any combination of addresses.  See
    :class:`BankManager` for the interleaved alternative.
    """

    def __init__(self, ports: int) -> None:
        if ports <= 0:
            raise ValueError("a cache needs at least one port")
        self.ports = ports
        self._cycle = -1
        self._used = 0
        self.conflicts = 0
        self.grants = 0

    def try_acquire(self, cycle: int, addr: int = 0) -> bool:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used < self.ports:
            self._used += 1
            self.grants += 1
            return True
        self.conflicts += 1
        return False

    def available(self, cycle: int, addr: Optional[int] = None) -> int:
        """Accesses that can still start this cycle.

        For a true multi-ported cache this is exact for every requester
        regardless of address; ``addr`` is accepted for interface
        parity with :meth:`BankManager.available`.
        """
        if cycle != self._cycle:
            return self.ports
        return self.ports - self._used


class BankManager:
    """Interleaved-bank arbitration (Sohi & Franklin style).

    An N-banked cache is the classic cheap alternative to a true
    N-ported one: N accesses can start per cycle *only if* they fall in
    distinct banks (banks are line-interleaved).  Same-bank accesses in
    one cycle conflict, which is exactly the inefficiency the paper's
    "perfect multi-porting" baseline assumes away - comparing the two
    is the A5 extension experiment.
    """

    def __init__(self, banks: int, line_size: int = 32) -> None:
        if banks <= 0:
            raise ValueError("a cache needs at least one bank")
        if line_size & (line_size - 1):
            raise ValueError("line size must be a power of two")
        self.ports = banks          # interface parity with PortManager
        self._line_shift = line_size.bit_length() - 1
        self._cycle = -1
        self._busy: set = set()
        self.conflicts = 0
        self.grants = 0

    def try_acquire(self, cycle: int, addr: int = 0) -> bool:
        if cycle != self._cycle:
            self._cycle = cycle
            self._busy = set()
        bank = (addr >> self._line_shift) % self.ports
        if bank in self._busy:
            self.conflicts += 1
            return False
        self._busy.add(bank)
        self.grants += 1
        return True

    def available(self, cycle: int, addr: Optional[int] = None) -> int:
        """Accesses that can still start this cycle.

        Without ``addr`` the count is only an *upper bound* across
        requesters: ``ports - len(busy)`` banks are free, but a
        requester whose address maps to an already-busy bank cannot use
        any of them.  Pass the requester's ``addr`` for an exact
        per-requester answer (1 if its bank is free, else 0).  The
        timing simulator therefore never gates scheduling on the
        addressless form - it calls ``try_acquire`` per access (see
        ``timing/machine.py``).
        """
        if cycle != self._cycle:
            return self.ports if addr is None else 1
        if addr is None:
            return self.ports - len(self._busy)
        bank = (addr >> self._line_shift) % self.ports
        return 0 if bank in self._busy else 1
