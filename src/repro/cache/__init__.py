"""Cache models: set-associative caches, the LVC, hierarchy, ports."""

from repro.cache.cache import (Cache, CacheConfig, CacheStats,
                               l1_data_cache, l2_cache,
                               local_variable_cache)
from repro.cache.hierarchy import AccessResult, Hierarchy, PortManager
from repro.cache.lvc import (StackCacheResult, lvc_size_sweep,
                             stack_cache_hit_rate)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "l1_data_cache",
    "l2_cache",
    "local_variable_cache",
    "AccessResult",
    "Hierarchy",
    "PortManager",
    "StackCacheResult",
    "lvc_size_sweep",
    "stack_cache_hit_rate",
]
