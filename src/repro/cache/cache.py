"""Set-associative cache model with LRU replacement.

Behavioural (hit/miss) model used both standalone (stack-cache hit-rate
experiments, Section 3.3 of the paper) and composed into the two-level
hierarchy of the timing simulator.  Write policy is write-back /
write-allocate, the common choice for the paper's era of L1 designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_size: int = 32
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.assoc * self.line_size):
            raise ValueError(
                f"{self.name}: size must be divisible by assoc * line_size")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")
        n_sets = self.size_bytes // (self.assoc * self.line_size)
        if n_sets & (n_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_size)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / max(1, self.accesses)

    @property
    def miss_rate(self) -> float:
        return self.misses / max(1, self.accesses)

    def publish(self, ns) -> None:
        """Publish these stats as counters into a metrics namespace.

        ``ns`` is anything with ``counter(name).inc(amount)`` - normally
        a :class:`repro.metrics.Namespace` scoped to this cache level
        (kept duck-typed so the cache model stays import-light).
        """
        ns.counter("hits").inc(self.hits)
        ns.counter("misses").inc(self.misses)
        ns.counter("evictions").inc(self.evictions)
        ns.counter("writebacks").inc(self.writebacks)


class Cache:
    """One cache level.  ``access`` returns True on hit."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.n_sets - 1
        # Per set: list of [tag, dirty] in LRU order (front = LRU).
        self._sets: List[List[List]] = [[] for _ in range(config.n_sets)]

    def _locate(self, addr: int):
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def lookup(self, addr: int) -> bool:
        """Probe without updating state or statistics."""
        set_index, tag = self._locate(addr)
        return any(entry[0] == tag for entry in self._sets[set_index])

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Reference one address; fills on miss; returns hit/miss."""
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.append(ways.pop(i))   # promote to MRU
                if is_write:
                    entry[1] = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        if len(ways) >= self.config.assoc:
            victim = ways.pop(0)
            self.stats.evictions += 1
            if victim[1]:
                self.stats.writebacks += 1
        ways.append([tag, is_write])
        return False

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


# Configurations from the paper's Table 4 -------------------------------

def l1_data_cache(latency: int = 2) -> Cache:
    """64 KB, 2-way set-associative L1 data cache (2-cycle hit)."""
    return Cache(CacheConfig(name="L1D", size_bytes=64 * 1024, assoc=2,
                             latency=latency))


def l2_cache() -> Cache:
    """512 KB, 4-way unified L2 (12-cycle access)."""
    return Cache(CacheConfig(name="L2", size_bytes=512 * 1024, assoc=4,
                             latency=12))


def local_variable_cache(size_bytes: int = 4 * 1024) -> Cache:
    """The paper's LVC: 4 KB direct-mapped, 1-cycle stack cache."""
    return Cache(CacheConfig(name="LVC", size_bytes=size_bytes, assoc=1,
                             latency=1))
