"""Instruction set for the PISA-like target ISA.

The ISA is a small RISC modelled on SimpleScalar's PISA: fixed 8-byte
instructions (hence PCs advance in steps of 8, and an ARPT index drops the
three least-significant PC bits, see the paper's Section 4.3), base+offset
addressing for all memory operations, and a MIPS-style calling convention.

Instructions are represented as plain Python objects rather than encoded
bits; the functional and timing simulators interpret them directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa import registers as regs

#: Size of every instruction in bytes (PISA uses wide 8-byte encodings).
INSTRUCTION_SIZE = 8


class Op(enum.Enum):
    """Opcodes understood by the simulators."""

    # Integer ALU, register-register.
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()   # rd = (rs < rt)
    SLE = enum.auto()
    SEQ = enum.auto()
    SNE = enum.auto()
    # Integer ALU, register-immediate.
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()
    SLTI = enum.auto()
    LI = enum.auto()    # rd = imm
    LA = enum.auto()    # rd = rs + imm (address arithmetic; rs may be $gp)
    LFA = enum.auto()   # rd = address of function `target` (link-resolved)
    MOV = enum.auto()   # rd = rs
    # Floating point (operands are flat FPR ids).
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FNEG = enum.auto()
    FSQRT = enum.auto()
    FABS = enum.auto()
    FMOV = enum.auto()
    FLT = enum.auto()   # rd(GPR) = (fs < ft)
    FLE = enum.auto()
    FEQ = enum.auto()
    CVTIF = enum.auto()  # fd = float(rs)
    CVTFI = enum.auto()  # rd = int(fs)
    # Memory.  All use base+offset addressing: addr = R[base] + imm.
    LW = enum.auto()    # rd = MEM[addr]        (integer/pointer word)
    SW = enum.auto()    # MEM[addr] = rt
    LF = enum.auto()    # fd = MEM[addr]        (floating-point word)
    SF = enum.auto()    # MEM[addr] = ft
    # Control.
    BEQZ = enum.auto()  # if rs == 0 goto target
    BNEZ = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    JALR = enum.auto()
    # System.
    SYSCALL = enum.auto()
    NOP = enum.auto()


#: Opcode groups used by the simulators and the profiler.
LOAD_OPS = frozenset({Op.LW, Op.LF})
STORE_OPS = frozenset({Op.SW, Op.SF})
MEM_OPS = LOAD_OPS | STORE_OPS
BRANCH_OPS = frozenset({Op.BEQZ, Op.BNEZ})
JUMP_OPS = frozenset({Op.J, Op.JAL, Op.JR, Op.JALR})
CALL_OPS = frozenset({Op.JAL, Op.JALR})
FP_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG, Op.FSQRT, Op.FABS,
    Op.FMOV, Op.FLT, Op.FLE, Op.FEQ, Op.CVTIF, Op.CVTFI,
})


class AddrMode(enum.Enum):
    """Static addressing-mode class of a memory instruction.

    This is the information available to the paper's *static prediction*
    heuristics (Section 3.4.1): the identity of the base register reveals
    the accessed region for most instructions.
    """

    CONSTANT = "constant"   # base register is $zero: absolute address
    STACK = "stack"         # base register is $sp or $fp
    GLOBAL = "global"       # base register is $gp
    OTHER = "other"         # computed base (pointer) - region unknown


def classify_addr_mode(base_reg: int) -> AddrMode:
    """Classify a memory instruction's addressing mode from its base register."""
    if base_reg == regs.ZERO:
        return AddrMode.CONSTANT
    if base_reg in (regs.SP, regs.FP):
        return AddrMode.STACK
    if base_reg == regs.GP:
        return AddrMode.GLOBAL
    return AddrMode.OTHER


@dataclass
class Instruction:
    """A single decoded instruction.

    Fields are interpreted per opcode:

    * ``rd`` - destination register (flat id; FPRs are >= 32).
    * ``rs``, ``rt`` - source registers.  For memory ops ``rs`` is the base
      register; for stores ``rt`` is the value being stored.
    * ``imm`` - immediate / displacement.
    * ``target`` - label name for control transfers; resolved to an
      absolute PC by the linker and cached in ``resolved_target``.
    """

    op: Op
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: int = 0
    target: Optional[str] = None
    resolved_target: Optional[int] = None
    comment: str = ""
    #: Compile-time region tag for memory instructions (the paper's
    #: Figure 6 analysis): True = stack, False = non-stack, None = the
    #: compiler cannot decide (MT_UNKNOWN).
    region_tag: Optional[bool] = None

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_call(self) -> bool:
        return self.op in CALL_OPS

    @property
    def addr_mode(self) -> AddrMode:
        """Addressing mode; only meaningful for memory instructions."""
        if not self.is_mem:
            raise ValueError(f"{self.op.name} is not a memory instruction")
        return classify_addr_mode(self.rs if self.rs is not None else regs.ZERO)

    def dest_regs(self) -> Tuple[int, ...]:
        """Flat ids of registers written by this instruction."""
        if self.op in STORE_OPS or self.op in BRANCH_OPS:
            return ()
        if self.op in (Op.J, Op.JR, Op.SYSCALL, Op.NOP):
            return ()
        if self.op in (Op.JAL, Op.JALR):
            return (regs.RA,)
        if self.rd is None:
            return ()
        return (self.rd,)

    def src_regs(self) -> Tuple[int, ...]:
        """Flat ids of registers read by this instruction."""
        srcs = []
        if self.op in (Op.JR, Op.JALR):
            if self.rs is not None:
                srcs.append(self.rs)
            return tuple(srcs)
        if self.rs is not None:
            srcs.append(self.rs)
        if self.rt is not None:
            srcs.append(self.rt)
        return tuple(srcs)

    def __str__(self) -> str:
        parts = [self.op.name.lower()]
        if self.is_mem:
            val = self.rd if self.is_load else self.rt
            parts.append(
                f"{_rname(val)}, {self.imm}({_rname(self.rs)})"
            )
        else:
            ops = []
            for r in (self.rd, self.rs, self.rt):
                if r is not None:
                    ops.append(_rname(r))
            if self.op in (Op.LI, Op.LA, Op.ADDI, Op.ANDI, Op.ORI, Op.XORI,
                           Op.SLLI, Op.SRLI, Op.SLTI):
                ops.append(str(self.imm))
            if self.target is not None:
                ops.append(self.target)
            if ops:
                parts.append(", ".join(ops))
        text = " ".join(parts)
        if self.comment:
            text = f"{text}  # {self.comment}"
        return text


def _rname(reg: Optional[int]) -> str:
    return "?" if reg is None else regs.reg_name(reg)


@dataclass
class Program:
    """A linked program image: instruction list plus label map.

    ``instructions[i]`` lives at PC ``text_base + i * INSTRUCTION_SIZE``.
    """

    instructions: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)  # label -> instruction index
    text_base: int = 0

    def pc_of_index(self, index: int) -> int:
        return self.text_base + index * INSTRUCTION_SIZE

    def index_of_pc(self, pc: int) -> int:
        offset = pc - self.text_base
        if offset % INSTRUCTION_SIZE != 0:
            raise ValueError(f"misaligned PC {pc:#x}")
        return offset // INSTRUCTION_SIZE

    def pc_of_label(self, label: str) -> int:
        return self.pc_of_index(self.labels[label])

    def __len__(self) -> int:
        return len(self.instructions)
