"""Architectural register file model for the PISA-like ISA.

The register naming and numbering follow the MIPS/SimpleScalar PISA
convention, which matters for this reproduction: the access-region
predictor's *static heuristics* (Section 3.4.1 of the paper) key off
whether a memory instruction's base register is ``$sp``, ``$fp``, or
``$gp``.

Integer registers are numbered 0..31.  Floating-point registers live in a
separate file and are numbered 32..63 throughout the code base so that a
single integer can name any architectural register (useful for dependence
tracking in the timing simulator).
"""

from __future__ import annotations

NUM_GPRS = 32
NUM_FPRS = 32

# Canonical MIPS register numbers.
ZERO = 0
AT = 1
V0, V1 = 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
T8, T9 = 24, 25
K0, K1 = 26, 27
GP = 28
SP = 29
FP = 30
RA = 31

# Floating-point registers occupy the flat id range [32, 64).
FPR_BASE = 32
F0 = FPR_BASE

GPR_NAMES = (
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
)

#: Caller-saved temporaries available to the expression evaluator.
TEMP_REGS = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)

#: Callee-saved registers used for scalar locals and parameters.
SAVED_REGS = (S0, S1, S2, S3, S4, S5, S6, S7)

#: Argument registers for the first four integer/pointer arguments.
ARG_REGS = (A0, A1, A2, A3)

#: FP temporaries and FP callee-saved registers (flat ids).
FTEMP_REGS = tuple(FPR_BASE + i for i in range(0, 10))
FSAVED_REGS = tuple(FPR_BASE + i for i in range(20, 28))
FARG_REGS = tuple(FPR_BASE + i for i in range(12, 16))
FV0 = FPR_BASE + 10  # FP return-value register


def is_fpr(reg: int) -> bool:
    """Return True if the flat register id names a floating-point register."""
    return reg >= FPR_BASE


def reg_name(reg: int) -> str:
    """Human-readable name of a flat register id (GPR or FPR)."""
    if reg < 0 or reg >= FPR_BASE + NUM_FPRS:
        raise ValueError(f"register id out of range: {reg}")
    if is_fpr(reg):
        return f"$f{reg - FPR_BASE}"
    return GPR_NAMES[reg]
