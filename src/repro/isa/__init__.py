"""PISA-like instruction-set architecture: registers, opcodes, programs."""

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    AddrMode,
    Instruction,
    Op,
    Program,
    classify_addr_mode,
)
from repro.isa import registers

__all__ = [
    "INSTRUCTION_SIZE",
    "AddrMode",
    "Instruction",
    "Op",
    "Program",
    "classify_addr_mode",
    "registers",
]
