"""The 12-program MiniC workload suite (SPEC95 stand-ins)."""

from repro.workloads.suite import (ALL_WORKLOADS, FP_WORKLOADS,
                                   INTEGER_WORKLOADS, SPECS, TIMING_SCALE,
                                   WorkloadSpec, clear_caches,
                                   compile_workload, evict, run, run_all,
                                   source, spec)

__all__ = [
    "ALL_WORKLOADS",
    "FP_WORKLOADS",
    "INTEGER_WORKLOADS",
    "SPECS",
    "TIMING_SCALE",
    "WorkloadSpec",
    "clear_caches",
    "compile_workload",
    "evict",
    "run",
    "run_all",
    "source",
    "spec",
]
