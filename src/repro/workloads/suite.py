"""The 12-program workload suite standing in for the paper's SPEC95 set.

Eight integer programs and four floating-point programs, each written in
MiniC to recreate the qualitative region profile the paper reports for
its SPEC95 counterpart (see DESIGN.md section 6 for the mapping).
Workload sources carry ``@PARAM@`` placeholders; :func:`source`
substitutes concrete values, and a global ``scale`` factor multiplies
the designated iteration parameters so experiments can trade run time
for trace length.
"""

from __future__ import annotations

import collections
import functools
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple

from repro.compiler import CompiledProgram, compile_source
from repro.cpu import DEFAULT_MAX_STEPS, run_program
from repro.trace.records import Trace

_PROGRAM_DIR = Path(__file__).parent / "programs"


@dataclass(frozen=True)
class WorkloadSpec:
    """Metadata for one benchmark program."""

    name: str
    mirrors: str              # the SPEC95 program it stands in for
    kind: str                 # 'int' | 'fp'
    description: str
    params: Tuple[Tuple[str, int], ...]
    scaled: Tuple[str, ...]   # params multiplied by the scale factor

    @property
    def filename(self) -> Path:
        return _PROGRAM_DIR / f"{self.name}.mc"


_SPECS = (
    WorkloadSpec(
        name="go_ai", mirrors="099.go", kind="int",
        description="game-tree search over global board tables, no heap",
        params=(("GAMES", 4), ("DEPTH", 4), ("BRANCH", 5)),
        scaled=("GAMES",),
    ),
    WorkloadSpec(
        name="sim_cpu", mirrors="124.m88ksim", kind="int",
        description="ISA simulator with heap machine state",
        params=(("RUNS", 2), ("STEPS", 2000)),
        scaled=("RUNS",),
    ),
    WorkloadSpec(
        name="ccomp", mirrors="126.gcc", kind="int",
        description="heap expression trees with folding passes",
        params=(("UNITS", 16), ("DEPTH", 6)),
        scaled=("UNITS",),
    ),
    WorkloadSpec(
        name="compress", mirrors="129.compress", kind="int",
        description="LZW-style hashing over global tables",
        params=(("N", 4096), ("PASSES", 1)),
        scaled=("PASSES",),
    ),
    WorkloadSpec(
        name="lisp", mirrors="130.li", kind="int",
        description="cons-cell interpreter plus tak recursion",
        params=(("ROUNDS", 36), ("LIST_LEN", 24),
                ("TAK_X", 15), ("TAK_Y", 9), ("TAK_Z", 5)),
        scaled=("ROUNDS",),
    ),
    WorkloadSpec(
        name="jpeg_like", mirrors="132.ijpeg", kind="int",
        description="blocked 8x8 transform over a heap image",
        params=(("BLOCKS_X", 6), ("BLOCKS_Y", 6), ("PASSES", 1)),
        scaled=("PASSES",),
    ),
    WorkloadSpec(
        name="perl_like", mirrors="134.perl", kind="int",
        description="string/hash interpreter over heap strings",
        params=(("SCRIPTS", 5), ("STMTS", 160)),
        scaled=("SCRIPTS",),
    ),
    WorkloadSpec(
        name="db_vortex", mirrors="147.vortex", kind="int",
        description="object DB with call-heavy accessors",
        params=(("TXNS", 10), ("BATCH", 48)),
        scaled=("TXNS",),
    ),
    WorkloadSpec(
        name="tomcatv", mirrors="101.tomcatv", kind="fp",
        description="mesh stencils with FP spill pressure",
        params=(("ITERS", 2),),
        scaled=("ITERS",),
    ),
    WorkloadSpec(
        name="swim_fp", mirrors="102.swim", kind="fp",
        description="shallow-water stencil on global grids",
        params=(("STEPS", 2),),
        scaled=("STEPS",),
    ),
    WorkloadSpec(
        name="su2cor_fp", mirrors="103.su2cor", kind="fp",
        description="lattice correlation with heap scratch",
        params=(("SWEEPS", 3),),
        scaled=("SWEEPS",),
    ),
    WorkloadSpec(
        name="mgrid_fp", mirrors="107.mgrid", kind="fp",
        description="multigrid V-cycles on global arrays",
        params=(("CYCLES", 2),),
        scaled=("CYCLES",),
    ),
)

SPECS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

INTEGER_WORKLOADS = tuple(s.name for s in _SPECS if s.kind == "int")
FP_WORKLOADS = tuple(s.name for s in _SPECS if s.kind == "fp")
ALL_WORKLOADS = INTEGER_WORKLOADS + FP_WORKLOADS

#: Suggested scale for timing (cycle-level) experiments, which cost far
#: more per instruction than trace profiling.
TIMING_SCALE = 0.25


def spec(name: str) -> WorkloadSpec:
    """Metadata for one workload by name (raises on unknown names)."""
    try:
        return SPECS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; known: "
                         f"{sorted(SPECS)}") from None


def source(name: str, scale: float = 1.0) -> str:
    """Workload source text with parameters substituted."""
    workload = spec(name)
    text = workload.filename.read_text()
    for param, value in workload.params:
        if param in workload.scaled:
            value = max(1, round(value * scale))
        text = text.replace(f"@{param}@", str(value))
    leftover = re.search(r"@[A-Z_]+@", text)
    if leftover:
        raise ValueError(f"{name}: unsubstituted parameter "
                         f"{leftover.group()}")
    return text


@functools.lru_cache(maxsize=None)
def compile_workload(name: str, scale: float = 1.0) -> CompiledProgram:
    """Compile one workload at one scale (cached)."""
    return compile_source(source(name, scale), name)


def step_ceiling(scale: float) -> int:
    """Runaway-loop backstop for simulating one workload at ``scale``.

    The simulator's default ceiling accommodates every workload up to
    roughly scale 25 (the largest, ``compress``, retires ~0.9M
    instructions per scale unit); beyond that the ceiling grows
    linearly so a legitimate ``--scale 100`` out-of-core run is not
    mistaken for an infinite loop.
    """
    return int(DEFAULT_MAX_STEPS * max(1.0, scale / 25.0))


class _TraceMemo:
    """In-memory LRU memo over ``run_program`` with *per-entry* eviction.

    ``functools.lru_cache`` only supports clearing the whole cache, so
    streaming callers (experiment drivers, CLI loops) used to evict
    every caller's entries just to drop their own.  This memo keeps the
    ``cache_clear``/``cache_info`` surface of ``lru_cache`` and adds
    :meth:`evict` for scoped eviction of one ``(name, scale)`` entry.

    The capacity is deliberately small: traces are large, and
    experiments stream one workload at a time.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = maxsize
        self._entries: "collections.OrderedDict" = \
            collections.OrderedDict()
        self._hits = 0
        self._misses = 0

    def __call__(self, name: str, scale: float = 1.0) -> Trace:
        key = (name, scale)
        try:
            trace = self._entries[key]
        except KeyError:
            self._misses += 1
            trace = run_program(compile_workload(name, scale),
                                max_steps=step_ceiling(scale))
            self._entries[key] = trace
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        else:
            self._hits += 1
            self._entries.move_to_end(key)
        return trace

    def evict(self, name: str, scale: float = 1.0) -> bool:
        """Drop one ``(name, scale)`` entry; True if it was cached."""
        return self._entries.pop((name, scale), None) is not None

    def cache_clear(self) -> None:
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    def cache_info(self):
        return functools._CacheInfo(self._hits, self._misses,
                                    self.maxsize, len(self._entries))


#: Execute one workload and return its dynamic trace (memoised).
run = _TraceMemo(maxsize=8)


def evict(name: str, scale: float = 1.0) -> bool:
    """Scoped eviction: drop only the ``(name, scale)`` trace."""
    return run.evict(name, scale)


def run_all(scale: float = 1.0, names: Tuple[str, ...] = ALL_WORKLOADS):
    """Yield ``(name, trace)`` for each requested workload."""
    for name in names:
        yield name, run(name, scale)


def clear_caches() -> None:
    """Drop cached compilations and traces (frees a lot of memory)."""
    compile_workload.cache_clear()
    run.cache_clear()
