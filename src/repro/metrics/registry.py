"""Typed metric instruments and the registry they publish into.

Every simulation layer reports through one of four instrument kinds:

* :class:`Counter` - monotonically increasing event counts (cache hits,
  ARPT mispredictions, issue stalls);
* :class:`Gauge` - last-observed values (peak queue occupancy, hit
  rates at end of run);
* :class:`Histogram` - bucketed distributions (per-event magnitudes);
* :class:`Timeseries` - fixed-interval sampled series keeping the
  moments needed for mean/std burstiness analysis (the paper's Table 2
  sliding-window methodology).

Instruments live in a :class:`MetricsRegistry` under hierarchical
dotted names (``timing.(3+3).lsq.stall_cycles``); ``scoped()`` returns
a namespace proxy so publishers never concatenate prefixes by hand.

Collection is *opt-in*: the process-wide active registry defaults to
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons,
so the disabled fast path costs one attribute check per publication
site (publication happens at end-of-run, never in per-instruction hot
loops).  Snapshots are plain JSON-able dicts; :func:`merge_snapshots`
defines the deterministic cross-cell merge used by the experiment
engine to make ``--jobs 1`` and ``--jobs N`` exports byte-identical.
"""

from __future__ import annotations

import bisect
import math
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Raw points retained per time-series (moments are always exact).
MAX_TIMESERIES_POINTS = 64

#: Default histogram bucket upper bounds (powers-of-two-ish decades).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200,
                                      500, 1000)


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """The last observed value of a quantity (None until first set)."""

    kind = "gauge"
    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: Number) -> None:
        """Record the current value of the quantity."""
        self.value = float(value)
        self.updates += 1

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "updates": self.updates}


class Histogram:
    """A bucketed distribution of observed magnitudes.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches
    everything above the last bound.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 bounds: Sequence[Number] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and "
                             "non-empty")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / max(1, self.count)

    def quantile(self, q: float) -> Optional[float]:
        """Estimated value at quantile ``q`` (0..1) from the buckets.

        Linear interpolation within the containing bucket, clamped to
        the observed ``[min, max]`` envelope; ``None`` before any
        observation.  An estimate by construction - the ``repro serve``
        ``stats`` endpoint uses it for live p50/p95/p99 without
        retaining raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, occupancy in enumerate(self.buckets):
            if occupancy and cumulative + occupancy >= target:
                lower = self.bounds[i - 1] if i > 0 else self.minimum
                upper = self.bounds[i] if i < len(self.bounds) \
                    else self.maximum
                fraction = (target - cumulative) / occupancy
                estimate = lower + (upper - lower) * fraction
                return min(self.maximum, max(self.minimum, estimate))
            cumulative += occupancy
        return self.maximum

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count,
                "sum": self.total, "min": self.minimum,
                "max": self.maximum, "bounds": list(self.bounds),
                "buckets": list(self.buckets)}

    @classmethod
    def from_snapshot(cls, name: str, entry: dict) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot` dict (so
        consumers of exported documents can query quantiles)."""
        if entry.get("kind") != cls.kind:
            raise ValueError(f"snapshot kind {entry.get('kind')!r} is "
                             f"not a histogram")
        histogram = cls(name, entry["bounds"])
        histogram.buckets = list(entry["buckets"])
        histogram.count = entry["count"]
        histogram.total = entry["sum"]
        histogram.minimum = entry["min"]
        histogram.maximum = entry["max"]
        return histogram


class Timeseries:
    """Fixed-interval sampled series with exact first/second moments.

    Designed for the paper's Table-2 style analysis: per-window access
    counts sampled every ``interval`` instructions, where the mean
    measures bandwidth demand and the standard deviation measures
    burstiness.  The first :data:`MAX_TIMESERIES_POINTS` raw samples
    are retained for plotting; moments cover every sample.
    """

    kind = "timeseries"
    __slots__ = ("name", "interval", "count", "total", "sumsq", "points")

    def __init__(self, name: str, interval: int = 1) -> None:
        if interval <= 0:
            raise ValueError("timeseries interval must be positive")
        self.name = name
        self.interval = interval
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.points: List[float] = []

    def observe(self, value: Number) -> None:
        """Record one interval sample."""
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if len(self.points) < MAX_TIMESERIES_POINTS:
            self.points.append(value)

    def observe_moments(self, count: int, total: Number,
                        sumsq: Number) -> None:
        """Fold in pre-aggregated moments (streaming profilers)."""
        self.count += count
        self.total += float(total)
        self.sumsq += float(sumsq)

    @property
    def mean(self) -> float:
        return self.total / max(1, self.count)

    @property
    def std(self) -> float:
        if self.count == 0:
            return 0.0
        mean = self.mean
        return math.sqrt(max(0.0, self.sumsq / self.count - mean * mean))

    def snapshot(self) -> dict:
        return {"kind": self.kind, "interval": self.interval,
                "count": self.count, "sum": self.total,
                "sumsq": self.sumsq, "points": list(self.points)}


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram,
                                    Timeseries)}


class Namespace:
    """A registry proxy that prefixes every instrument name."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def _qualified(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._qualified(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._qualified(name))

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_BUCKETS)\
            -> Histogram:
        return self._registry.histogram(self._qualified(name), bounds)

    def timeseries(self, name: str, interval: int = 1) -> Timeseries:
        return self._registry.timeseries(self._qualified(name), interval)

    def scoped(self, prefix: str) -> "Namespace":
        return Namespace(self._registry, self._qualified(prefix))


class MetricsRegistry:
    """A collection of named instruments (get-or-create semantics).

    Requesting an existing name with a different instrument kind
    raises ``TypeError`` - one name, one meaning.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested as {kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_BUCKETS)\
            -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, "histogram",
                         lambda: Histogram(name, bounds))

    def timeseries(self, name: str, interval: int = 1) -> Timeseries:
        """Get or create the time-series called ``name``."""
        return self._get(name, "timeseries",
                         lambda: Timeseries(name, interval))

    def scoped(self, prefix: str) -> Namespace:
        """A namespace proxy prefixing every instrument name."""
        return Namespace(self, prefix)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """All instruments as a plain, JSON-able, name-sorted dict."""
        return {name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)}


class _NullInstrument:
    """Shared no-op instrument returned by the disabled registry."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def observe_moments(self, count: int, total: Number,
                        sumsq: Number) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every accessor returns one shared no-op
    instrument and snapshots are empty.  Publication sites check
    ``enabled`` once per run, so disabled-mode overhead is near zero."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_BUCKETS)\
            -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def timeseries(self, name: str, interval: int = 1)\
            -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def scoped(self, prefix: str) -> "NullRegistry":
        """Namespacing on a disabled registry is the registry itself."""
        return self

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, dict]:
        """Always empty."""
        return {}


#: The process-wide disabled registry (default active registry).
NULL_REGISTRY = NullRegistry()

_active: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def active() -> Union[MetricsRegistry, NullRegistry]:
    """The registry simulation layers currently publish into."""
    return _active


def swap(registry: Union[MetricsRegistry, NullRegistry])\
        -> Union[MetricsRegistry, NullRegistry]:
    """Install ``registry`` as active; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Activate collection into ``registry`` (fresh one by default)."""
    registry = registry if registry is not None else MetricsRegistry()
    swap(registry)
    return registry


def disable() -> None:
    """Restore the no-op null registry."""
    swap(NULL_REGISTRY)


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None):
    """Scope-bound collection: activates a registry, restores on exit."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = swap(registry)
    try:
        yield registry
    finally:
        swap(previous)


# -- snapshot merging ---------------------------------------------------

def _merge_entry(base: dict, other: dict) -> dict:
    kind = base["kind"]
    if kind != other["kind"]:
        raise ValueError(f"cannot merge {other['kind']} into {kind}")
    if kind == "counter":
        return {"kind": kind, "value": base["value"] + other["value"]}
    if kind == "gauge":
        merged = dict(base)
        if other["updates"]:
            merged["value"] = other["value"]
        merged["updates"] = base["updates"] + other["updates"]
        return merged
    if kind == "histogram":
        if base["bounds"] != other["bounds"]:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        minima = [m for m in (base["min"], other["min"]) if m is not None]
        maxima = [m for m in (base["max"], other["max"]) if m is not None]
        return {"kind": kind,
                "count": base["count"] + other["count"],
                "sum": base["sum"] + other["sum"],
                "min": min(minima) if minima else None,
                "max": max(maxima) if maxima else None,
                "bounds": list(base["bounds"]),
                "buckets": [a + b for a, b in zip(base["buckets"],
                                                  other["buckets"])]}
    if kind == "timeseries":
        if base["interval"] != other["interval"]:
            raise ValueError("cannot merge timeseries with different "
                             "intervals")
        points = (list(base["points"])
                  + list(other["points"]))[:MAX_TIMESERIES_POINTS]
        return {"kind": kind, "interval": base["interval"],
                "count": base["count"] + other["count"],
                "sum": base["sum"] + other["sum"],
                "sumsq": base["sumsq"] + other["sumsq"],
                "points": points}
    raise ValueError(f"unknown instrument kind {kind!r}")


def merge_snapshots(base: Dict[str, dict],
                    other: Dict[str, dict]) -> Dict[str, dict]:
    """Merge two snapshots deterministically; returns a new dict.

    Counters sum; gauges keep the later (``other``) value; histograms
    and time-series combine their moments and bucket counts.  Merging
    per-cell snapshots in submission order makes the result identical
    at every ``--jobs`` level.
    """
    merged = {name: dict(entry) for name, entry in base.items()}
    for name, entry in other.items():
        if name in merged:
            merged[name] = _merge_entry(merged[name], entry)
        else:
            merged[name] = dict(entry)
    return {name: merged[name] for name in sorted(merged)}
