"""Prometheus text exposition for metrics-registry snapshots.

Renders a :meth:`repro.metrics.registry.MetricsRegistry.snapshot`
as Prometheus' text-based exposition format (version 0.0.4), so a
standard scraper pointed at the ``repro serve`` daemon's ``metrics``
op ingests the same counters/gauges/histograms the ``stats`` op
returns as JSON.

Mapping rules:

* Dotted registry names flatten to underscore names under a
  ``repro_`` namespace (``serve.latency_ms`` ->
  ``repro_serve_latency_ms``); any character outside
  ``[a-zA-Z0-9_]`` becomes ``_``.
* Counters render as ``<name>_total`` (Prometheus convention for
  monotonic counts).
* Gauges render as-is; a gauge that was never set (value ``None``)
  is omitted rather than exposed as a bogus zero.
* Histograms render the full cumulative-bucket family:
  ``<name>_bucket{le="..."}`` per bound plus ``+Inf``, ``<name>_sum``
  and ``<name>_count``.
* Timeseries render their aggregates as two gauges
  (``<name>_count`` / ``<name>_sum``); the per-interval points stay
  JSON-only.

The renderer is pure (snapshot in, text out) so it is trivially
testable and usable outside the daemon (e.g. dumping a batch run's
registry for pushgateway-style ingestion).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional

#: The Content-Type a Prometheus scrape of the ``metrics`` op should
#: assume for the returned ``text`` payload.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default metric-name namespace prefix.
NAMESPACE = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """A registry metric name as a valid Prometheus metric name."""
    flat = _INVALID.sub("_", name)
    full = f"{namespace}_{flat}" if namespace else flat
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _num(value) -> str:
    """One sample value in exposition format."""
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _histogram_lines(name: str, entry: dict) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    bounds = entry.get("bounds", [])
    buckets = entry.get("buckets", [])
    for bound, occupancy in zip(bounds, buckets):
        cumulative += occupancy
        lines.append(f'{name}_bucket{{le="{_num(bound)}"}} '
                     f"{cumulative}")
    lines.append(f'{name}_bucket{{le="+Inf"}} {entry.get("count", 0)}')
    lines.append(f"{name}_sum {_num(entry.get('sum', 0.0))}")
    lines.append(f"{name}_count {entry.get('count', 0)}")
    return lines


def render(snapshot: Dict[str, dict], namespace: str = NAMESPACE,
           info: Optional[Dict[str, str]] = None) -> str:
    """A registry snapshot as Prometheus exposition text.

    ``info`` labels (incarnation id, pid, version...) render as a
    ``<namespace>_serve_info`` gauge with constant value 1 - the
    Prometheus idiom for identity metadata - so dashboards can join
    series across daemon restarts.
    """
    lines: List[str] = []
    if info:
        name = metric_name("serve_info", namespace)
        labels = ",".join(f'{key}="{_escape_label(value)}"'
                          for key, value in sorted(info.items()))
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{{{labels}}} 1")
    emitted = {metric_name("serve_info", namespace)} if info else set()
    for raw_name in sorted(snapshot):
        entry = snapshot[raw_name]
        kind = entry.get("kind")
        name = metric_name(raw_name, namespace)
        if kind == "counter":
            name += "_total"
        if name in emitted:
            continue        # sanitisation collision: first one wins
        emitted.add(name)
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_num(entry.get('value', 0))}")
        elif kind == "gauge":
            if entry.get("value") is None:
                continue
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_num(entry['value'])}")
        elif kind == "histogram":
            lines.extend(_histogram_lines(name, entry))
        elif kind == "timeseries":
            lines.append(f"# TYPE {name}_count gauge")
            lines.append(f"{name}_count {entry.get('count', 0)}")
            lines.append(f"# TYPE {name}_sum gauge")
            lines.append(f"{name}_sum {_num(entry.get('sum', 0.0))}")
    return "\n".join(lines) + "\n"
