"""Unified metrics & instrumentation layer.

Every simulation layer - functional CPU, predictor schemes, cache
hierarchy/LVC/TLB, timing machine - publishes typed instruments
(counters, gauges, histograms, interval time-series) into the active
:class:`MetricsRegistry` under hierarchical dotted names.  Collection
is opt-in: the default active registry is the no-op
:data:`NULL_REGISTRY`, so an uninstrumented run pays one ``enabled``
check per simulation, not per event.

Typical use::

    from repro import metrics
    from repro.metrics import export

    with metrics.collecting() as registry:
        result = simulate(trace, config)
    snapshot = registry.snapshot()

The experiment engine collects one registry per workload cell and
merges snapshots deterministically (see
:func:`repro.metrics.merge_snapshots`), making ``--metrics-out``
exports byte-identical across ``--jobs`` levels.
"""

from repro.metrics import export
from repro.metrics.registry import (DEFAULT_BUCKETS,
                                    MAX_TIMESERIES_POINTS, NULL_REGISTRY,
                                    Counter, Gauge, Histogram,
                                    MetricsRegistry, Namespace,
                                    NullRegistry, Timeseries, active,
                                    collecting, disable, enable,
                                    merge_snapshots, swap)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "Namespace",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "MAX_TIMESERIES_POINTS",
    "active",
    "collecting",
    "disable",
    "enable",
    "export",
    "merge_snapshots",
    "swap",
]
