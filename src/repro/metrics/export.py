"""Machine-readable metric exports (JSON / CSV) and validation.

An *experiment document* is the canonical export shape::

    {"schema": 1,
     "experiment": "figure4",
     "scale": 1.0,
     "cells":  {"db_vortex": {<metric name>: <snapshot entry>, ...},
                ...},
     "totals": {<metric name>: <merged snapshot entry>, ...},
     "resilience": {"engine.retries": 0, ...}}          # optional

``cells`` holds one registry snapshot per workload cell (keyed by
workload name); ``totals`` is their deterministic merge.  ``cells``
and ``totals`` contain only simulation-derived values - never
wall-clock - so those sections are byte-identical at every ``--jobs``
level.  The optional ``resilience`` section carries the engine's
recovery counters (retries, pool rebuilds, quarantined cache entries,
checkpoint hits); it describes what *this particular run* survived
and is deliberately excluded from the determinism guarantee and from
the flat CSV form.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from functools import reduce
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.metrics.registry import merge_snapshots

#: Version of the export document layout.
SCHEMA_VERSION = 1


def experiment_document(experiment: str, scale: float,
                        cells: Mapping[str, Dict[str, dict]],
                        resilience: Optional[Mapping[str, int]] = None)\
        -> dict:
    """Build the canonical export document from per-cell snapshots."""
    ordered = {name: cells[name] for name in cells}
    totals = reduce(merge_snapshots, ordered.values(), {})
    document = {"schema": SCHEMA_VERSION, "experiment": experiment,
                "scale": scale, "cells": ordered, "totals": totals}
    if resilience is not None:
        document["resilience"] = dict(resilience)
    return document


def to_json(document: dict) -> str:
    """Serialise a document deterministically (sorted keys)."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def _flat_rows(document: dict) -> List[tuple]:
    """(cell, metric, kind, field, value) rows, sorted."""
    rows = []
    sections = [(name, snapshot)
                for name, snapshot in sorted(document["cells"].items())]
    sections.append(("TOTAL", document["totals"]))
    for cell, snapshot in sections:
        for metric in sorted(snapshot):
            entry = snapshot[metric]
            for field in sorted(entry):
                if field == "kind":
                    continue
                value = entry[field]
                if isinstance(value, list):
                    value = " ".join(str(v) for v in value)
                rows.append((cell, metric, entry["kind"], field, value))
    return rows


def to_csv(document: dict) -> str:
    """Serialise a document as flat CSV (one row per metric field)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["cell", "metric", "kind", "field", "value"])
    writer.writerows(_flat_rows(document))
    return buffer.getvalue()


def write_document(document: dict, path: Union[str, Path]) -> Path:
    """Write a document to ``path`` (CSV for ``.csv``, else JSON).

    The write is atomic (temp file + ``os.replace``): an export
    interrupted at any instant leaves either the previous file or the
    complete new one, never a truncated half-document.
    """
    path = Path(path)
    text = to_csv(document) if path.suffix.lower() == ".csv" \
        else to_json(document)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def summarize_entry(entry: dict) -> str:
    """A one-cell human-readable summary of a snapshot entry."""
    kind = entry["kind"]
    if kind == "counter":
        value = entry["value"]
        return f"{value:,}" if isinstance(value, int) else f"{value:g}"
    if kind == "gauge":
        return "n/a" if entry["value"] is None else f"{entry['value']:g}"
    if kind == "histogram":
        if not entry["count"]:
            return "empty"
        mean = entry["sum"] / entry["count"]
        return (f"n={entry['count']} mean={mean:.3f} "
                f"min={entry['min']:g} max={entry['max']:g}")
    if kind == "timeseries":
        count = entry["count"]
        if not count:
            return "empty"
        mean = entry["sum"] / count
        std = math.sqrt(max(0.0, entry["sumsq"] / count - mean * mean))
        return f"n={count} mean={mean:.3f} std={std:.3f}"
    return repr(entry)


def validate(document: dict) -> List[str]:
    """Sanity-check every registered metric; returns problem strings.

    A metric is invalid if any of its numeric fields is NaN or
    negative - every quantity in this simulator (counts, latencies,
    rates, occupancies) is non-negative by construction, so either
    signals an accounting bug.  Used by CI to gate the exported
    ``BENCH_metrics.json``.
    """
    problems = []
    sections = list(document["cells"].items()) \
        + [("totals", document["totals"])]
    for cell, snapshot in sections:
        for metric in sorted(snapshot):
            entry = snapshot[metric]
            for field in sorted(entry):
                value = entry[field]
                values = value if isinstance(value, list) else [value]
                for item in values:
                    if not isinstance(item, (int, float)) \
                            or isinstance(item, bool):
                        continue
                    if math.isnan(item):
                        problems.append(
                            f"{cell}:{metric}.{field} is NaN")
                    elif item < 0:
                        problems.append(
                            f"{cell}:{metric}.{field} is negative "
                            f"({item})")
    return problems
